//! Offline stand-in for the `proptest` crate, implementing the API
//! subset this workspace's property tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, integer-range and tuple
//! strategies, `any::<bool>()`, `prop_map`, and `collection::vec`.
//!
//! Each test runs the configured number of random cases drawn from a
//! deterministic generator seeded per test name, so failures reproduce
//! across runs. Failing inputs are reported but not shrunk.
//! See `vendor/README.md`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform `bool` strategy backing `any::<bool>()`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random in-range length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case, carrying the assertion message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator used by strategies (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator; each test derives its seed from its own
        /// name so runs are reproducible.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5bf0_3635_d0c6_b2d9 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a hash of a test name, used as its deterministic seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions that run a property over many random
/// cases. Supports the `#![proptest_config(...)]` header and
/// `name in strategy` bindings, like the real macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    $crate::test_runner::seed_for(stringify!($name)),
                );
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(
                        #[allow(unused_variables)]
                        let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {:#?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            ($(&$arg,)+),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn tuples_and_vecs_generate_in_bounds(
            pair in (0..10i32, 0..=4u8),
            flags in crate::collection::vec(any::<bool>(), 1..5),
            mapped in (1usize..4).prop_map(|n| n * 2)
        ) {
            prop_assert!((0..10).contains(&pair.0));
            prop_assert!(pair.1 <= 4);
            prop_assert!(!flags.is_empty() && flags.len() < 5);
            prop_assert_eq!(mapped % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0..10i32) {
                prop_assert!(x < 0, "x={} is not negative", x);
            }
        }
        inner();
    }
}
