//! Offline stand-in for the `criterion` crate, implementing the API
//! subset this workspace's benches use: benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! single warm-up iteration followed by `sample_size` timed iterations
//! and prints the mean wall time. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iterations: self.sample_size, elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed / bencher.iterations.max(1) as u32;
        eprintln!("  {}/{}: mean {:?} over {} iterations", self.name, id.0, mean, bencher.iterations);
        self
    }

    /// Times `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("input", 7), &7usize, |b, n| {
            b.iter(|| *n * 2)
        });
        group.finish();
        // one warm-up + three timed iterations
        assert_eq!(runs, 4);
    }
}
