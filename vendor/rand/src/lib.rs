//! Offline stand-in for the `rand` crate, implementing the 0.8 API
//! subset this workspace uses: [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng::gen_bool`] / [`Rng::gen_range`]. See `vendor/README.md`.

use core::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        // 53 uniform mantissa bits, the same construction rand uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with uniform sampling over a bounded interval. The generic
/// [`SampleRange`] impls below are keyed on this trait (like the real
/// crate) so integer-literal ranges unify with surrounding types.
pub trait SampleUniform: Copy {
    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_inclusive(self.start, self.end.minus_one(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Helper for turning a half-open bound into an inclusive one.
pub trait One: Copy {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> $t { self - 1 }
        }
    )*};
}

impl_one_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default generator: xoshiro256** seeded through SplitMix64.
    /// Statistically solid for simulation workloads and fully
    /// deterministic per seed (unlike the real `StdRng`, it is *not*
    /// cryptographically secure — nothing here needs that).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2..=2i32);
            assert!((-2..=2).contains(&v));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
