//! Determinism and pruning guarantees of the parallel simulation engine.
//!
//! The `simulate_with` worker pool must be invisible in the results: any
//! thread count produces bit-identical spectra, ground states, and
//! operational verdicts, because the charge-space partition is a pure
//! function of the layout and the merge is a total order. These tests
//! pin that contract across the full Bestagon tile set, check the
//! branch-and-bound engine against the brute-force sweep on random
//! layouts, and assert the acceptance criterion that pruned + cached
//! gate validation visits strictly fewer configurations than the
//! exhaustive Gray-code sweep.

use proptest::prelude::*;
use sidb_sim::layout::SidbLayout;
use sidb_sim::{simulate_with, PhysicalParams, SimCache, SimEngine, SimParams, SimResult};

fn base(engine: SimEngine) -> SimParams {
    SimParams::new(PhysicalParams::default()).with_engine(engine)
}

/// Free energies compared at the bit level: the parallel merge must not
/// even reassociate a floating-point sum differently.
fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.states.len(), b.states.len());
    for (x, y) in a.states.iter().zip(&b.states) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.free_energy.to_bits(), y.free_energy.to_bits());
        assert_eq!(
            x.electrostatic_energy.to_bits(),
            y.electrostatic_energy.to_bits()
        );
    }
    assert_eq!(a.truncated, b.truncated);
}

/// A BDL chain with `pairs` pairs plus a perturber — 2·pairs + 1 sites,
/// large enough (≥ 14 free sites) to engage the chunked parallel sweep.
fn chain(pairs: usize) -> SidbLayout {
    let mut l = SidbLayout::new();
    for k in 0..pairs as i32 {
        l.add_site((14, 3 * k, 0));
        l.add_site((16, 3 * k, 0));
    }
    l.add_site((14, -2, 1));
    l
}

#[test]
fn tile_set_verdicts_and_spectra_are_thread_invariant() {
    // The ≤ 32-site tiles — the three larger ones (fan-out, crossing,
    // half adder) take minutes of branch-and-bound and are covered by
    // the `#[ignore]`d full-set variant below, which CI runs in release.
    for design in bestagon_lib::tiles::figure5_designs()
        .into_iter()
        .filter(|d| d.body.num_sites() <= 32)
    {
        let one = base(SimEngine::QuickExact).with_threads(1);
        let four = base(SimEngine::QuickExact).with_threads(4);
        let r1 = design.check_operational_with(&one);
        let r4 = design.check_operational_with(&four);
        assert_eq!(
            r1.status, r4.status,
            "{}: verdict depends on threads",
            design.name
        );
        assert_eq!(
            r1.stats, r4.stats,
            "{}: work counters depend on threads",
            design.name
        );
        // Per-pattern spectra, not just verdicts, must be bit-identical.
        let patterns = 1u32 << design.inputs.len();
        for pattern in 0..patterns {
            let layout = design.layout_for_pattern(pattern);
            let s1 = simulate_with(&layout, &one.clone().with_k(3));
            let s4 = simulate_with(&layout, &four.clone().with_k(3));
            assert_bit_identical(&s1, &s4);
        }
    }
}

/// Every Bestagon tile, including the branch-and-bound monsters: the
/// verdict and the work counters are identical at 1 and 4 threads.
#[test]
#[ignore = "full tile set; minutes of branch-and-bound — CI runs this in release"]
fn full_tile_set_is_thread_invariant() {
    for design in bestagon_lib::tiles::figure5_designs() {
        let r1 = design.check_operational_with(&base(SimEngine::QuickExact).with_threads(1));
        let r4 = design.check_operational_with(&base(SimEngine::QuickExact).with_threads(4));
        assert_eq!(
            r1.status, r4.status,
            "{}: verdict depends on threads",
            design.name
        );
        assert_eq!(
            r1.stats, r4.stats,
            "{}: counters depend on threads",
            design.name
        );
    }
}

#[test]
fn chunked_exhaustive_sweep_is_thread_invariant() {
    // A dense 4×4 cluster keeps every site free (nothing can be
    // preassigned), pushing the sweep above the 14-free-site threshold
    // where it splits into Gray-code chunks dispatched across the pool.
    let mut layout = SidbLayout::new();
    for i in 0..4i32 {
        for j in 0..4i32 {
            layout.add_site((2 * i, 2 * j, 0));
        }
    }
    let serial = simulate_with(
        &layout,
        &base(SimEngine::Exhaustive).with_threads(1).with_k(5),
    );
    assert!(
        serial.stats.visited >= 1 << 14,
        "not chunked: the partitioned path was not exercised"
    );
    for threads in [2usize, 4, 7] {
        let parallel = simulate_with(
            &layout,
            &base(SimEngine::Exhaustive).with_threads(threads).with_k(5),
        );
        assert_bit_identical(&serial, &parallel);
        assert_eq!(serial.stats, parallel.stats);
    }
}

#[test]
fn pruned_and_cached_validation_beats_brute_force() {
    // The ISSUE acceptance criterion: pruned + cached check_operational
    // visits strictly fewer configurations than the exhaustive sweep,
    // asserted through SimStats.
    let design = bestagon_lib::tiles::huff_style_or();
    let brute = design.check_operational_with(&base(SimEngine::Exhaustive));
    let pruned = design.check_operational_with(&base(SimEngine::QuickExact));
    assert!(
        pruned.stats.visited < brute.stats.visited,
        "pruned {} !< brute-force {}",
        pruned.stats.visited,
        brute.stats.visited
    );
    assert!(pruned.stats.pruned > 0);

    // A shared cache removes the remaining work on revalidation.
    let cached = base(SimEngine::QuickExact).with_cache(SimCache::new());
    let first = design.check_operational_with(&cached);
    let second = design.check_operational_with(&cached);
    assert_eq!(first.status, second.status);
    let patterns = 1u64 << design.inputs.len();
    assert_eq!(first.stats.cache_misses, patterns);
    assert_eq!(second.stats.cache_hits, patterns);
    assert_eq!(second.stats.visited, 0, "cache hit must not re-simulate");
}

#[test]
fn cache_is_translation_invariant() {
    let cache = SimCache::new();
    let params = base(SimEngine::QuickExact).with_cache(cache);
    let a = simulate_with(&chain(4), &params);
    assert_eq!(a.stats.cache_misses, 1);
    // The same chain shifted rigidly is the same physics: same key.
    let mut shifted = SidbLayout::new();
    for k in 0..4i32 {
        shifted.add_site((24, 3 * k + 6, 0));
        shifted.add_site((26, 3 * k + 6, 0));
    }
    shifted.add_site((24, 4, 1));
    let b = simulate_with(&shifted, &params);
    assert_eq!(b.stats.cache_hits, 1);
    assert_eq!(b.stats.visited, 0);
    for (x, y) in a.states.iter().zip(&b.states) {
        assert_eq!(x.free_energy.to_bits(), y.free_energy.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pruned branch-and-bound engine agrees with the brute-force
    /// Gray-code sweep on arbitrary small layouts. Across *engines* the
    /// energies may differ in the last ULP (different summation order),
    /// so the spectrum is compared within tolerance and the ground
    /// configuration exactly whenever it is unambiguous; within the
    /// branch-and-bound engine, thread counts must stay bit-identical.
    #[test]
    fn quickexact_matches_brute_force_on_random_layouts(
        coords in proptest::collection::vec((0i32..8, 0i32..8), 3..=12),
        threads in 2usize..=4,
    ) {
        let sites: std::collections::BTreeSet<(i32, i32)> = coords.iter().copied().collect();
        let mut layout = SidbLayout::new();
        for (x, y) in &sites {
            layout.add_site((*x * 2, *y * 2, 0));
        }
        let brute = simulate_with(&layout, &base(SimEngine::Exhaustive).with_k(4).with_threads(1));
        let quick = simulate_with(&layout, &base(SimEngine::QuickExact).with_k(4).with_threads(1));
        prop_assert_eq!(brute.states.len(), quick.states.len());
        for (b, q) in brute.states.iter().zip(&quick.states) {
            prop_assert!((b.free_energy - q.free_energy).abs() < 1e-9);
        }
        let unambiguous = brute.states.len() < 2
            || brute.states[1].free_energy - brute.states[0].free_energy > 1e-9;
        if unambiguous {
            prop_assert_eq!(&brute.states[0].config, &quick.states[0].config);
        }
        prop_assert!(quick.stats.visited + quick.stats.pruned > 0);
        // Same engine, more threads: bit-identical, not just close.
        let parallel = simulate_with(
            &layout,
            &base(SimEngine::QuickExact).with_k(4).with_threads(threads),
        );
        assert_bit_identical(&quick, &parallel);
    }
}
