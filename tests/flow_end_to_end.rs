//! End-to-end integration tests: Verilog specification → verified,
//! dot-accurate SiDB layout, across the whole crate stack.

use bestagon_core::benchmarks::benchmark;
use bestagon_core::flow::{FlowError, FlowOptions, FlowRequest, FlowResult, PnrMethod};
use fcn_equiv::Equivalence;
use fcn_logic::network::Xag;

fn default_options(pnr: PnrMethod) -> FlowOptions {
    FlowOptions::new().with_pnr(pnr)
}

fn run(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::netlist(name, xag.clone())
        .with_options(options.clone())
        .execute()
}

fn run_verilog(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::verilog(source)
        .with_options(options.clone())
        .execute()
}

#[test]
fn xor2_flow_matches_paper_dimensions() {
    let b = benchmark("xor2");
    let r = run(
        "xor2",
        &b.xag,
        &default_options(PnrMethod::Exact { max_area: 60 }),
    )
    .expect("flow succeeds");
    // Paper Table 1: 2 × 3 tiles.
    assert_eq!((r.layout.ratio().width, r.layout.ratio().height), (2, 3));
    assert!(r.layout.verify().is_empty());
    assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
    let cell = r.cell.expect("library applied");
    assert!((cell.area_nm2 - 2403.98).abs() < 0.01, "{}", cell.area_nm2);
    assert!(cell.num_sidbs() > 0);
}

#[test]
fn all_small_benchmarks_flow_exactly() {
    for name in ["xor2", "xnor2", "par_gen", "majority"] {
        let b = benchmark(name);
        let r = run(
            name,
            &b.xag,
            &default_options(PnrMethod::Exact { max_area: 100 }),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.exact, "{name}");
        assert!(r.layout.verify().is_empty(), "{name}");
        assert_eq!(r.equivalence, Some(Equivalence::Equivalent), "{name}");
        assert!(r.supertiles.is_fabricable(), "{name}");
    }
}

#[test]
fn heuristic_flow_covers_every_benchmark() {
    for name in bestagon_core::benchmarks::benchmark_names() {
        let b = benchmark(name);
        let r = run(name, &b.xag, &default_options(PnrMethod::Heuristic))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.layout.verify().is_empty(), "{name}");
        assert_eq!(r.equivalence, Some(Equivalence::Equivalent), "{name}");
        let cell = r.cell.expect("library applied");
        assert!(cell.num_sidbs() > 0, "{name}");
    }
}

#[test]
fn sqd_export_contains_all_dots() {
    let b = benchmark("xor2");
    let r = run("xor2", &b.xag, &default_options(PnrMethod::Heuristic)).expect("flow");
    let cell = r.cell.as_ref().expect("library applied");
    let sqd = r.to_sqd().expect("export");
    assert_eq!(sqd.matches("<dbdot>").count(), cell.num_sidbs());
}

#[test]
fn verilog_to_layout_round_trip() {
    let src = "
        module voter (a, b, c, f);
          input a, b, c;
          output f;
          assign f = (a & b) | (a & c) | (b & c);
        endmodule";
    let r = run_verilog(
        src,
        &default_options(PnrMethod::ExactWithFallback { max_area: 100 }),
    )
    .expect("flow");
    assert_eq!(r.name, "voter");
    assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
}

#[test]
fn broken_specifications_are_rejected() {
    let err = run_verilog(
        "module t (a, f); input a; output f; assign f = a & ghost; endmodule",
        &FlowOptions::default(),
    )
    .expect_err("undefined signal");
    assert!(format!("{err}").contains("ghost"));
}

#[test]
fn cartesian_baseline_layouts_are_equivalent_too() {
    use fcn_equiv::check_equivalence_cart;
    use fcn_logic::techmap::{map_xag, MapOptions};
    use fcn_pnr::{cartesian_exact_pnr, ExactOptions, NetGraph};

    for name in ["xor2", "par_gen"] {
        let b = benchmark(name);
        let net = map_xag(&b.xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("placeable");
        let result = cartesian_exact_pnr(&graph, &ExactOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.layout.verify().is_empty(), "{name}");
        assert_eq!(
            check_equivalence_cart(&b.xag, &result.layout).expect("checkable"),
            fcn_equiv::Equivalence::Equivalent,
            "{name}"
        );
    }
}

#[test]
fn flow_exports_consistent_verilog() {
    // The optimized network the flow exports must be functionally
    // identical to the original specification.
    let b = benchmark("par_gen");
    let r = run("par_gen", &b.xag, &default_options(PnrMethod::Heuristic)).expect("flow");
    let exported = r.to_verilog();
    let (_, reparsed) =
        fcn_logic::verilog::parse_verilog(&exported).unwrap_or_else(|e| panic!("{e}\n{exported}"));
    for row in 0..8u32 {
        let inputs: Vec<bool> = (0..3).map(|i| (row >> i) & 1 == 1).collect();
        assert_eq!(
            b.xag.simulate(&inputs),
            reparsed.simulate(&inputs),
            "row {row}"
        );
    }
}

#[test]
fn svg_renderings_cover_the_layout() {
    let b = benchmark("xor2");
    let r = run("xor2", &b.xag, &default_options(PnrMethod::Heuristic)).expect("flow");
    let cell = r.cell.as_ref().expect("library applied");
    let tiles_svg = bestagon_lib::svg::layout_to_svg(&r.layout);
    let dots_svg = bestagon_lib::svg::sidb_to_svg(&cell.sidb, Some(&r.layout));
    assert_eq!(
        tiles_svg.matches("<polygon").count() as u64,
        r.layout.ratio().tile_count()
    );
    assert_eq!(dots_svg.matches("<circle").count(), cell.num_sidbs());
}

#[test]
fn blif_entry_point_matches_verilog() {
    let blif = ".model xor2\n.inputs a b\n.outputs f\n.names a b f\n10 1\n01 1\n.end\n";
    let r = FlowRequest::blif(blif)
        .with_options(default_options(PnrMethod::Exact { max_area: 60 }))
        .execute()
        .expect("flow");
    assert_eq!(r.name, "xor2");
    assert_eq!((r.layout.ratio().width, r.layout.ratio().height), (2, 3));
}
