//! A/B validation of the incremental exact P&R engine: with
//! learned-clause reuse across aspect-ratio probes enabled, the flow must
//! produce **byte-identical** layouts, SiQAD exports, and equivalence
//! verdicts to the from-scratch engine — at one and at four portfolio
//! threads. The incremental solve is a warm pre-check whose winner is
//! re-derived on a fresh solver, so any divergence here is a soundness
//! bug, not a tuning difference.

use bestagon_core::benchmarks::benchmark;
use bestagon_core::flow::{FlowOptions, FlowRequest, FlowResult, PnrMethod};

/// The Table 1 evaluation circuits, minus the three slowest
/// (`t_5`, `majority_5_r1`, `newtag`) which take minutes under a debug
/// build; the release-mode `examples/table1.rs` run covers those.
const CIRCUITS: &[&str] = &[
    "xor2",
    "xnor2",
    "par_gen",
    "mux21",
    "par_check",
    "xor5_r1",
    "xor5_majority",
    "t",
    "c17",
    "majority",
    "cm82a_5",
];

fn flow(name: &str, incremental: bool, threads: usize) -> FlowResult {
    let b = benchmark(name);
    let options = FlowOptions::new()
        .with_pnr(PnrMethod::ExactWithFallback { max_area: 120 })
        .with_incremental(incremental)
        .with_threads(threads);
    FlowRequest::netlist(name, b.xag.clone())
        .with_options(options)
        .execute()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn incremental_flow_is_byte_identical_to_scratch() {
    for name in CIRCUITS {
        let reference = flow(name, false, 1);
        assert!(reference.exact, "{name}: exact within the area bound");
        for threads in [1, 4] {
            let warm = flow(name, true, threads);
            assert_eq!(
                reference.layout.render_ascii(),
                warm.layout.render_ascii(),
                "{name} @ {threads} threads: layout bytes"
            );
            assert_eq!(
                reference.to_sqd(),
                warm.to_sqd(),
                "{name} @ {threads} threads: SiQAD export bytes"
            );
            assert_eq!(
                reference.equivalence, warm.equivalence,
                "{name} @ {threads} threads: equivalence verdict"
            );
            assert_eq!(
                reference.exact, warm.exact,
                "{name} @ {threads} threads: exact-engine flag"
            );
        }
    }
}

/// The warm engine must actually be warm: its flow report carries the
/// per-probe reuse counters that `BENCH_table1.json` aggregates.
#[test]
fn incremental_flow_reports_reuse_telemetry() {
    let warm = flow("par_check", true, 1);
    let pnr = warm.report.root.child("step4:pnr").expect("pnr stage");
    assert_eq!(pnr.notes.get("engine").map(String::as_str), Some("exact"));
    let warm_probes = pnr.counters.get("pnr.warm_probes").copied().unwrap_or(0);
    assert!(
        warm_probes > 0,
        "no warm probes recorded: {:?}",
        pnr.counters
    );
    assert!(
        pnr.counters.contains_key("pnr.learned_retained"),
        "{:?}",
        pnr.counters
    );

    let cold = flow("par_check", false, 1);
    let cold_pnr = cold.report.root.child("step4:pnr").expect("pnr stage");
    assert!(
        !cold_pnr.counters.contains_key("pnr.warm_probes"),
        "from-scratch mode must not claim reuse: {:?}",
        cold_pnr.counters
    );
}
