//! Regression pins for the physically validated portion of the Bestagon
//! library (the Figure 5 experiment's "operational" set): these designs
//! reproduced their full truth tables in exact ground-state simulation
//! when calibrated, and must keep doing so.

use bestagon_lib::tiles::{
    double_wire, fanout_nw, gate_catalog, huff_style_or, inverter_nw_se, inverter_nw_sw,
    two_input_gate, wire_nw_se, wire_nw_sw,
};
use fcn_logic::GateKind;
use sidb_sim::operational::GateDesign;
use sidb_sim::stability::{logic_stability, worst_case_gap_ev};
use sidb_sim::{PhysicalParams, SimEngine, SimParams};

fn assert_operational(design: &GateDesign) {
    let sim = SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact);
    let report = design.check_operational_with(&sim);
    assert!(
        report.is_operational(),
        "{}: {:?}",
        design.name,
        report.status
    );
}

fn catalog_gate(kind: GateKind) -> GateDesign {
    let (_, name, table, frame) = gate_catalog()
        .into_iter()
        .find(|(k, ..)| *k == kind)
        .expect("gate in catalog");
    two_input_gate(name, &frame, table)
}

#[test]
fn validated_tile_set_stays_operational() {
    for design in [
        huff_style_or(),
        wire_nw_sw(),
        inverter_nw_sw(),
        double_wire(),
        catalog_gate(GateKind::And),
        catalog_gate(GateKind::Or),
        catalog_gate(GateKind::Nor),
    ] {
        assert_operational(&design);
    }
}

#[test]
fn designer_repaired_tiles_stay_operational() {
    // These tiles were non-operational until the automated designer
    // (`bestagon_lib::designer`) found their canvas dots — the repairs
    // are baked into the constructors and pinned here under the paper's
    // default physical parameters.
    for design in [wire_nw_se(), inverter_nw_se(), fanout_nw()] {
        assert_operational(&design);
    }
}

#[test]
fn huff_or_works_at_figure_1c_parameters() {
    let sim = SimParams::new(PhysicalParams::default().with_mu_minus(-0.28))
        .with_engine(SimEngine::Exhaustive);
    let report = huff_style_or().check_operational_with(&sim);
    assert!(report.is_operational(), "{:?}", report.status);
}

#[test]
fn validated_gates_have_resolvable_stability_gaps() {
    // Each validated logic tile must keep its ground state separated from
    // the nearest wrong-reading state by a positive gap.
    for design in [
        huff_style_or(),
        catalog_gate(GateKind::And),
        catalog_gate(GateKind::Or),
    ] {
        let stability = logic_stability(
            &design,
            &PhysicalParams::default(),
            6,
            SimEngine::QuickExact,
        );
        if let Some(gap) = worst_case_gap_ev(&stability) {
            assert!(gap > 0.0, "{}: non-positive gap", design.name);
        }
    }
}

#[test]
fn operational_gates_agree_with_their_truth_tables_under_annealing() {
    // The paper validated with SimAnneal; our annealer must agree with
    // the exact engine on the validated set.
    use sidb_sim::simanneal::AnnealParams;
    let sim =
        SimParams::new(PhysicalParams::default()).with_engine(SimEngine::Anneal(AnnealParams {
            instances: 30,
            ..Default::default()
        }));
    for design in [wire_nw_sw(), inverter_nw_sw()] {
        let report = design.check_operational_with(&sim);
        assert!(
            report.is_operational(),
            "{}: {:?}",
            design.name,
            report.status
        );
    }
}
