//! Property-based tests on the logic-synthesis substrate: rewriting and
//! technology mapping must preserve functionality on arbitrary networks,
//! and placement & routing must preserve it through to the layout.

use fcn_equiv::{check_equivalence, Equivalence};
use fcn_logic::network::{Signal, Xag};
use fcn_logic::rewrite::{rewrite, RewriteOptions};
use fcn_logic::techmap::{map_xag, MapOptions};
use fcn_pnr::{heuristic_pnr, NetGraph};
use proptest::prelude::*;

/// A random XAG built from a sequence of operations over growing signals.
#[derive(Debug, Clone)]
struct NetworkRecipe {
    num_inputs: usize,
    ops: Vec<(u8, usize, usize, bool, bool)>,
}

fn arb_recipe() -> impl Strategy<Value = NetworkRecipe> {
    (
        2usize..5,
        proptest::collection::vec(
            (0u8..3, 0usize..64, 0usize..64, any::<bool>(), any::<bool>()),
            1..14,
        ),
    )
        .prop_map(|(num_inputs, ops)| NetworkRecipe { num_inputs, ops })
}

fn build(recipe: &NetworkRecipe) -> Option<Xag> {
    let mut xag = Xag::new();
    let mut signals: Vec<Signal> = (0..recipe.num_inputs)
        .map(|i| xag.primary_input(format!("i{i}")))
        .collect();
    for &(op, a, b, ca, cb) in &recipe.ops {
        let x = signals[a % signals.len()].complement_if(ca);
        let y = signals[b % signals.len()].complement_if(cb);
        let s = match op {
            0 => xag.and(x, y),
            1 => xag.xor(x, y),
            _ => xag.or(x, y),
        };
        signals.push(s);
    }
    // Output: fold every input in via AND-OR so no PI dangles and the
    // output is non-constant for mapping.
    let mut out = *signals.last()?;
    for &pi in signals.iter().take(recipe.num_inputs) {
        out = xag.xor(out, pi);
    }
    if out.node().index() == 0 {
        return None;
    }
    xag.primary_output("f", out);
    let cleaned = xag.cleaned();
    let counts = cleaned.fanout_counts();
    let all_used = cleaned
        .primary_inputs()
        .iter()
        .all(|pi| counts[pi.index()] > 0);
    (cleaned.num_gates() > 0 && all_used).then_some(cleaned)
}

fn equivalent(a: &Xag, b: &Xag) -> bool {
    let n = a.num_pis();
    (0..(1u32 << n)).all(|row| {
        let inputs: Vec<bool> = (0..n).map(|i| (row >> i) & 1 == 1).collect();
        a.simulate(&inputs) == b.simulate(&inputs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cut rewriting never changes the function and never grows the
    /// network.
    #[test]
    fn rewriting_preserves_function(recipe in arb_recipe()) {
        if let Some(xag) = build(&recipe) {
            let rewritten = rewrite(&xag, RewriteOptions::default());
            prop_assert!(equivalent(&xag, &rewritten));
            prop_assert!(rewritten.num_gates() <= xag.num_gates());
        }
    }

    /// Technology mapping preserves the function bit for bit.
    #[test]
    fn mapping_preserves_function(recipe in arb_recipe()) {
        if let Some(xag) = build(&recipe) {
            let net = map_xag(&xag, MapOptions::default()).expect("mappable");
            let n = xag.num_pis();
            for row in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (row >> i) & 1 == 1).collect();
                prop_assert_eq!(xag.simulate(&inputs), net.simulate(&inputs));
            }
        }
    }

    /// The heuristic router always yields a DRC-clean layout that the SAT
    /// equivalence checker certifies against the specification.
    #[test]
    fn routed_layouts_are_clean_and_equivalent(recipe in arb_recipe()) {
        if let Some(xag) = build(&recipe) {
            let net = map_xag(&xag, MapOptions::default()).expect("mappable");
            let graph = NetGraph::new(net).expect("placeable");
            let layout = heuristic_pnr(&graph).expect("heuristic routes every legalized netlist");
            prop_assert!(layout.verify().is_empty());
            prop_assert_eq!(
                check_equivalence(&xag, &layout).expect("checkable"),
                Equivalence::Equivalent
            );
        }
    }
}
