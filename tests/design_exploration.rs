//! Design-space exploration for the Bestagon tile library.
//!
//! These tests are the reproduction's counterpart of the paper's
//! reinforcement-learning design loop: systematic sweeps over tile
//! geometry knobs, scored by exact ground-state simulation. The cheap
//! checks run in CI; the full sweeps are `#[ignore]`d search tools —
//! run them with `cargo test --release --test design_exploration --
//! --ignored --nocapture` when (re)calibrating the library.

use sidb_sim::charge::ChargeState::Negative;
use sidb_sim::layout::SidbLayout;
use sidb_sim::{simulate_with, PhysicalParams, SimEngine, SimParams};

fn quickexact_params() -> SimParams {
    SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact)
}

fn hp(l: &mut SidbLayout, cx: i32, y: i32) {
    l.add_site((cx - 1, y, 0));
    l.add_site((cx + 1, y, 0));
}

/// Gate candidate. Left arm: col x15 rows 1..9 + run9 to pusher (lx,9).
/// Right arm: col x45 rows 1..9 (+ optional (45,11) flip) + run to pusher (rx, rrow).
/// Core: vertical dots (ccx, cy),(ccx,cy+1). Readout pair (rox, roy), then
/// run at roy to 45 and col x45 down to out port 22.
#[derive(Clone, Copy, Debug)]
struct Knobs {
    lx: i32,
    rx: i32,
    rrow: i32, // 9 (even parity) or 11 (odd parity, extra flip at (45,11))
    ccx: i32,
    cy: i32,
    rox: i32,
    roy: i32,
    bias: Option<(i32, i32)>,
    ostep: i32,
}

fn build(k: &Knobs, a: bool, b: bool) -> SidbLayout {
    let mut l = SidbLayout::new();
    for y in [1, 4, 7] {
        hp(&mut l, 15, y);
        hp(&mut l, 45, y);
    }
    // left run at row 7
    hp(&mut l, 22, 7);
    hp(&mut l, k.lx, 7);
    // right arm: rrow 7 (even flips) or 10 (odd, extra pair at (45,10))
    if k.rrow == 10 {
        hp(&mut l, 45, 10);
        hp(&mut l, 38, 10);
        hp(&mut l, k.rx, 10);
    } else {
        hp(&mut l, 38, 7);
        hp(&mut l, k.rx, 7);
    }
    // core: vertical pair
    l.add_site((k.ccx, k.cy, 0));
    l.add_site((k.ccx, k.cy + 1, 0));
    // readout pair converts back to horizontal, then run to the out column
    hp(&mut l, k.rox, k.roy);
    hp(&mut l, 38, k.roy);
    hp(&mut l, 45, k.roy);
    let mut y = k.roy + k.ostep;
    while y < 22 {
        hp(&mut l, 45, y);
        y += k.ostep;
    }
    hp(&mut l, 45, 22);
    if let Some((bx, by)) = k.bias {
        l.add_site((bx, by, 0));
    }
    // perturbers (standard): v=1 -> left phantom dot at row -1
    l.add_site(if a { (14, -1, 0) } else { (16, -1, 0) });
    l.add_site(if b { (44, -1, 0) } else { (46, -1, 0) });
    l.add_site((45, 25, 0));
    l
}

fn out_value(l: &SidbLayout) -> Option<bool> {
    let gs = simulate_with(l, &quickexact_params()).states.pop()?.config;
    let left = l.index_of((44, 22, 0))?;
    let right = l.index_of((46, 22, 0))?;
    // output convention: value 1 = electron LEFT
    match (gs.state(left) == Negative, gs.state(right) == Negative) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    }
}

fn classify(r: &[Option<bool>]) -> &'static str {
    match r {
        [Some(false), Some(true), Some(true), Some(true)] => "OR",
        [Some(false), Some(false), Some(false), Some(true)] => "AND",
        [Some(true), Some(false), Some(false), Some(false)] => "NOR",
        [Some(true), Some(true), Some(true), Some(false)] => "NAND",
        [Some(false), Some(true), Some(true), Some(false)] => "XOR",
        [Some(true), Some(false), Some(false), Some(true)] => "XNOR",
        [Some(false), Some(false), Some(true), Some(true)] => "B",
        [Some(true), Some(true), Some(false), Some(false)] => "NOT-B",
        [Some(false), Some(true), Some(false), Some(true)] => "A",
        [Some(true), Some(false), Some(true), Some(false)] => "NOT-A",
        [Some(false), Some(false), Some(false), Some(false)] => "FALSE",
        [Some(true), Some(true), Some(true), Some(true)] => "TRUE",
        _ => "?",
    }
}

#[test]
#[ignore = "search tool; minutes of runtime"]
fn random_gate_search() {
    // Randomized structural + bias search for the remaining gate types.
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    type Found = std::collections::HashMap<&'static str, (Knobs, Option<(i32, i32)>)>;
    let mut found: Found = Default::default();
    for _ in 0..20000 {
        let k = Knobs {
            lx: 24 + (rand() % 6) as i32,
            rx: 30 + (rand() % 6) as i32,
            rrow: if rand() % 2 == 0 { 7 } else { 10 },
            ccx: 26 + (rand() % 7) as i32,
            cy: 10 + (rand() % 5) as i32,
            rox: 31 + (rand() % 5) as i32,
            roy: 15 + (rand() % 3) as i32,
            bias: if rand() % 3 == 0 {
                None
            } else {
                Some((22 + (rand() % 17) as i32, 8 + (rand() % 12) as i32))
            },
            ostep: if rand() % 2 == 0 { 3 } else { 2 },
        };
        let mut r = vec![];
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            r.push(out_value(&build(&k, a, b)));
        }
        let c = classify(&r);
        if matches!(c, "NOR" | "NAND" | "XOR" | "XNOR") && !found.contains_key(c) {
            println!("FOUND {c}: {k:?}");
            found.insert(c, (k, k.bias));
            if found.len() >= 4 {
                break;
            }
        }
    }
    println!("search done: {:?}", found.keys().collect::<Vec<_>>());
}

#[test]
#[ignore = "search tool; minutes of runtime"]
fn bias_sweep() {
    let mut found: std::collections::HashMap<&'static str, Vec<Knobs>> = Default::default();
    for bx in 22..=38 {
        for by in 9..=19 {
            let k = Knobs {
                lx: 28,
                rx: 32,
                rrow: 10,
                ccx: 28,
                cy: 13,
                rox: 33,
                roy: 16,
                bias: Some((bx, by)),
                ostep: 3,
            };
            let mut r = vec![];
            for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
                r.push(out_value(&build(&k, a, b)));
            }
            let c = classify(&r);
            if matches!(c, "OR" | "AND" | "NOR" | "NAND" | "XOR" | "XNOR") {
                println!("{c}: bias ({bx},{by})");
                found.entry(c).or_default().push(k);
            }
        }
    }
    println!(
        "summary: {:?}",
        found.iter().map(|(k, v)| (k, v.len())).collect::<Vec<_>>()
    );
}

#[test]
#[ignore = "search tool; tens of minutes of runtime"]
fn knob_sweep() {
    let mut found: std::collections::HashMap<&'static str, Knobs> = Default::default();
    let mut tally: std::collections::HashMap<&'static str, usize> = Default::default();
    for rrow in [7i32, 10] {
        for lx in [26i32, 28] {
            for rx in [32i32, 34] {
                for ccx in [28i32, 30, 32] {
                    for cy in [10i32, 11, 12, 13] {
                        for rox in [33i32, 35] {
                            for roy in [15i32, 16, 17] {
                                let k = Knobs {
                                    lx,
                                    rx,
                                    rrow,
                                    ccx,
                                    cy,
                                    rox,
                                    roy,
                                    bias: None,
                                    ostep: 3,
                                };
                                let mut r = vec![];
                                for (a, b) in
                                    [(false, false), (true, false), (false, true), (true, true)]
                                {
                                    r.push(out_value(&build(&k, a, b)));
                                }
                                let c = classify(&r);
                                *tally.entry(c).or_default() += 1;
                                if matches!(c, "OR" | "AND" | "NOR" | "NAND" | "XOR" | "XNOR") {
                                    found.entry(c).or_insert(k);
                                    println!("{c}: {k:?}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    println!("tally: {tally:?}");
}

#[test]
fn diagnose2() {
    use bestagon_lib::tiles::*;
    use sidb_sim::operational::OperationalStatus;
    let sim_params = quickexact_params();
    for (name, d) in [
        ("straight inv", inverter_nw_sw()),
        ("double", double_wire()),
        ("diag wire", wire_nw_se()),
        ("fanout", fanout_nw()),
    ] {
        match d.check_operational_with(&sim_params).status {
            OperationalStatus::Operational => println!("{name}: OK"),
            OperationalStatus::NonOperational {
                pattern,
                observed,
                expected,
            } => {
                println!(
                    "{name}: FAIL pattern {pattern} observed {observed:?} expected {expected:?}"
                );
                let sim = d.simulate_pattern_with(pattern, &sim_params).unwrap();
                let neg: Vec<String> = sim
                    .layout
                    .sites()
                    .iter()
                    .zip(sim.ground_state.states())
                    .filter(|(_, c)| **c == Negative)
                    .map(|(s, _)| format!("({},{})", s.x, s.y))
                    .collect();
                println!("   neg: {}", neg.join(" "));
            }
        }
    }
}

/// A fast regression guard: the calibrated AND frame stays functional.
#[test]
fn calibrated_and_frame_is_operational() {
    let k = Knobs {
        lx: 28,
        rx: 32,
        rrow: 10,
        ccx: 28,
        cy: 13,
        rox: 33,
        roy: 16,
        bias: None,
        ostep: 3,
    };
    let mut r = vec![];
    for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
        r.push(out_value(&build(&k, a, b)));
    }
    assert_eq!(classify(&r), "AND", "{r:?}");
}

/// Quantifies the razor-thin ground-state margins that make SiDB gate
/// design hard: the second-best valid configuration of a standard wire
/// column sits within a couple of meV of the ground state.
#[test]
fn wire_phase_margins_are_milli_ev() {
    let mut l = SidbLayout::new();
    for y in [1, 4, 7, 10, 13, 16, 19, 22] {
        hp(&mut l, 15, y);
    }
    l.add_site((14, -2, 1));
    l.add_site((15, 25, 0));
    let states = simulate_with(&l, &quickexact_params().with_k(2)).states;
    assert_eq!(states.len(), 2);
    let gap_ev = states[1].free_energy - states[0].free_energy;
    assert!(gap_ev > 0.0);
    assert!(gap_ev < 0.02, "gap {gap_ev} eV — margins are meV-scale");
}
