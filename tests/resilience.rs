//! End-to-end resilience tests: budget-driven graceful degradation,
//! panic isolation at every stage boundary, and deterministic fault
//! injection covering each failure class — panic, budget exhaustion,
//! interrupt, and malformed intermediate data.
//!
//! Every test sets its [`FlowBudget`] explicitly so the suite is immune
//! to `FLOW_*` environment variables the CI matrix may have exported.

use std::sync::Arc;

use bestagon_core::benchmark;
use bestagon_core::flow::{
    Deadline, DegradeTrigger, FlowBudget, FlowError, FlowOptions, FlowRequest, FlowResult,
    PnrMethod,
};
use fcn_budget::fault::{install, Fault, FaultPlan};
use fcn_equiv::{EquivError, Equivalence, MiterLimit};
use fcn_logic::network::Xag;

const AND2: &str = "module and2 (a, b, f); input a, b; output f; assign f = a & b; endmodule";

fn unbounded() -> FlowOptions {
    FlowOptions::new().with_budget(FlowBudget::unbounded())
}

fn run(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::netlist(name, xag.clone())
        .with_options(options.clone())
        .execute()
}

fn run_verilog(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::verilog(source)
        .with_options(options.clone())
        .execute()
}

/// The acceptance scenario: a deliberately tiny deadline on a Table 1
/// circuit returns `Ok` with a heuristic layout and a populated
/// degradation record — never a panic or a bare error.
#[test]
fn tiny_deadline_degrades_to_heuristic_with_record() {
    let b = benchmark("par_gen");
    let options = FlowOptions::new()
        .with_budget(FlowBudget::unbounded().with_deadline(Deadline::after_ms(0)));
    let r = run("par_gen", &b.xag, &options).expect("a budgeted flow degrades, never errors");
    assert!(!r.exact, "expired deadline must force the heuristic engine");
    assert!(r.degraded());
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step4:pnr" && d.trigger == DegradeTrigger::Deadline));
    // Verification ran bounded and reported its ignorance explicitly.
    assert!(matches!(r.equivalence, Some(Equivalence::Unknown { .. })));
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step5:equiv" && d.trigger == DegradeTrigger::Deadline));
    // The degraded artifact is still a real, DRC-clean layout.
    assert!(r.layout.verify().is_empty());
    assert!(r.cell.expect("library applied").num_sidbs() > 0);
    // And the report records the events for fleet monitoring.
    assert!(r.report.root.counters.contains_key("flow.degraded"));
}

/// A bounded-but-unexhausted run takes the exact path and produces the
/// exact same artifact as an unbounded one.
#[test]
fn loose_budget_is_byte_identical_to_unbounded() {
    let b = benchmark("xor2");
    let free = run("xor2", &b.xag, &unbounded()).expect("flow");
    let loose = run(
        "xor2",
        &b.xag,
        &FlowOptions::new().with_budget(
            FlowBudget::unbounded()
                .with_deadline(Deadline::after_ms(600_000))
                .with_sat_conflicts_per_probe(u64::MAX)
                .with_sat_conflicts_total(u64::MAX)
                .with_equiv_conflicts(u64::MAX)
                .with_sim_steps(u64::MAX),
        ),
    )
    .expect("flow");
    assert!(free.exact && loose.exact);
    assert!(free.degradations.is_empty() && loose.degradations.is_empty());
    assert_eq!(free.equivalence, Some(Equivalence::Equivalent));
    // `Unknown` is only reachable when a limit actually fires, so the
    // loose bounded verdict is the same concluded one.
    assert_eq!(loose.equivalence, Some(Equivalence::Equivalent));
    assert_eq!(free.to_sqd(), loose.to_sqd());
    assert_eq!(free.to_verilog(), loose.to_verilog());
}

/// An injected panic at any of the eight stage boundaries surfaces as
/// `FlowError::Internal` naming that stage — never an unwind.
#[test]
fn stage_panics_become_typed_internal_errors() {
    for stage in [
        "step1:parse",
        "step2:rewrite",
        "step3:techmap",
        "step4:pnr",
        "step5:equiv",
        "step6:supertiles",
        "step7:apply",
        "step8:export",
    ] {
        let _scope = install(Arc::new(FaultPlan::single(stage, Fault::Panic)));
        match run_verilog(AND2, &unbounded()) {
            Err(FlowError::Internal { stage: s, payload }) => {
                assert_eq!(s, stage);
                assert!(
                    payload.contains(stage),
                    "payload `{payload}` names the point"
                );
            }
            other => panic!("{stage}: expected Internal, got {other:?}"),
        }
    }
}

/// A panic inside a portfolio worker is caught by the scheduler,
/// siblings are cancelled, and the flow reports it typed — at any
/// thread count.
#[test]
fn worker_panic_is_typed_and_cancels_siblings() {
    for threads in [1, 4] {
        let b = benchmark("xor2");
        let _scope = install(Arc::new(FaultPlan::single("pnr.probe", Fault::Panic)));
        match run("xor2", &b.xag, &unbounded().with_threads(threads)) {
            Err(FlowError::Internal { stage, payload }) => {
                assert_eq!(stage, "step4:pnr");
                assert!(payload.contains("pnr.probe"), "payload: {payload}");
            }
            other => panic!("threads={threads}: expected Internal, got {other:?}"),
        }
    }
}

/// Exhausting the cumulative SAT conflict budget ends the scan and
/// triggers the documented fallback to the heuristic engine.
#[test]
fn conflict_budget_exhaustion_falls_back_to_heuristic() {
    let b = benchmark("xor2");
    let options =
        FlowOptions::new().with_budget(FlowBudget::unbounded().with_sat_conflicts_total(0));
    let r = run("xor2", &b.xag, &options).expect("budget exhaustion degrades");
    assert!(!r.exact);
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step4:pnr" && d.trigger == DegradeTrigger::Budget));
    // No equivalence budget was set, so verification still concludes.
    assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
}

/// An injected budget-exhaustion fault at the probe gate takes the same
/// documented path as a genuinely exhausted meter.
#[test]
fn injected_probe_exhaust_falls_back_to_heuristic() {
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("pnr.probe", Fault::Exhaust)));
    let r = run("xor2", &b.xag, &unbounded()).expect("injected exhaustion degrades");
    assert!(!r.exact);
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step4:pnr" && d.trigger == DegradeTrigger::Budget));
}

/// An injected interrupt at the probe gate discards probes (cooperative
/// cancellation); the scan then concludes without those ratios and the
/// fallback ladder still yields a layout.
#[test]
fn injected_probe_interrupt_still_yields_a_layout() {
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("pnr.probe", Fault::Interrupt)));
    let r = run("xor2", &b.xag, &unbounded()).expect("interrupts never fail the flow");
    assert!(
        !r.exact,
        "every probe cancelled, so the heuristic engine produced the layout"
    );
    assert!(r.layout.verify().is_empty());
    assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
}

/// An exhausted equivalence-miter budget downgrades verification to an
/// explicit `Unknown` verdict instead of failing or hanging.
#[test]
fn injected_miter_exhaust_downgrades_verification() {
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("equiv.miter", Fault::Exhaust)));
    let options =
        FlowOptions::new().with_budget(FlowBudget::unbounded().with_equiv_conflicts(1_000_000));
    let r = run("xor2", &b.xag, &options).expect("bounded verification degrades");
    assert!(r.exact, "the P&R stage was not budgeted");
    assert_eq!(
        r.equivalence,
        Some(Equivalence::Unknown {
            limit: MiterLimit::Conflicts
        })
    );
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step5:equiv" && d.trigger == DegradeTrigger::Budget));
}

/// An injected interrupt during a deadline-bounded miter solve reports
/// the deadline limit on the `Unknown` verdict.
#[test]
fn injected_miter_interrupt_reports_deadline_unknown() {
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("equiv.miter", Fault::Interrupt)));
    let options = FlowOptions::new()
        .with_budget(FlowBudget::unbounded().with_deadline(Deadline::after_ms(600_000)));
    let r = run("xor2", &b.xag, &options).expect("bounded verification degrades");
    assert_eq!(
        r.equivalence,
        Some(Equivalence::Unknown {
            limit: MiterLimit::Deadline
        })
    );
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step5:equiv" && d.trigger == DegradeTrigger::Deadline));
}

/// Malformed intermediate data handed to the verifier is detected and
/// reported as a typed error — never a panic or an out-of-bounds crash.
#[test]
fn injected_malformed_network_is_a_typed_error() {
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("step5:equiv", Fault::Malform)));
    match run("xor2", &b.xag, &unbounded()) {
        Err(FlowError::Equivalence(EquivError::MalformedNetwork(msg))) => {
            assert!(!msg.is_empty());
        }
        other => panic!("expected MalformedNetwork, got {other:?}"),
    }
}

/// The rewrite-iteration budget clamps step 2 and records what it gave
/// up; the result still verifies.
#[test]
fn rewrite_iteration_budget_clamps_step2() {
    let b = benchmark("xor5_majority");
    // Heuristic P&R: without rewriting the network is large, and this
    // test is about step 2, not about exact placement of the raw XAG.
    let options = FlowOptions::new()
        .with_pnr(PnrMethod::Heuristic)
        .with_budget(FlowBudget::unbounded().with_rewrite_iterations(0));
    let r = run("xor5_majority", &b.xag, &options).expect("flow");
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step2:rewrite" && d.trigger == DegradeTrigger::Budget));
    assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
}

/// An injected panic in the simulation worker pool leaves empty result
/// slots that the coordinator recomputes serially — the spectrum is
/// bit-identical to a clean run and the recovery is counted.
#[test]
fn injected_sim_partition_panic_recovers_bit_identically() {
    use bestagon_lib::tiles::huff_style_or;
    use sidb_sim::{PhysicalParams, SimEngine, SimParams};
    // Gate validation partitions the 2^k input patterns across the
    // pool; every pattern unit is hit by the injected panic and
    // recomputed by the coordinator.
    let design = huff_style_or();
    let params = SimParams::new(PhysicalParams::default())
        .with_engine(SimEngine::QuickExact)
        .with_threads(4);
    let clean = design.check_operational_with(&params);
    assert_eq!(clean.stats.recovered, 0);

    let plan = Arc::new(FaultPlan::single("sidb.partition", Fault::Panic));
    let scope = install(plan.clone());
    let faulted = design.check_operational_with(&params);
    drop(scope);
    assert!(plan.hits("sidb.partition") > 0, "fault point was reached");
    assert!(faulted.stats.recovered > 0, "recomputed units are counted");
    assert_eq!(clean.status, faulted.status, "recovery is bit-identical");
    assert_eq!(clean.stats.visited, faulted.stats.visited);
}

/// An injected exhaustion at the partition point stops parallel dispatch
/// and the coordinator finishes serially — same results, degraded speed.
#[test]
fn injected_sim_partition_exhaust_serializes_without_changing_results() {
    use bestagon_lib::tiles::huff_style_or;
    use sidb_sim::{PhysicalParams, SimEngine, SimParams};
    let design = huff_style_or();
    let params = SimParams::new(PhysicalParams::default())
        .with_engine(SimEngine::QuickExact)
        .with_threads(4);
    let clean = design.check_operational_with(&params);

    let plan = Arc::new(FaultPlan::single("sidb.partition", Fault::Exhaust));
    let scope = install(plan.clone());
    let faulted = design.check_operational_with(&params);
    drop(scope);
    assert!(plan.hits("sidb.partition") > 0);
    assert_eq!(clean.status, faulted.status, "verdict is fault-invariant");
}

/// A poisoned simulation cache behaves as absent: every access misses,
/// nothing is stored, and the verdict is still correct — a broken cache
/// costs time, never correctness.
#[test]
fn injected_cache_fault_degrades_to_recompute() {
    use bestagon_lib::tiles::wire_nw_sw;
    use sidb_sim::{PhysicalParams, SimCache, SimEngine, SimParams};
    let design = wire_nw_sw();
    let params = SimParams::new(PhysicalParams::default())
        .with_engine(SimEngine::QuickExact)
        .with_cache(SimCache::new());

    let plan = Arc::new(FaultPlan::single("sidb.cache", Fault::Panic));
    let scope = install(plan.clone());
    let first = design.check_operational_with(&params);
    let second = design.check_operational_with(&params);
    drop(scope);
    assert!(plan.hits("sidb.cache") > 0, "fault point was reached");
    assert!(first.is_operational() && second.is_operational());
    assert_eq!(second.stats.cache_hits, 0, "poisoned cache never hits");
    assert!(second.stats.visited > 0, "revalidation recomputed");

    // With the fault cleared the same cache object works again.
    let third = design.check_operational_with(&params);
    let fourth = design.check_operational_with(&params);
    assert!(third.stats.cache_misses > 0);
    assert!(fourth.stats.cache_hits > 0);
    assert_eq!(fourth.stats.visited, 0);
}

/// Heuristic-only flows ignore the SAT probe budgets entirely.
#[test]
fn heuristic_flow_is_unaffected_by_probe_budgets() {
    let b = benchmark("xor2");
    let options = FlowOptions::new()
        .with_pnr(PnrMethod::Heuristic)
        .with_budget(FlowBudget::unbounded().with_sat_conflicts_total(0));
    let r = run("xor2", &b.xag, &options).expect("flow");
    assert!(!r.exact);
    assert!(
        r.degradations.is_empty(),
        "no exact engine ran, so nothing degraded: {:?}",
        r.degradations
    );
}

/// A broken wire skeleton for the designer resilience cases: a column
/// with a hole at rows 14–18, cheap to simulate.
fn broken_wire_skeleton() -> sidb_sim::operational::GateDesign {
    use bestagon_lib::geometry::{column, standard_input_port, standard_output_port, WEST_PORT_X};
    let mut body = sidb_sim::layout::SidbLayout::new();
    column(&mut body, WEST_PORT_X, &[1, 4, 7, 10, 13, 19, 22]);
    sidb_sim::operational::GateDesign {
        name: "WIRE (broken)".into(),
        body,
        inputs: vec![standard_input_port(WEST_PORT_X)],
        outputs: vec![standard_output_port(WEST_PORT_X)],
        truth_table: vec![vec![false], vec![true]],
    }
}

/// A `FLOW_DEADLINE_MS`-scale budget makes the designer return its
/// best-so-far with an honest degradation record instead of hanging.
#[test]
fn designer_degrades_under_flow_scale_deadline() {
    use bestagon_lib::designer::{design_canvas, DesignTrigger, DesignerOptions};
    use fcn_budget::StepBudget;
    let base = broken_wire_skeleton();
    // The region is pinned away from the wire column, so no repair
    // exists and only the deadline can end the search.
    let options = DesignerOptions::new()
        .with_region((40, 3, 44, 8))
        .with_iterations(10_000)
        .with_restarts(64)
        .with_budget(StepBudget::unbounded().with_deadline(Deadline::after_ms(25)));
    let result = design_canvas(&base, &options, &sidb_sim::PhysicalParams::default());
    let degradation = result.degradation.as_ref().expect("degradation recorded");
    assert_eq!(degradation.trigger, DesignTrigger::Deadline);
    assert!(result.stats.restarts_completed < 64, "search was cut short");
}

/// An injected panic at the `designer.restart` point loses every
/// worker-side restart; the coordinator recomputes them from their
/// seeds, so the repaired design is identical to the clean run's.
#[test]
fn injected_designer_restart_panic_recovers_identically() {
    use bestagon_lib::designer::{design_canvas, DesignerOptions};
    let base = broken_wire_skeleton();
    let options = DesignerOptions::new()
        .with_region((13, 14, 17, 18))
        .with_max_dots(3)
        .with_iterations(30)
        .with_restarts(3)
        .with_seed(7)
        .with_threads(2);
    let params = sidb_sim::PhysicalParams::default();
    let clean = design_canvas(&base, &options, &params);
    assert_eq!(clean.stats.recovered, 0);

    let plan = Arc::new(FaultPlan::single("designer.restart", Fault::Panic));
    let scope = install(plan.clone());
    let faulted = design_canvas(&base, &options, &params);
    drop(scope);
    assert!(plan.hits("designer.restart") > 0, "fault point was reached");
    assert!(faulted.stats.recovered > 0, "recomputed restarts counted");
    assert_eq!(clean.canvas, faulted.canvas, "recovery is deterministic");
    assert_eq!(clean.score, faulted.score);
}

/// An injected exhaustion at the `designer.restart` point halts restart
/// dispatch: the search degrades with a fault-trigger record instead of
/// erroring, and still returns a (possibly unimproved) design.
#[test]
fn injected_designer_restart_exhaust_degrades() {
    use bestagon_lib::designer::{design_canvas, DesignTrigger, DesignerOptions};
    let base = broken_wire_skeleton();
    let options = DesignerOptions::new()
        .with_region((13, 14, 17, 18))
        .with_iterations(30)
        .with_restarts(4)
        .with_threads(2);
    let plan = Arc::new(FaultPlan::single("designer.restart", Fault::Exhaust));
    let scope = install(plan.clone());
    let result = design_canvas(&base, &options, &sidb_sim::PhysicalParams::default());
    drop(scope);
    assert!(plan.hits("designer.restart") > 0);
    let degradation = result.degradation.as_ref().expect("degradation recorded");
    assert_eq!(degradation.trigger, DesignTrigger::Fault);
    assert_eq!(result.stats.recovered, 0, "exhausted restarts do not run");
}

/// A surface whose defects compromise every candidate tile makes the
/// circuit unplaceable defect-aware. The flow records the documented
/// defect-avoidance ladder (grown area bound, then a defect-blind
/// placement) as degradations and still returns a layout — never an
/// error or a panic.
#[test]
fn unplaceable_surface_degrades_honestly() {
    use sidb_sim::{Defect, DefectKind, DefectMap};
    let b = benchmark("xor2");
    // One charged vacancy at the center of every tile of the (doubled)
    // scan region: every tile is compromised at any ratio the scan or
    // its defect-avoidance retry can reach.
    let mut defects = Vec::new();
    for ty in 0..12 {
        for tx in 0..12 {
            let (ox, oy) = fcn_coords::siqad::hex_tile_origin(tx, ty);
            defects.push(Defect {
                position: fcn_coords::LatticeCoord::new(ox + 30, oy + 11, 0),
                kind: DefectKind::ChargedVacancy,
            });
        }
    }
    let options = unbounded()
        .with_pnr(PnrMethod::Exact { max_area: 6 })
        .with_surface(DefectMap::new(defects));
    let r = run("xor2", &b.xag, &options).expect("an unplaceable surface degrades");
    assert!(
        r.exact,
        "the defect-blind retry still uses the exact engine"
    );
    let avoidance: Vec<_> = r
        .degradations
        .iter()
        .filter(|d| d.stage == "step4:pnr" && d.trigger == DegradeTrigger::DefectAvoidance)
        .collect();
    assert_eq!(avoidance.len(), 2, "grow + defect-blind: {avoidance:?}");
    assert!(avoidance[1].action.contains("defect-blind"));
    assert!(r.layout.verify().is_empty());
    // Step 7 reports the exposure of the defect-blind placement.
    let apply = r.report.root.child("step7:apply").expect("apply stage");
    assert!(*apply.counters.get("defects.compromised").unwrap_or(&0) > 0);
}

/// An injected exhaustion at the `surface.defect` fault point saturates
/// the blacklist — the unplaceable-surface edge without building a
/// dense map — and takes the same documented degradation ladder.
#[test]
fn injected_surface_exhaust_degrades_like_unplaceable() {
    use sidb_sim::{DefectKind, DefectMap};
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single(
        "surface.defect",
        Fault::Exhaust,
    )));
    let options = unbounded()
        .with_pnr(PnrMethod::ExactWithFallback { max_area: 6 })
        .with_surface(DefectMap::random(3, 1e-5, &DefectKind::ALL));
    let r = run("xor2", &b.xag, &options).expect("degrades, never errors");
    assert!(r
        .degradations
        .iter()
        .any(|d| d.stage == "step4:pnr" && d.trigger == DegradeTrigger::DefectAvoidance));
    assert!(r.layout.verify().is_empty());
}

/// An injected corruption of the surface description surfaces as the
/// typed `FlowError::Surface` spec error — never a panic.
#[test]
fn injected_surface_malform_is_a_typed_error() {
    use sidb_sim::{DefectKind, DefectMap};
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single(
        "surface.defect",
        Fault::Malform,
    )));
    let options = unbounded().with_surface(DefectMap::random(3, 1e-5, &DefectKind::ALL));
    match run("xor2", &b.xag, &options) {
        Err(FlowError::Surface(e)) => assert!(!e.to_string().is_empty()),
        other => panic!("expected FlowError::Surface, got {other:?}"),
    }
}

/// An injected panic at the surface fault point is caught at the stage
/// boundary like any other: a typed internal error naming step 4.
#[test]
fn injected_surface_panic_is_a_typed_internal_error() {
    use sidb_sim::{DefectKind, DefectMap};
    let b = benchmark("xor2");
    let _scope = install(Arc::new(FaultPlan::single("surface.defect", Fault::Panic)));
    let options = unbounded().with_surface(DefectMap::random(3, 1e-5, &DefectKind::ALL));
    match run("xor2", &b.xag, &options) {
        Err(FlowError::Internal { stage, payload }) => {
            assert_eq!(stage, "step4:pnr");
            assert!(payload.contains("surface.defect"), "payload: {payload}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
}

/// Without a configured surface the `surface.defect` fault point is
/// never consulted: a pristine flow cannot be perturbed by it.
#[test]
fn surface_fault_point_is_inert_without_a_surface() {
    let b = benchmark("xor2");
    let plan = Arc::new(FaultPlan::single("surface.defect", Fault::Panic));
    let _scope = install(plan.clone());
    let r = run("xor2", &b.xag, &unbounded()).expect("pristine flow unaffected");
    assert_eq!(plan.hits("surface.defect"), 0, "point never reached");
    assert!(r.degradations.is_empty());
}

/// A domain sweep under an already-expired deadline returns every grid
/// point as `Unknown` with an honest deadline degradation — the caller
/// can see that nothing was decided, instead of reading a map of
/// false `NonOperational` verdicts.
#[test]
fn opdomain_deadline_degrades_honestly() {
    use sidb_sim::opdomain::{DomainGrid, DomainParams, DomainTrigger, SampleStatus};
    use sidb_sim::{PhysicalParams, SimEngine, SimParams};
    let design = bestagon_lib::tiles::wire_nw_sw();
    let params = DomainParams::new(
        SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact),
    )
    .with_grid(DomainGrid {
        steps: 3,
        ..Default::default()
    })
    .with_budget(fcn_budget::StepBudget::unbounded().with_deadline(Deadline::after_ms(0)));
    let domain = design.operational_domain(&params);
    let degradation = domain.degradation.as_ref().expect("degradation recorded");
    assert_eq!(degradation.trigger, DomainTrigger::Deadline);
    assert!(domain
        .samples
        .iter()
        .all(|s| s.status == SampleStatus::Unknown));
    assert_eq!(domain.stats.simulated, 0);
    assert_eq!(domain.nominal_operational(), None, "unknown, not `false`");
    assert_eq!(domain.coverage(), 0.0);
}

/// An injected panic at every `opdomain.point` hit loses each worker's
/// verdict; the coordinator recomputes all of them and the resulting
/// domain is bit-identical to the fault-free run.
#[test]
fn injected_opdomain_point_panic_recovers_identically() {
    use sidb_sim::opdomain::{DomainGrid, DomainParams, DomainStrategy};
    use sidb_sim::{PhysicalParams, SimEngine, SimParams};
    let design = bestagon_lib::tiles::wire_nw_sw();
    let params = DomainParams::new(
        SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact),
    )
    .with_grid(DomainGrid {
        steps: 3,
        ..Default::default()
    })
    .with_strategy(DomainStrategy::Adaptive)
    .with_threads(4);
    let clean = design.operational_domain(&params);
    assert_eq!(clean.stats.sim.recovered, 0);

    let plan = Arc::new(FaultPlan::single("opdomain.point", Fault::Panic));
    let scope = install(plan.clone());
    let faulted = design.operational_domain(&params);
    drop(scope);
    assert!(plan.hits("opdomain.point") > 0, "fault point was reached");
    assert!(faulted.stats.sim.recovered > 0, "recomputes are counted");
    assert_eq!(clean.samples, faulted.samples, "recovery is bit-identical");
    assert!(
        faulted.degradation.is_none(),
        "full recovery, no degradation"
    );
}

/// An injected exhaustion at one `opdomain.point` hit skips exactly
/// that grid point: the sample is reported `Unknown`/`Skipped` and the
/// sweep records a fault degradation instead of guessing a verdict.
#[test]
fn injected_opdomain_point_exhaust_skips_honestly() {
    use sidb_sim::opdomain::{
        DomainGrid, DomainParams, DomainStrategy, DomainTrigger, Provenance, SampleStatus,
    };
    use sidb_sim::{PhysicalParams, SimEngine, SimParams};
    let design = bestagon_lib::tiles::wire_nw_sw();
    let params = DomainParams::new(
        SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact),
    )
    .with_grid(DomainGrid {
        steps: 3,
        ..Default::default()
    })
    .with_strategy(DomainStrategy::Adaptive)
    .with_threads(1);
    let plan = Arc::new(FaultPlan::new().with_rule("opdomain.point", Fault::Exhaust, Some(2)));
    let scope = install(plan.clone());
    let domain = design.operational_domain(&params);
    drop(scope);
    assert!(plan.hits("opdomain.point") > 1, "fault point was reached");
    let degradation = domain.degradation.as_ref().expect("degradation recorded");
    assert_eq!(degradation.trigger, DomainTrigger::Fault);
    let skipped: Vec<_> = domain
        .samples
        .iter()
        .filter(|s| s.provenance == Provenance::Skipped)
        .collect();
    assert_eq!(skipped.len(), 1, "exactly the faulted point is skipped");
    assert_eq!(skipped[0].status, SampleStatus::Unknown);
    assert_eq!(domain.stats.skipped, 1);
}
