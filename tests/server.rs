//! End-to-end tests for the `fcn-server` design daemon: concurrent
//! mixed workloads, determinism across worker counts, honest result
//! caching, typed admission control, and the Send/Sync audit that makes
//! the whole multi-tenant design sound.
//!
//! Registry caveat: `fcn_telemetry::Registry::global()` is process-wide
//! and the test harness runs tests in parallel, so windowed counter
//! assertions use `>=` — another test's flow may land in the window,
//! but counts never go backwards.

use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use fcn_server::{JobStatus, RejectReason, Server, ServerConfig};
use fcn_telemetry::json::Value;

const XOR2: &str = "
    module xor2 (a, b, f);
      input a, b;
      output f;
      assign f = a ^ b;
    endmodule";

const VOTER_BLIF: &str = "\
.model voter
.inputs a b c
.outputs f
.names a b c f
11- 1
1-1 1
-11 1
.end
";

fn exact_options() -> FlowOptions {
    FlowOptions::new().with_pnr(PnrMethod::Exact { max_area: 100 })
}

/// A mixed batch: valid Verilog, valid BLIF, and malformed input, all
/// in flight at once. Every job is answered, failures are typed, and
/// successes carry artifacts and a report.
#[test]
fn concurrent_mixed_batch_answers_every_job() {
    let server = Server::new(ServerConfig::new().with_workers(4));
    let tickets = vec![
        server
            .submit(FlowRequest::verilog(XOR2).with_options(exact_options()))
            .expect("admitted"),
        server
            .submit(FlowRequest::blif(VOTER_BLIF).with_options(exact_options()))
            .expect("admitted"),
        server
            .submit(FlowRequest::verilog("module broken ("))
            .expect("admitted"),
    ];
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    assert_eq!(responses[0].status, JobStatus::Done);
    assert!(responses[0].verilog.as_deref().unwrap().contains("xor2"));
    assert!(responses[0].sqd.is_some(), "library applied by default");
    assert!(responses[0].report.is_some());

    assert_eq!(responses[1].status, JobStatus::Done);
    assert!(responses[1].verilog.as_deref().unwrap().contains("voter"));

    assert_eq!(responses[2].status, JobStatus::Failed);
    assert_eq!(
        responses[2]
            .error
            .as_ref()
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("parse")
    );
}

/// The determinism contract: the same request through a 1-worker and a
/// 4-worker server — cold, then cached — produces byte-identical
/// artifacts, and the replay is honestly marked `cache_hit`.
#[test]
fn results_are_byte_identical_across_worker_counts_and_cache_states() {
    let request = || FlowRequest::verilog(XOR2).with_options(exact_options());
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        let server = Server::new(ServerConfig::new().with_workers(workers));
        let before = server.aggregate();
        let cold = server.submit(request()).expect("admitted").wait();
        let warm = server.submit(request()).expect("admitted").wait();
        assert_eq!(cold.status, JobStatus::Done, "{workers} workers");
        assert_eq!(warm.status, JobStatus::Done, "{workers} workers");
        assert!(!cold.cache_hit, "first run is cold ({workers} workers)");
        assert!(warm.cache_hit, "replay is marked ({workers} workers)");
        assert_eq!(cold.verilog, warm.verilog, "{workers} workers");
        assert_eq!(cold.sqd, warm.sqd, "{workers} workers");
        let window = server.aggregate().diff(&before);
        assert!(
            window
                .counters
                .get("server.cache_hits")
                .copied()
                .unwrap_or(0)
                >= 1,
            "{workers} workers: {:?}",
            window.counters
        );
        assert!(window.counters.get("server.jobs").copied().unwrap_or(0) >= 2);
        runs.push((cold.verilog, cold.sqd));
    }
    assert_eq!(runs[0], runs[1], "1-worker and 4-worker artifacts match");
}

/// A saturated queue rejects at submit with a typed reason — the
/// server never hangs or silently drops work.
#[test]
fn saturated_queue_rejects_with_queue_full() {
    let server = Server::new(ServerConfig::new().with_workers(1).with_queue_capacity(2));
    let outcomes: Vec<_> = (0..12)
        .map(|_| server.submit(FlowRequest::verilog(XOR2).with_options(exact_options())))
        .collect();
    let rejections: Vec<_> = outcomes.into_iter().filter_map(Result::err).collect();
    assert!(
        !rejections.is_empty(),
        "12 submissions against a 2-deep queue must overflow"
    );
    for reason in &rejections {
        assert_eq!(reason, &RejectReason::QueueFull { capacity: 2 });
        assert_eq!(reason.code(), "queue-full");
    }
}

/// An already-expired deadline is rejected at dequeue — the flow never
/// runs, and the client gets the typed reason, not a timeout error.
#[test]
fn expired_deadline_is_rejected_not_run() {
    let server = Server::new(ServerConfig::new());
    let response = server
        .submit(FlowRequest::verilog(XOR2).with_options(exact_options().with_deadline_ms(0)))
        .expect("admitted — expiry is checked at dequeue")
        .wait();
    assert_eq!(response.status, JobStatus::Rejected);
    assert_eq!(
        response
            .error
            .as_ref()
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("deadline-expired")
    );
}

/// The response JSON round-trips through the hand-rolled serde-free
/// parser with stable field names — the wire contract of `main.rs`.
#[test]
fn job_response_json_round_trips_without_serde() {
    let server = Server::new(ServerConfig::new());
    let response = server
        .submit(FlowRequest::verilog(XOR2).with_options(exact_options()))
        .expect("admitted")
        .wait();
    let text = response.to_value().serialize();
    let parsed = fcn_telemetry::json::parse(&text).expect("serializer emits valid JSON");
    assert_eq!(
        parsed.get("status").and_then(Value::as_str),
        Some("ok"),
        "{text}"
    );
    assert_eq!(
        parsed.get("cache_hit").and_then(Value::as_bool),
        Some(false)
    );
    assert!(parsed.get("verilog").and_then(Value::as_str).is_some());
    assert!(
        parsed.get("report").and_then(|r| r.get("spans")).is_some()
            || parsed.get("report").is_some(),
        "report embedded as an object"
    );
}

/// The Send/Sync audit, pinned at compile time: everything the server
/// shares across threads — and the server handle itself — must be
/// safely shareable. A regression here (say, an `Rc` slipping into
/// `SimCache`) fails this test at compile time, not in production.
#[test]
fn shared_state_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<sidb_sim::SimCache>();
    assert_send_sync::<sidb_sim::DefectMap>();
    assert_send_sync::<fcn_pnr::SessionPool>();
    assert_send_sync::<fcn_telemetry::Registry>();
    assert_send_sync::<bestagon_core::flow::FlowRequest>();
    assert_send_sync::<bestagon_core::flow::FlowOptions>();
    assert_send_sync::<Server>();
    assert_send_sync::<fcn_server::JobResponse>();
    // Tickets move to the waiting client thread but are not shared.
    fn assert_send<T: Send>() {}
    assert_send::<fcn_server::JobTicket>();
}
