//! End-to-end checks of the flow telemetry layer: the report attached to
//! a [`FlowResult`] names the paper's eight stages, its JSON encoding
//! parses with the crate's own parser, and the per-stage wall times are
//! consistent with the total.

use bestagon::flow::benchmarks::benchmark;
use bestagon::flow::flow::{run_flow, FlowOptions, PnrMethod};
use bestagon::telemetry::json::{parse, Value};

const STAGES: [&str; 8] = [
    "step1:parse",
    "step2:rewrite",
    "step3:techmap",
    "step4:pnr",
    "step5:equiv",
    "step6:supertiles",
    "step7:apply",
    "step8:export",
];

fn c17_report() -> bestagon::telemetry::Report {
    let b = benchmark("c17");
    let options = FlowOptions::new().with_pnr(PnrMethod::ExactWithFallback { max_area: 40 });
    run_flow("c17", &b.xag, &options)
        .expect("c17 flows end to end")
        .report
}

#[test]
fn report_names_the_eight_paper_stages() {
    let report = c17_report();
    assert_eq!(report.root.name, "flow");
    assert_eq!(report.stages(), STAGES);
    assert_eq!(
        report.root.notes.get("circuit").map(String::as_str),
        Some("c17")
    );
}

#[test]
fn stage_durations_sum_to_at_most_the_total() {
    let report = c17_report();
    let encoded = report.to_json_pretty();
    let value = parse(&encoded).expect("report JSON must parse");

    let children = value
        .get("children")
        .and_then(Value::as_array)
        .expect("stages");
    let total = value
        .get("duration_ns")
        .and_then(Value::as_f64)
        .expect("total");
    let mut sum = 0.0;
    for child in children {
        sum += child
            .get("duration_ns")
            .and_then(Value::as_f64)
            .expect("stage duration");
    }
    assert!(
        sum <= total,
        "stage durations {sum} ns exceed the flow total {total} ns"
    );

    let names: Vec<&str> = children
        .iter()
        .map(|c| c.get("name").and_then(Value::as_str).expect("stage name"))
        .collect();
    assert_eq!(names, STAGES);
}

#[test]
fn pnr_stage_records_sat_probes() {
    let report = c17_report();
    let pnr = report.root.child("step4:pnr").expect("pnr stage");
    // The exact engine probes aspect ratios in a child span each; every
    // probe carries the solver counters and a verdict note.
    if pnr.notes.get("engine").map(String::as_str) == Some("exact") {
        assert!(
            !pnr.children.is_empty(),
            "exact P&R must record ratio probes"
        );
        for probe in &pnr.children {
            assert!(probe.name.starts_with("ratio:"), "{}", probe.name);
            assert!(probe.counters.contains_key("sat.decisions"), "{probe:?}");
            assert!(probe.notes.contains_key("verdict"), "{probe:?}");
        }
    }
    // The equivalence stage always solves a miter.
    let equiv = report.root.child("step5:equiv").expect("equiv stage");
    let miter = equiv.child("miter").expect("miter span");
    assert!(miter.counters.contains_key("miter.clauses"));
    assert_eq!(
        miter.notes.get("verdict").map(String::as_str),
        Some("equivalent")
    );
}
