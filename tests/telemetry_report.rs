//! End-to-end checks of the flow telemetry layer: the report attached to
//! a [`FlowResult`] names the paper's eight stages, its JSON encoding
//! parses with the crate's own parser, the per-stage wall times are
//! consistent with the total, work histograms surface p50/p90, and the
//! opt-in Chrome-trace export covers the parallel worker threads.

use bestagon::flow::benchmarks::benchmark;
use bestagon::flow::flow::{FlowError, FlowOptions, FlowRequest, FlowResult, PnrMethod};
use bestagon::telemetry::json::{parse, Value};
use bestagon::telemetry::{self, Collector, Report};
use fcn_logic::network::Xag;
use std::sync::{Arc, Mutex, OnceLock};

fn run(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::netlist(name, xag.clone())
        .with_options(options.clone())
        .execute()
}

const STAGES: [&str; 8] = [
    "step1:parse",
    "step2:rewrite",
    "step3:techmap",
    "step4:pnr",
    "step5:equiv",
    "step6:supertiles",
    "step7:apply",
    "step8:export",
];

fn c17_report() -> bestagon::telemetry::Report {
    let b = benchmark("c17");
    let options = FlowOptions::new().with_pnr(PnrMethod::ExactWithFallback { max_area: 40 });
    run("c17", &b.xag, &options)
        .expect("c17 flows end to end")
        .report
}

#[test]
fn report_names_the_eight_paper_stages() {
    let report = c17_report();
    assert_eq!(report.root.name, "flow");
    assert_eq!(report.stages(), STAGES);
    assert_eq!(
        report.root.notes.get("circuit").map(String::as_str),
        Some("c17")
    );
}

#[test]
fn stage_durations_sum_to_at_most_the_total() {
    let report = c17_report();
    let encoded = report.to_json_pretty();
    let value = parse(&encoded).expect("report JSON must parse");

    let children = value
        .get("children")
        .and_then(Value::as_array)
        .expect("stages");
    let total = value
        .get("duration_ns")
        .and_then(Value::as_f64)
        .expect("total");
    let mut sum = 0.0;
    for child in children {
        sum += child
            .get("duration_ns")
            .and_then(Value::as_f64)
            .expect("stage duration");
    }
    assert!(
        sum <= total,
        "stage durations {sum} ns exceed the flow total {total} ns"
    );

    let names: Vec<&str> = children
        .iter()
        .map(|c| c.get("name").and_then(Value::as_str).expect("stage name"))
        .collect();
    assert_eq!(names, STAGES);
}

#[test]
fn pnr_stage_records_sat_probes() {
    let report = c17_report();
    let pnr = report.root.child("step4:pnr").expect("pnr stage");
    // The exact engine probes aspect ratios in a child span each; every
    // probe carries the solver counters and a verdict note.
    if pnr.notes.get("engine").map(String::as_str) == Some("exact") {
        assert!(
            !pnr.children.is_empty(),
            "exact P&R must record ratio probes"
        );
        for probe in &pnr.children {
            assert!(probe.name.starts_with("ratio:"), "{}", probe.name);
            assert!(probe.counters.contains_key("sat.decisions"), "{probe:?}");
            assert!(probe.notes.contains_key("verdict"), "{probe:?}");
        }
    }
    // The equivalence stage always solves a miter.
    let equiv = report.root.child("step5:equiv").expect("equiv stage");
    let miter = equiv.child("miter").expect("miter span");
    assert!(miter.counters.contains_key("miter.clauses"));
    assert_eq!(
        miter.notes.get("verdict").map(String::as_str),
        Some("equivalent")
    );
}

/// Serializes the tests that mutate process-wide environment variables
/// (`TELEMETRY_TRACE`, `TELEMETRY_FILE`) so they cannot observe each
/// other's settings.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn flow_report_carries_work_histograms() {
    let b = benchmark("c17");
    let options = FlowOptions::new()
        .with_pnr(PnrMethod::ExactWithFallback { max_area: 40 })
        .with_tile_validation();
    let report = run("c17", &b.xag, &options)
        .expect("c17 flows end to end")
        .report;

    // Step 7 re-validates every distinct tile design, so the report must
    // carry a per-simulation visited-states distribution…
    let visited = report.histogram_total("sidb.visited");
    assert!(!visited.is_empty(), "tile validation records sidb.visited");
    assert!(visited.p50() <= visited.p90());
    assert!(visited.p90() <= visited.max());
    // …and the exact engine one conflict sample per aspect-ratio probe.
    let pnr = report.root.child("step4:pnr").expect("pnr stage");
    if pnr.notes.get("engine").map(String::as_str) == Some("exact") {
        let conflicts = report.histogram_total("pnr.probe.conflicts");
        assert_eq!(conflicts.count(), pnr.children.len() as u64, "{pnr:?}");
    }
    // Closing stage spans feed the root's span-duration histogram.
    let span_us = report
        .root
        .histograms
        .get(telemetry::SPAN_DURATION_HISTOGRAM)
        .expect("root records child span durations");
    assert!(span_us.count() >= STAGES.len() as u64);

    // The JSON encoding exposes the summaries.
    let value = parse(&report.to_json()).expect("report JSON parses");
    let hists = value
        .get("histograms")
        .and_then(Value::as_object)
        .expect("histograms object");
    let (_, span_hist) = hists
        .iter()
        .find(|(k, _)| k == telemetry::SPAN_DURATION_HISTOGRAM)
        .expect("span.us serialized");
    for field in ["count", "p50", "p90", "max"] {
        assert!(span_hist.get(field).is_some(), "{field} missing");
    }
}

/// A synthetic worker pool: `units` child collectors processed by
/// `width` worker threads, adopted into the parent in index order —
/// the same shape the P&R portfolio and the simulation pool use.
fn pool_report(width: usize, units: usize) -> Report {
    let parent = Arc::new(Collector::new_traced("pool"));
    telemetry::with_collector(&parent, || {
        let guard = telemetry::span("dispatch");
        let children: Vec<Arc<Collector>> = (0..units)
            .map(|_| Arc::new(Collector::new_traced("worker")))
            .collect();
        std::thread::scope(|scope| {
            for (worker, chunk) in children.chunks(units.div_ceil(width)).enumerate() {
                let offset = worker * units.div_ceil(width);
                scope.spawn(move || {
                    for (i, child) in chunk.iter().enumerate() {
                        let unit = offset + i;
                        telemetry::with_collector(child, || {
                            let span = telemetry::span(format!("unit:{unit}"));
                            telemetry::counter("work.done", 1);
                            // A deterministic, unit-dependent sample so
                            // the merged histogram is width-invariant.
                            telemetry::histogram("work.size", (unit as u64 + 1) * 3);
                            drop(span);
                        });
                        child.finish();
                    }
                });
            }
        });
        for child in &children {
            telemetry::adopt_report(&child.report());
        }
        drop(guard);
    });
    parent.finish();
    parent.report()
}

#[test]
fn pool_merge_is_deterministic_across_widths() {
    let sequential = pool_report(1, 8);
    let parallel = pool_report(4, 8);

    // Counters and histograms merge to identical values...
    assert_eq!(sequential.counter_total("work.done"), 8);
    assert_eq!(
        sequential.counter_total("work.done"),
        parallel.counter_total("work.done")
    );
    assert_eq!(
        sequential.histogram_total("work.size"),
        parallel.histogram_total("work.size")
    );
    let hist = parallel.histogram_total("work.size");
    assert_eq!(hist.count(), 8);
    assert_eq!(hist.sum(), (1..=8).map(|u| u * 3).sum::<u64>());

    // ...and the trace-event buffers append in adoption (index) order,
    // so the event name sequence is schedule-independent too.
    let names =
        |report: &Report| -> Vec<String> { report.events.iter().map(|e| e.name.clone()).collect() };
    assert_eq!(names(&sequential), names(&parallel));
    // Each child contributes its unit span then its own root span (the
    // `finish` event), in adoption order; the parent's spans close last.
    let expected: Vec<String> = (0..8)
        .flat_map(|u| [format!("unit:{u}"), "worker".to_owned()])
        .chain(["dispatch".to_owned(), "pool".to_owned()])
        .collect();
    assert_eq!(names(&sequential), expected);
    assert_eq!(sequential.events_dropped, 0);
}

#[test]
fn chrome_trace_escapes_event_names() {
    let collector = Arc::new(Collector::new_traced("trace \"root\"\n\\"));
    telemetry::with_collector(&collector, || {
        drop(telemetry::span("probe \"2×3\"\twith\u{0}controls"));
    });
    collector.finish();
    let trace = collector.report().to_chrome_trace();
    let value = parse(&trace).expect("chrome trace JSON parses");
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| e.get("name").and_then(Value::as_str).expect("name"))
        .collect();
    assert_eq!(
        span_names,
        ["probe \"2×3\"\twith\u{0}controls", "trace \"root\"\n\\"]
    );
}

#[test]
fn traced_parallel_flow_covers_multiple_worker_threads() {
    let _guard = env_lock();
    let path = std::env::temp_dir().join(format!("bestagon-trace-{}.json", std::process::id()));
    std::env::set_var("TELEMETRY_TRACE", &path);
    // par_check's exact scan probes three aspect ratios (4x4, 5x4, 4x5),
    // so a four-wide portfolio demonstrably commits work from several
    // named worker threads.
    let b = benchmark("par_check");
    let options = FlowOptions::new()
        .with_pnr(PnrMethod::ExactWithFallback { max_area: 40 })
        .with_threads(4);
    let result = run("par_check", &b.xag, &options);
    std::env::remove_var("TELEMETRY_TRACE");
    let report = result.expect("par_check flows end to end").report;
    let _ = std::fs::remove_file(&path);

    assert!(!report.events.is_empty(), "tracing was enabled");
    // The exact engine ran, so the probe-conflict distribution is there.
    assert!(!report.histogram_total("pnr.probe.conflicts").is_empty());
    let worker_tids: std::collections::BTreeSet<u64> = report
        .events
        .iter()
        .filter(|e| e.thread_label.starts_with("pnr-worker-"))
        .map(|e| e.tid)
        .collect();
    assert!(
        worker_tids.len() >= 2,
        "expected probes on >=2 portfolio workers, saw {worker_tids:?}"
    );
    // The export parses and names those workers in thread metadata.
    let value = parse(&report.to_chrome_trace()).expect("trace parses");
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    let named_workers = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
        })
        .filter(|name| name.starts_with("pnr-worker-"))
        .count();
    assert!(named_workers >= 2, "{named_workers} workers named");
}

#[test]
fn telemetry_file_appends_one_json_line_per_flow() {
    let _guard = env_lock();
    let path = std::env::temp_dir().join(format!("bestagon-jsonl-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("TELEMETRY_FILE", &path);
    let b = benchmark("mux21");
    let options = FlowOptions::new().with_pnr(PnrMethod::ExactWithFallback { max_area: 40 });
    let first = run("mux21", &b.xag, &options);
    let second = run("mux21", &b.xag, &options);
    std::env::remove_var("TELEMETRY_FILE");
    first.expect("first run");
    second.expect("second run");

    let contents = std::fs::read_to_string(&path).expect("TELEMETRY_FILE written");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "one compact line per flow: {contents:?}");
    for line in lines {
        let value = parse(line).expect("each line is a standalone JSON doc");
        assert_eq!(value.get("name").and_then(Value::as_str), Some("flow"));
    }
}
