//! Property-based tests on the physical-simulation substrate: the three
//! ground-state engines must agree, and validity must be invariant under
//! the symmetries of the lattice.

use proptest::prelude::*;
use sidb_sim::charge::InteractionMatrix;
use sidb_sim::exgs::exhaustive_low_energy;
use sidb_sim::layout::SidbLayout;
use sidb_sim::model::PhysicalParams;
use sidb_sim::quickexact::quick_exact_low_energy;
use sidb_sim::simanneal::{simulated_annealing, AnnealParams};

fn arb_layout(max_sites: usize) -> impl Strategy<Value = SidbLayout> {
    proptest::collection::vec((0..14i32, 0..14i32, 0..2u8), 1..=max_sites)
        .prop_map(SidbLayout::from_sites)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QuickExact and the Gray-code sweep find identical ground states.
    #[test]
    fn engines_agree_on_ground_state(layout in arb_layout(9)) {
        let params = PhysicalParams::default();
        let slow = exhaustive_low_energy(&layout, &params, 1);
        let fast = quick_exact_low_energy(&layout, &params, 1);
        prop_assert_eq!(slow.len(), fast.len());
        if let (Some(a), Some(b)) = (slow.first(), fast.first()) {
            prop_assert!((a.free_energy - b.free_energy).abs() < 1e-9);
        }
    }

    /// The annealer always terminates in a physically valid state whose
    /// free energy is no better than the exact ground state.
    #[test]
    fn annealer_is_valid_and_bounded(layout in arb_layout(10)) {
        let params = PhysicalParams::default();
        let exact = quick_exact_low_energy(&layout, &params, 1);
        let annealed = simulated_annealing(
            &layout,
            &params,
            &AnnealParams { instances: 6, sweeps: 120, ..Default::default() },
        ).expect("non-empty layout");
        let m = InteractionMatrix::new(&layout, &params);
        prop_assert!(annealed.config.is_physically_valid(&m));
        prop_assert!(annealed.free_energy >= exact[0].free_energy - 1e-9);
    }

    /// Translating a layout changes nothing about its energy spectrum.
    #[test]
    fn spectrum_is_translation_invariant(layout in arb_layout(8), dx in -5..5i32, dy in -5..5i32) {
        let params = PhysicalParams::default();
        let a = quick_exact_low_energy(&layout, &params, 2);
        let b = quick_exact_low_energy(&layout.translated(dx, dy), &params, 2);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.free_energy - y.free_energy).abs() < 1e-9);
        }
    }

    /// Mirroring preserves the spectrum as well.
    #[test]
    fn spectrum_is_mirror_invariant(layout in arb_layout(8)) {
        let params = PhysicalParams::default();
        let a = quick_exact_low_energy(&layout, &params, 2);
        let b = quick_exact_low_energy(&layout.mirrored_x(20), &params, 2);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.free_energy - y.free_energy).abs() < 1e-9);
        }
    }

    /// The k-best list is sorted and every entry is valid.
    #[test]
    fn low_energy_list_is_sorted_and_valid(layout in arb_layout(8)) {
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        let list = quick_exact_low_energy(&layout, &params, 4);
        for w in list.windows(2) {
            prop_assert!(w[0].free_energy <= w[1].free_energy + 1e-12);
        }
        for s in &list {
            prop_assert!(s.config.is_physically_valid(&m));
        }
    }
}
