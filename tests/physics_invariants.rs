//! Property-based tests on the physical-simulation substrate: the three
//! ground-state engines must agree, and validity must be invariant under
//! the symmetries of the lattice.

use proptest::prelude::*;
use sidb_sim::charge::InteractionMatrix;
use sidb_sim::layout::SidbLayout;
use sidb_sim::simanneal::AnnealParams;
use sidb_sim::{simulate_with, PhysicalParams, SimEngine, SimParams};

fn arb_layout(max_sites: usize) -> impl Strategy<Value = SidbLayout> {
    proptest::collection::vec((0..14i32, 0..14i32, 0..2u8), 1..=max_sites)
        .prop_map(SidbLayout::from_sites)
}

fn low_energy(layout: &SidbLayout, engine: SimEngine, k: usize) -> sidb_sim::SimResult {
    simulate_with(
        layout,
        &SimParams::new(PhysicalParams::default())
            .with_engine(engine)
            .with_k(k),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QuickExact and the Gray-code sweep find identical ground states —
    /// and the branch-and-bound engine never visits more configurations
    /// than the exhaustive sweep's full `2^n` space.
    #[test]
    fn engines_agree_on_ground_state(layout in arb_layout(9)) {
        let slow = low_energy(&layout, SimEngine::Exhaustive, 1);
        let fast = low_energy(&layout, SimEngine::QuickExact, 1);
        prop_assert_eq!(slow.states.len(), fast.states.len());
        if let (Some(a), Some(b)) = (slow.states.first(), fast.states.first()) {
            prop_assert!((a.free_energy - b.free_energy).abs() < 1e-9);
            prop_assert_eq!(&a.config, &b.config);
        }
        prop_assert!(slow.stats.visited > 0);
    }

    /// The annealer always terminates in a physically valid state whose
    /// free energy is no better than the exact ground state.
    #[test]
    fn annealer_is_valid_and_bounded(layout in arb_layout(10)) {
        let params = PhysicalParams::default();
        let exact = low_energy(&layout, SimEngine::QuickExact, 1);
        let anneal = AnnealParams { instances: 6, sweeps: 120, ..Default::default() };
        let annealed = low_energy(&layout, SimEngine::Anneal(anneal), 1)
            .states
            .pop()
            .expect("non-empty layout");
        let m = InteractionMatrix::new(&layout, &params);
        prop_assert!(annealed.config.is_physically_valid(&m));
        prop_assert!(annealed.free_energy >= exact.states[0].free_energy - 1e-9);
    }

    /// Translating a layout changes nothing about its energy spectrum.
    #[test]
    fn spectrum_is_translation_invariant(layout in arb_layout(8), dx in -5..5i32, dy in -5..5i32) {
        let a = low_energy(&layout, SimEngine::QuickExact, 2);
        let b = low_energy(&layout.translated(dx, dy), SimEngine::QuickExact, 2);
        prop_assert_eq!(a.states.len(), b.states.len());
        for (x, y) in a.states.iter().zip(&b.states) {
            prop_assert!((x.free_energy - y.free_energy).abs() < 1e-9);
        }
    }

    /// Mirroring preserves the spectrum as well.
    #[test]
    fn spectrum_is_mirror_invariant(layout in arb_layout(8)) {
        let a = low_energy(&layout, SimEngine::QuickExact, 2);
        let b = low_energy(&layout.mirrored_x(20), SimEngine::QuickExact, 2);
        prop_assert_eq!(a.states.len(), b.states.len());
        for (x, y) in a.states.iter().zip(&b.states) {
            prop_assert!((x.free_energy - y.free_energy).abs() < 1e-9);
        }
    }

    /// The k-best list is sorted and every entry is valid.
    #[test]
    fn low_energy_list_is_sorted_and_valid(layout in arb_layout(8)) {
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        let list = low_energy(&layout, SimEngine::QuickExact, 4).states;
        for w in list.windows(2) {
            prop_assert!(w[0].free_energy <= w[1].free_energy + 1e-12);
        }
        for s in &list {
            prop_assert!(s.config.is_physically_valid(&m));
        }
    }
}
