//! Surface-defect physics invariants: a zero-density surface is
//! bit-identical to the pristine simulation, seeded surfaces are fully
//! reproducible, and defect-aware gate validation is deterministic at
//! any thread width.

use proptest::prelude::*;
use sidb_sim::layout::SidbLayout;
use sidb_sim::{
    simulate_on_surface, simulate_with, DefectKind, DefectMap, PhysicalParams, SimEngine, SimParams,
};

fn params(engine: SimEngine) -> SimParams {
    SimParams::new(PhysicalParams::default()).with_engine(engine)
}

/// A small arbitrary layout: up to 7 deduplicated sites in a 30×20
/// cell window — cheap to simulate exactly with every engine.
fn arb_layout() -> impl Strategy<Value = SidbLayout> {
    proptest::collection::vec((0i32..30, 0i32..20, 0u8..2), 1..7).prop_map(|sites| {
        let dedup: std::collections::BTreeSet<(i32, i32, u8)> = sites.into_iter().collect();
        SidbLayout::from_sites(dedup)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pristine contract: simulating on a zero-density (empty)
    /// surface takes the exact code path and produces bit-identical
    /// states and counters to the plain simulation.
    #[test]
    fn zero_density_surface_is_bit_identical_to_pristine(
        layout in arb_layout(),
        seed in 0u64..u64::MAX,
    ) {
        let surface = DefectMap::random(seed, 0.0, &DefectKind::ALL);
        prop_assert!(surface.is_empty());
        for engine in [SimEngine::Exhaustive, SimEngine::QuickExact] {
            let p = params(engine);
            let pristine = simulate_with(&layout, &p);
            let on_surface = simulate_on_surface(&layout, &p, &surface);
            prop_assert_eq!(pristine.states.len(), on_surface.states.len());
            for (a, b) in pristine.states.iter().zip(&on_surface.states) {
                prop_assert_eq!(&a.config, &b.config);
                // Bit-exact, not approximate.
                prop_assert_eq!(a.free_energy.to_bits(), b.free_energy.to_bits());
            }
            prop_assert_eq!(pristine.stats.visited, on_surface.stats.visited);
        }
    }

    /// Seeded surface generation is a pure function of its arguments.
    #[test]
    fn random_surface_is_reproducible(
        seed in 0u64..u64::MAX,
        millionths in 0u32..500,
    ) {
        let density = f64::from(millionths) * 1e-6;
        let a = DefectMap::random(seed, density, &DefectKind::ALL);
        let b = DefectMap::random(seed, density, &DefectKind::ALL);
        prop_assert_eq!(a.defects(), b.defects());
    }

    /// Engines agree on the ground state of a defect-loaded surface:
    /// the external potentials are folded identically into the
    /// exhaustive enumeration and the branch-and-bound search.
    #[test]
    fn engines_agree_on_surface_ground_state(
        layout in arb_layout(),
        seed in 0u64..u64::MAX,
    ) {
        let surface = DefectMap::random_in(seed, 2e-3, &DefectKind::ALL, 40, 30);
        let exhaustive = simulate_on_surface(&layout, &params(SimEngine::Exhaustive), &surface);
        let quick = simulate_on_surface(&layout, &params(SimEngine::QuickExact), &surface);
        match (exhaustive.ground_state(), quick.ground_state()) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.config, &b.config);
                prop_assert!((a.free_energy - b.free_energy).abs() < 1e-9);
            }
            (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
        }
    }
}

/// A charged defect near a gate shifts its energetics: the ground-state
/// energy on the loaded surface differs from pristine, while a surface
/// whose defects sit far outside the interaction cutoff leaves the
/// spectrum untouched.
#[test]
fn nearby_defect_perturbs_far_defect_does_not() {
    use fcn_coords::LatticeCoord;
    use sidb_sim::Defect;
    let design = bestagon_lib::tiles::wire_nw_sw();
    let p = params(SimEngine::QuickExact);
    let pristine = simulate_with(&design.body, &p);

    let near = DefectMap::new(vec![Defect {
        position: LatticeCoord::new(20, 10, 0),
        kind: DefectKind::DbPair,
    }]);
    let perturbed = simulate_on_surface(&design.body, &p, &near);
    let e0 = pristine.ground_state().expect("ground state").free_energy;
    let e1 = perturbed.ground_state().expect("ground state").free_energy;
    assert!(
        (e0 - e1).abs() > 1e-6,
        "a charged defect a few cells away must shift the ground state"
    );

    // ~400 nm away: far beyond both the screened-Coulomb reach and the
    // matrix cutoff at default parameters.
    let far = DefectMap::new(vec![Defect {
        position: LatticeCoord::new(1_000, 1_000, 0),
        kind: DefectKind::DbPair,
    }]);
    let untouched = simulate_on_surface(&design.body, &p, &far);
    let e2 = untouched.ground_state().expect("ground state").free_energy;
    assert_eq!(
        e0.to_bits(),
        e2.to_bits(),
        "an out-of-range defect must leave the spectrum bit-identical"
    );
}

/// Defect-aware gate validation is deterministic across thread widths:
/// the verdict and the visited-state totals match between a serial and
/// a 4-way parallel check on the same loaded surface.
#[test]
fn surface_validation_is_thread_width_invariant() {
    let design = bestagon_lib::tiles::huff_style_or();
    let surface = DefectMap::random(11, 5e-5, &DefectKind::ALL);
    assert!(!surface.is_empty(), "seed 11 populates the region");
    let serial =
        design.check_operational_on(&params(SimEngine::QuickExact).with_threads(1), &surface);
    let parallel =
        design.check_operational_on(&params(SimEngine::QuickExact).with_threads(4), &surface);
    assert_eq!(serial.status, parallel.status);
    assert_eq!(serial.stats.visited, parallel.stats.visited);
}

/// The worked spec grammar: `seed:density[:kinds]` round-trips through
/// `from_spec` to the same surface as a direct `random` call, and kind
/// filters restrict the drawn species.
#[test]
fn spec_matches_direct_generation() {
    let direct = DefectMap::random(42, 1e-4, &DefectKind::ALL);
    let parsed = DefectMap::from_spec("42:1e-4").expect("valid spec");
    assert_eq!(direct.defects(), parsed.defects());

    let siloxane_only = DefectMap::from_spec("42:1e-4:siloxane").expect("valid spec");
    assert!(siloxane_only
        .defects()
        .iter()
        .all(|d| d.kind == DefectKind::Siloxane));
}
