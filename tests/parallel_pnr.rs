//! The parallel aspect-ratio portfolio must be a pure wall-clock
//! optimization: every observable of [`fcn_pnr::exact_pnr`] — the chosen
//! ratio, the probe log, the minimality verdict, the cumulative solver
//! statistics — is identical at any thread count.

use std::sync::Arc;

use bestagon_core::benchmarks::benchmark;
use fcn_logic::techmap::{map_xag, MapOptions};
use fcn_pnr::{exact_pnr, ExactOptions, NetGraph};
use fcn_telemetry::Collector;

fn graph_for(name: &str) -> NetGraph {
    let b = benchmark(name);
    let net = map_xag(&b.xag, MapOptions::default()).expect("mappable");
    NetGraph::new(net).expect("legalized")
}

fn options(num_threads: usize) -> ExactOptions {
    ExactOptions {
        max_area: 100,
        num_threads,
        // Pin the from-scratch engine: its per-probe solver statistics are
        // bit-for-bit reproducible at any thread count, which is what this
        // file asserts. (Incremental workers accumulate different learned
        // state depending on which probes they drew, so only semantic
        // observables are thread-count invariant there — see
        // `incremental_portfolio_agrees_on_semantic_observables`.)
        incremental: false,
        ..Default::default()
    }
}

fn incremental_options(num_threads: usize) -> ExactOptions {
    ExactOptions {
        incremental: true,
        ..options(num_threads)
    }
}

/// Satellite: determinism across thread counts. The sequential engine is
/// the reference semantics; the portfolio must reproduce it bit-for-bit.
#[test]
fn portfolio_is_deterministic_across_thread_counts() {
    for name in ["xor2", "par_check", "c17"] {
        let graph = graph_for(name);
        let sequential = exact_pnr(&graph, &options(1)).expect("feasible");
        let parallel = exact_pnr(&graph, &options(4)).expect("feasible");

        assert_eq!(sequential.ratio, parallel.ratio, "{name}: chosen ratio");
        assert_eq!(
            sequential.ratio.tile_count(),
            parallel.ratio.tile_count(),
            "{name}: minimal area"
        );
        assert_eq!(
            sequential.is_provably_minimal(),
            parallel.is_provably_minimal(),
            "{name}: minimality verdict"
        );
        assert_eq!(
            sequential.ratios_tried, parallel.ratios_tried,
            "{name}: ratios tried"
        );
        let probe_log = |r: &fcn_pnr::PnrOutcome<fcn_layout::hexagonal::HexGateLayout>| -> Vec<_> {
            r.probes.iter().map(|p| (p.ratio, p.verdict)).collect()
        };
        assert_eq!(
            probe_log(&sequential),
            probe_log(&parallel),
            "{name}: probe sequence"
        );
        // Work counters only: `solve_time` is wall clock, which no
        // schedule can reproduce.
        assert_eq!(
            sequential.stats.without_time(),
            parallel.stats.without_time(),
            "{name}: cumulative solver statistics"
        );
    }
}

/// The incremental engine keeps per-worker solver state, so raw conflict
/// counts legitimately vary with the thread count — but every *semantic*
/// observable (the chosen layout, the probe verdicts, the minimality
/// claim) must still be thread-count invariant.
#[test]
fn incremental_portfolio_agrees_on_semantic_observables() {
    for name in ["xor2", "par_check"] {
        let graph = graph_for(name);
        let sequential = exact_pnr(&graph, &incremental_options(1)).expect("feasible");
        let parallel = exact_pnr(&graph, &incremental_options(4)).expect("feasible");

        assert_eq!(sequential.ratio, parallel.ratio, "{name}: chosen ratio");
        assert_eq!(
            sequential.layout.render_ascii(),
            parallel.layout.render_ascii(),
            "{name}: layout"
        );
        assert_eq!(
            sequential.is_provably_minimal(),
            parallel.is_provably_minimal(),
            "{name}: minimality verdict"
        );
        assert_eq!(
            sequential.ratios_tried, parallel.ratios_tried,
            "{name}: ratios tried"
        );
        let verdicts = |r: &fcn_pnr::PnrOutcome<fcn_layout::hexagonal::HexGateLayout>| -> Vec<_> {
            r.probes.iter().map(|p| (p.ratio, p.verdict)).collect()
        };
        assert_eq!(
            verdicts(&sequential),
            verdicts(&parallel),
            "{name}: probe verdicts"
        );
        // Tiny circuits can solve every probe by pure propagation, in
        // which case there are no learned clauses to retain; but a
        // multi-probe scan that did hit conflicts must show reuse.
        if name == "par_check" {
            assert!(
                sequential.reuse.warm_probes > 0,
                "{name}: incremental mode actually ran warm probes"
            );
        }
    }
}

/// Worker-thread telemetry merges deterministically into the ambient
/// collector: one `ratio:WxH` child span per committed probe, in probe
/// order, exactly as the sequential engine records them.
#[test]
fn parallel_probes_merge_into_ambient_telemetry() {
    let graph = graph_for("par_check");
    let collector = Arc::new(Collector::new("flow"));
    let result = fcn_telemetry::with_collector(&collector, || {
        let _pnr = fcn_telemetry::span("step4:pnr");
        exact_pnr(&graph, &options(4)).expect("feasible")
    });
    collector.finish();
    let report = collector.report();

    let pnr_span = report.root.child("step4:pnr").expect("pnr stage span");
    let ratio_spans: Vec<&str> = pnr_span
        .children
        .iter()
        .map(|c| c.name.as_str())
        .filter(|n| n.starts_with("ratio:"))
        .collect();
    let expected: Vec<String> = result
        .probes
        .iter()
        .map(|p| format!("ratio:{}", p.ratio.label()))
        .collect();
    assert_eq!(
        ratio_spans, expected,
        "one span per committed probe, in probe (area) order"
    );
    for span in pnr_span
        .children
        .iter()
        .filter(|c| c.name.starts_with("ratio:"))
    {
        assert!(
            span.notes.contains_key("verdict"),
            "adopted span keeps its verdict note: {}",
            span.name
        );
    }
}
