//! Operational-domain engine acceptance tests: the adaptive sampler
//! must reproduce the dense sweep's per-point verdicts exactly while
//! issuing strictly fewer simulations, and domains must be
//! bit-identical at any worker-pool width.
//!
//! The full-grid sweeps are `#[ignore]`d for debug runs; CI exercises
//! them in the release legs with `--include-ignored`.

use bestagon_lib::tiles::{huff_style_or, inverter_nw_sw, wire_nw_sw};
use sidb_sim::opdomain::{DomainGrid, DomainParams, DomainStrategy, Provenance};
use sidb_sim::operational::GateDesign;
use sidb_sim::{PhysicalParams, SimEngine, SimParams};

fn params(steps: usize) -> DomainParams {
    DomainParams::new(SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact))
        .with_grid(DomainGrid {
            steps,
            ..Default::default()
        })
}

fn tiles() -> Vec<GateDesign> {
    vec![wire_nw_sw(), inverter_nw_sw(), huff_style_or()]
}

/// Adaptive and dense sweeps agree at every grid point of the default
/// 7×7 window, on every tile — and the adaptive sweep gets there with
/// fewer point and pattern simulations.
#[test]
#[ignore = "full-grid sweep; run in release (CI --include-ignored)"]
fn adaptive_matches_dense_on_the_default_grid() {
    for design in tiles() {
        let dense = design.operational_domain(&params(7).with_strategy(DomainStrategy::Dense));
        let adaptive =
            design.operational_domain(&params(7).with_strategy(DomainStrategy::Adaptive));
        assert_eq!(dense.stats.simulated, 49, "{}", design.name);
        assert_eq!(
            adaptive.stats.simulated + adaptive.stats.inferred,
            49,
            "{}",
            design.name
        );
        assert!(
            adaptive.stats.simulated < dense.stats.simulated,
            "{}: adaptive simulated {} of 49 points",
            design.name,
            adaptive.stats.simulated
        );
        assert!(
            adaptive.stats.pattern_sims < dense.stats.pattern_sims,
            "{}: adaptive issued {} pattern sims vs dense {}",
            design.name,
            adaptive.stats.pattern_sims,
            dense.stats.pattern_sims
        );
        for (d, a) in dense.samples.iter().zip(&adaptive.samples) {
            assert_eq!(
                d.status, a.status,
                "{} at (ε_r {}, λ_TF {})",
                design.name, d.epsilon_r, d.lambda_tf_nm
            );
        }
        assert_eq!(dense.coverage(), adaptive.coverage(), "{}", design.name);
        assert_eq!(
            dense.nominal_operational(),
            adaptive.nominal_operational(),
            "{}",
            design.name
        );
    }
}

/// On a finer 15×15 grid the relative saving grows: closed regions are
/// larger in index space, so a bigger share of the grid is inferred.
#[test]
#[ignore = "full-grid sweep; run in release (CI --include-ignored)"]
fn adaptive_saving_grows_on_a_fine_grid() {
    for design in tiles() {
        let dense = design.operational_domain(&params(15).with_strategy(DomainStrategy::Dense));
        let adaptive =
            design.operational_domain(&params(15).with_strategy(DomainStrategy::Adaptive));
        assert_eq!(dense.stats.simulated, 225, "{}", design.name);
        assert!(
            adaptive.stats.simulated < dense.stats.simulated,
            "{}: adaptive simulated {} of 225 points",
            design.name,
            adaptive.stats.simulated
        );
        for (d, a) in dense.samples.iter().zip(&adaptive.samples) {
            assert_eq!(
                d.status, a.status,
                "{} at (ε_r {}, λ_TF {})",
                design.name, d.epsilon_r, d.lambda_tf_nm
            );
        }
        // The 15×15 fraction of simulated points must not exceed the
        // 7×7 fraction for the same design: inference wins grow with
        // resolution.
        let coarse = design.operational_domain(&params(7).with_strategy(DomainStrategy::Adaptive));
        let fine_fraction = adaptive.stats.simulated as f64 / 225.0;
        let coarse_fraction = coarse.stats.simulated as f64 / 49.0;
        assert!(
            fine_fraction <= coarse_fraction,
            "{}: simulated fraction grew from {coarse_fraction:.2} (7×7) to {fine_fraction:.2} (15×15)",
            design.name
        );
    }
}

/// Sampled domains are bit-identical at any worker-pool width, for
/// both strategies (the CI matrix additionally runs this suite under
/// `OPDOMAIN_THREADS ∈ {1,4}`).
#[test]
#[ignore = "full-grid sweep; run in release (CI --include-ignored)"]
fn domains_are_identical_at_any_thread_width() {
    for design in tiles() {
        for strategy in [DomainStrategy::Dense, DomainStrategy::Adaptive] {
            let one = design.operational_domain(&params(7).with_strategy(strategy).with_threads(1));
            let four =
                design.operational_domain(&params(7).with_strategy(strategy).with_threads(4));
            assert_eq!(one.samples, four.samples, "{}", design.name);
            assert_eq!(one.stats, four.stats, "{}", design.name);
            assert_eq!(one.degradation, four.degradation, "{}", design.name);
        }
    }
}

/// Every sample declares how its verdict was obtained, and only
/// adaptive sweeps infer.
#[test]
#[ignore = "full-grid sweep; run in release (CI --include-ignored)"]
fn samples_are_provenance_honest() {
    let design = wire_nw_sw();
    let dense = design.operational_domain(&params(7).with_strategy(DomainStrategy::Dense));
    assert!(dense
        .samples
        .iter()
        .all(|s| s.provenance == Provenance::Simulated));
    let adaptive = design.operational_domain(&params(7).with_strategy(DomainStrategy::Adaptive));
    let simulated = adaptive
        .samples
        .iter()
        .filter(|s| s.provenance == Provenance::Simulated)
        .count() as u64;
    let inferred = adaptive
        .samples
        .iter()
        .filter(|s| s.provenance == Provenance::Inferred)
        .count() as u64;
    assert_eq!(simulated, adaptive.stats.simulated);
    assert_eq!(inferred, adaptive.stats.inferred);
    assert!(inferred > 0);
}
