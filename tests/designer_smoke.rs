//! CI smoke leg for the automated gate designer: a short seeded search
//! on the broken diagonal-wire tile (the pre-repair `wire_nw_se`
//! geometry, without its designer-found canvas dot) must improve the
//! score — and must do so deterministically: the resulting design is
//! byte-identical at any `DESIGNER_THREADS` width.

use bestagon_lib::designer::{design_canvas, DesignerOptions};
use bestagon_lib::geometry::{
    balanced_run, column, standard_input_port, standard_output_port, EAST_PORT_X, OUTPUT_ROW,
    WEST_PORT_X,
};
use sidb_sim::layout::SidbLayout;
use sidb_sim::operational::GateDesign;
use sidb_sim::PhysicalParams;

/// The diagonal wire as it was before the designer repaired it: the
/// run-to-column turn loses the signal under the default parameters.
fn broken_diagonal_wire() -> GateDesign {
    let mut body = SidbLayout::new();
    column(&mut body, WEST_PORT_X, &[1, 4, 7, 10]);
    balanced_run(&mut body, 10, &[WEST_PORT_X, 23, 31, 38, EAST_PORT_X]);
    column(&mut body, EAST_PORT_X, &[13, 16, 19, OUTPUT_ROW]);
    GateDesign {
        name: "WIRE (NW→SE, unrepaired)".into(),
        body,
        inputs: vec![standard_input_port(WEST_PORT_X)],
        outputs: vec![standard_output_port(EAST_PORT_X)],
        truth_table: vec![vec![false], vec![true]],
    }
}

fn smoke_options() -> DesignerOptions {
    DesignerOptions::new()
        .with_region((18, 6, 42, 20))
        .with_max_dots(2)
        .with_iterations(60)
        .with_restarts(4)
        .with_seed(1)
}

#[test]
fn short_seeded_search_improves_the_broken_diagonal_wire() {
    let base = broken_diagonal_wire();
    let params = PhysicalParams::default();
    // Runs at the ambient DESIGNER_THREADS width (the CI matrix varies
    // it), so the improvement itself is part of the determinism check.
    let result = design_canvas(&base, &smoke_options(), &params);
    assert!(
        result.score.correct == result.target,
        "short search repairs the diagonal wire: {}/{}",
        result.score.correct,
        result.target
    );
    assert!(!result.canvas.is_empty(), "repair places canvas dots");
}

#[test]
fn smoke_search_is_byte_identical_across_thread_widths() {
    let base = broken_diagonal_wire();
    let params = PhysicalParams::default();
    let one = design_canvas(&base, &smoke_options().with_threads(1), &params);
    let four = design_canvas(&base, &smoke_options().with_threads(4), &params);
    assert_eq!(one.canvas, four.canvas);
    assert_eq!(one.score, four.score);
    assert_eq!(one.design.body, four.design.body);
}
