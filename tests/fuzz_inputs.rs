//! Fuzz-style property tests: the netlist parsers and the flow entry
//! points must return typed errors — never panic, overflow the stack,
//! or abort — on arbitrary byte inputs.
//!
//! Two input distributions per target: raw random bytes (exercises the
//! lexers), and "token soup" assembled from real grammar fragments
//! (penetrates deep into the parsers and occasionally produces valid
//! netlists, exercising the full flow behind the parser).

use bestagon_core::flow::{FlowBudget, FlowOptions, FlowRequest, PnrMethod};
use fcn_logic::blif::parse_blif;
use fcn_logic::verilog::parse_verilog;
use proptest::prelude::*;
use sidb_sim::DefectMap;

/// Raw bytes as a lossy string: parsers take `&str`, so invalid UTF-8
/// becomes replacement characters — still arbitrary input to the lexer.
fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Verilog grammar fragments for token-soup composition.
const VERILOG_FRAGMENTS: &[&str] = &[
    "module ",
    "endmodule",
    "input ",
    "output ",
    "wire ",
    "assign ",
    "m",
    "a",
    "b",
    "c",
    "f",
    "=",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    "(",
    ")",
    ";",
    ",",
    " ",
    "\n",
    "1'b0",
    "1'b1",
    "//x\n",
];

/// BLIF grammar fragments for token-soup composition.
const BLIF_FRAGMENTS: &[&str] = &[
    ".model ",
    ".inputs ",
    ".outputs ",
    ".names ",
    ".end",
    "a",
    "b",
    "c",
    "f",
    "0",
    "1",
    "-",
    " ",
    "\n",
    "# x\n",
    "01 1",
    "11 1",
    "0 1",
];

/// Surface-defect spec/file grammar fragments for token-soup
/// composition: seeds, densities, kind tokens, separators, and the
/// file format's comment and coordinate pieces.
const SURFACE_FRAGMENTS: &[&str] = &[
    "0",
    "1",
    "42",
    "18446744073709551615",
    "-3",
    "1e-4",
    "0.5",
    "2.0",
    "nan",
    "inf",
    ":",
    ",",
    " ",
    "\n",
    "\t",
    "arsenic_dimer",
    "db_pair",
    "siloxane",
    "charged_vacancy",
    "vacancy",
    "# comment\n",
    "10 20 0 db_pair\n",
    "10 20",
    "b",
];

fn soup(fragments: &[&str], picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| fragments[i % fragments.len()])
        .collect()
}

/// A cheap flow configuration for fuzzing: the entry points must not
/// panic, but there is no need to run exact P&R on every accidental
/// valid netlist the soup produces.
fn fuzz_flow_options() -> FlowOptions {
    FlowOptions::new()
        .with_pnr(PnrMethod::Heuristic)
        .without_library()
        .with_budget(FlowBudget::unbounded())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn verilog_parser_never_panics_on_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let _ = parse_verilog(&lossy(&bytes));
    }

    #[test]
    fn blif_parser_never_panics_on_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let _ = parse_blif(&lossy(&bytes));
    }

    #[test]
    fn verilog_parser_never_panics_on_token_soup(picks in proptest::collection::vec(0usize..64, 0..96)) {
        let _ = parse_verilog(&soup(VERILOG_FRAGMENTS, &picks));
    }

    #[test]
    fn blif_parser_never_panics_on_token_soup(picks in proptest::collection::vec(0usize..64, 0..96)) {
        let _ = parse_blif(&soup(BLIF_FRAGMENTS, &picks));
    }

    /// The `seed:density[:kinds]` spec parser returns typed errors on
    /// arbitrary bytes — never panics. (`from_spec` is not fuzzed with
    /// raw bytes because a string without `:` is treated as a file
    /// path; `parse_spec` and `parse_file` cover both grammars purely.)
    #[test]
    fn surface_spec_parser_never_panics_on_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..128)) {
        let _ = DefectMap::parse_spec(&lossy(&bytes));
        let _ = DefectMap::parse_file(&lossy(&bytes));
    }

    #[test]
    fn surface_spec_parser_never_panics_on_token_soup(picks in proptest::collection::vec(0usize..64, 0..48)) {
        let text = soup(SURFACE_FRAGMENTS, &picks);
        let _ = DefectMap::parse_spec(&text);
        let _ = DefectMap::parse_file(&text);
    }

    /// Valid specs bounded to tiny densities must parse and generate
    /// without panicking, and zero density must always be pristine.
    #[test]
    fn surface_spec_roundtrip_on_valid_inputs(seed in 0u64..u64::MAX, millionths in 0u32..100) {
        let density = f64::from(millionths) * 1e-6;
        let spec = format!("{seed}:{density}");
        let map = DefectMap::parse_spec(&spec).expect("valid spec parses");
        if millionths == 0 {
            prop_assert!(map.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_never_panics_on_arbitrary_verilog(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let _ = FlowRequest::verilog(lossy(&bytes)).with_options(fuzz_flow_options()).execute();
    }

    #[test]
    fn flow_never_panics_on_arbitrary_blif(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let _ = FlowRequest::blif(lossy(&bytes)).with_options(fuzz_flow_options()).execute();
    }

    #[test]
    fn flow_never_panics_on_verilog_soup(picks in proptest::collection::vec(0usize..64, 0..64)) {
        let _ = FlowRequest::verilog(soup(VERILOG_FRAGMENTS, &picks)).with_options(fuzz_flow_options()).execute();
    }

    #[test]
    fn flow_never_panics_on_blif_soup(picks in proptest::collection::vec(0usize..64, 0..64)) {
        let _ = FlowRequest::blif(soup(BLIF_FRAGMENTS, &picks)).with_options(fuzz_flow_options()).execute();
    }
}
