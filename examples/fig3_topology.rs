//! Regenerates the paper's **Figure 3** argument: Y-shaped SiDB gates do
//! not fit Cartesian floor plans but embed natively in hexagonal ones.
//!
//! ```text
//! cargo run --release --example fig3_topology
//! ```
//!
//! Part 1 enumerates the port-assignment options a Y-shaped gate (two
//! inputs entering through adjacent upper borders, one output leaving
//! through a lower border) has on each topology. Part 2 measures the
//! consequence with *exact* placement & routing on both floor plans:
//! the Cartesian numbers assume hypothetical plus-shaped gates (which the
//! SiDB platform does not offer); forcing the physically required
//! Y-shape onto Cartesian tiles costs a 2×2 block per gate.

use bestagon_core::benchmarks::benchmark;
use fcn_logic::rewrite::{rewrite, RewriteOptions};
use fcn_logic::techmap::{map_xag, MapOptions};
use fcn_pnr::{cartesian_exact_pnr, exact_pnr, ExactOptions, NetGraph};

fn main() {
    println!("=== Figure 3: layout topology and Y-shaped gates ===\n");

    println!("Y-gate port assignments per tile:");
    println!("  hexagonal (pointy-top): inputs NW+NE, output SW or SE → 2 native variants");
    println!("  Cartesian:              a single northern border → 0 native variants");
    println!("  (the two Y arms cannot both terminate at upper border centers of a");
    println!("   Cartesian tile — paper Fig. 3a)\n");

    println!(
        "{:<12} {:>16} {:>18} {:>22}",
        "benchmark", "hex tiles", "cartesian tiles", "cart. + Y-emulation"
    );
    for name in ["xor2", "par_gen", "mux21"] {
        let b = benchmark(name);
        let optimized = rewrite(&b.xag, RewriteOptions::default());
        let net = map_xag(&optimized, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("placeable");
        let options = ExactOptions {
            max_area: 120,
            ..Default::default()
        };
        let hex = exact_pnr(&graph, &options);
        let cart = cartesian_exact_pnr(&graph, &options);
        match (hex, cart) {
            (Ok(hex), Ok(cart)) => {
                let logic = hex.layout.num_logic_tiles() as u64;
                // A Y-gate on a Cartesian grid needs a 2×2 block to expose
                // two upper ports: three extra tiles per logic gate.
                let emulated = cart.ratio.tile_count() + 3 * logic;
                println!(
                    "{:<12} {:>9} ({}×{}) {:>11} ({}×{}) {:>22}",
                    name,
                    hex.ratio.tile_count(),
                    hex.ratio.width,
                    hex.ratio.height,
                    cart.ratio.tile_count(),
                    cart.ratio.width,
                    cart.ratio.height,
                    emulated,
                );
            }
            (h, c) => println!(
                "{name:<12} hex: {:?} cartesian: {:?}",
                h.map(|r| r.ratio),
                c.map(|r| r.ratio)
            ),
        }
    }
    println!(
        "\nEven granting the Cartesian floor plan plus-shaped gates it cannot\n\
         physically have, the hexagonal topology stays competitive; accounting\n\
         for the Y-shape the Cartesian emulation inflates by 3 tiles per gate —\n\
         the quantitative face of the paper's Figure 3 argument."
    );
}
