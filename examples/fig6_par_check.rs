//! Regenerates the paper's **Figure 6**: the synthesized `par_check`
//! layout — Bestagon gates on hexagonal tiles, row clocking, formal
//! verification, and the dot-accurate SiDB export.
//!
//! ```text
//! cargo run --release --example fig6_par_check > par_check.txt
//! ```

use bestagon_core::benchmarks::benchmark;
use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use std::io::Write;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = benchmark("par_check");
    let result = FlowRequest::netlist("par_check", b.xag.clone())
        .with_options(FlowOptions::new().with_pnr(PnrMethod::ExactWithFallback { max_area: 120 }))
        .execute()?;

    println!("=== Figure 6: par_check on hexagonal Bestagon tiles ===\n");
    println!(
        "layout: {} ({} engine), information flows top → bottom (row clocking)",
        result.layout.ratio(),
        if result.exact { "exact" } else { "heuristic" }
    );
    println!("formal verification: {:?}", result.equivalence);
    println!("paper reports: 4 × 7 = 28 tiles, 284 SiDBs, 11 312.68 nm²\n");
    println!("{}", result.layout.render_ascii());

    let cell = result.cell.as_ref().expect("library applied");
    println!(
        "dot-accurate layout: {} SiDBs in {:.2} nm²",
        cell.num_sidbs(),
        cell.area_nm2
    );

    // Step 8: design-file export for SiQAD.
    let sqd = result.to_sqd().expect("sqd export");
    let path = std::env::temp_dir().join("par_check.sqd");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(sqd.as_bytes())?;
    println!("SiQAD design file written to {}", path.display());

    // Vector renderings of the figure: the clocked tile layout and the
    // dot-accurate SiDB surface.
    let tiles_svg = bestagon_lib::svg::layout_to_svg(&result.layout);
    let dots_svg = bestagon_lib::svg::sidb_to_svg(&cell.sidb, Some(&result.layout));
    let tiles_path = std::env::temp_dir().join("par_check_tiles.svg");
    let dots_path = std::env::temp_dir().join("par_check_sidbs.svg");
    std::fs::write(&tiles_path, tiles_svg)?;
    std::fs::write(&dots_path, dots_svg)?;
    println!(
        "SVG renderings written to {} and {}",
        tiles_path.display(),
        dots_path.display()
    );
    Ok(())
}
