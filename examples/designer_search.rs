//! Demonstrates the automated gate designer — this reproduction's
//! substitute for the paper's reinforcement-learning agent.
//!
//! ```text
//! cargo run --release --example designer_search
//! ```
//!
//! Takes a deliberately broken wire (one chain pair removed so the
//! signal no longer transmits) and lets the parallel canvas search
//! repair it: the designer places dots inside the canvas region, scoring
//! every candidate with exact ground-state simulation across all input
//! patterns, until the truth table is reproduced.

use bestagon_lib::designer::{design_canvas, DesignerOptions};
use bestagon_lib::geometry::{column, standard_input_port, standard_output_port, WEST_PORT_X};
use sidb_sim::layout::SidbLayout;
use sidb_sim::operational::GateDesign;
use sidb_sim::{PhysicalParams, SimEngine, SimParams};

fn main() {
    // A wire column with a hole: pairs at rows 1..13 and 19..22 — the gap
    // at rows 14–18 interrupts the anti-aligning chain.
    let mut body = SidbLayout::new();
    column(&mut body, WEST_PORT_X, &[1, 4, 7, 10, 13, 19, 22]);
    let broken = GateDesign {
        name: "WIRE (broken)".into(),
        body,
        inputs: vec![standard_input_port(WEST_PORT_X)],
        outputs: vec![standard_output_port(WEST_PORT_X)],
        truth_table: vec![vec![false], vec![true]],
    };
    let params = PhysicalParams::default();
    let sim = SimParams::new(params).with_engine(SimEngine::QuickExact);
    let report = broken.check_operational_with(&sim);
    println!("starting point: {} — {:?}", broken.name, report.status);

    let options = DesignerOptions::new()
        .with_region((WEST_PORT_X - 2, 14, WEST_PORT_X + 2, 18))
        .with_max_dots(3)
        .with_iterations(250)
        .with_restarts(8)
        .with_seed(7);
    let region = options.region.expect("region pinned above");
    println!(
        "searching: ≤{} canvas dots in x ∈ [{}, {}], y ∈ [{}, {}] …",
        options.max_dots, region.0, region.2, region.1, region.3
    );

    let result = design_canvas(&broken, &options, &params);
    println!(
        "best score: {}/{} correct outputs after {} candidates ({} restarts)",
        result.score.correct,
        result.target,
        result.stats.candidates,
        result.stats.restarts_completed
    );
    if result.is_operational() {
        let added: Vec<String> = result
            .canvas
            .iter()
            .map(|s| format!("({}, {}, {})", s.x, s.y, s.b))
            .collect();
        println!(
            "repaired with {} canvas dot(s) at {}",
            added.len(),
            added.join(", ")
        );
        println!(
            "verdict: {:?}",
            result.design.check_operational_with(&sim).status
        );
    } else {
        println!("search exhausted without a full repair — rerun with more restarts");
        if let Some(d) = &result.degradation {
            println!("degraded: {:?} — {}", d.trigger, d.detail);
        }
    }
}
