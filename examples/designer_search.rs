//! Demonstrates the automated gate designer — this reproduction's
//! substitute for the paper's reinforcement-learning agent.
//!
//! ```text
//! cargo run --release --example designer_search
//! ```
//!
//! Takes a deliberately broken wire (one chain pair removed so the
//! signal no longer transmits) and lets the hill-climbing canvas search
//! repair it: the designer places dots inside the canvas region, scoring
//! every candidate with exact ground-state simulation across all input
//! patterns, until the truth table is reproduced.

use bestagon_lib::designer::{design_canvas, with_canvas, DesignerOptions};
use bestagon_lib::geometry::{column, standard_input_port, standard_output_port, WEST_PORT_X};
use sidb_sim::layout::SidbLayout;
use sidb_sim::operational::GateDesign;
use sidb_sim::{PhysicalParams, SimEngine, SimParams};

fn main() {
    // A wire column with a hole: pairs at rows 1..13 and 19..22 — the gap
    // at rows 14–18 interrupts the anti-aligning chain.
    let mut body = SidbLayout::new();
    column(&mut body, WEST_PORT_X, &[1, 4, 7, 10, 13, 19, 22]);
    let broken = GateDesign {
        name: "WIRE (broken)".into(),
        body,
        inputs: vec![standard_input_port(WEST_PORT_X)],
        outputs: vec![standard_output_port(WEST_PORT_X)],
        truth_table: vec![vec![false], vec![true]],
    };
    let params = PhysicalParams::default();
    let sim = SimParams::new(params).with_engine(SimEngine::QuickExact);
    let report = broken.check_operational_with(&sim);
    println!("starting point: {} — {:?}", broken.name, report.status);

    let options = DesignerOptions {
        region: (WEST_PORT_X - 2, 14, WEST_PORT_X + 2, 18),
        max_dots: 3,
        iterations: 250,
        restarts: 8,
        seed: 7,
    };
    println!(
        "searching: ≤{} canvas dots in x ∈ [{}, {}], y ∈ [{}, {}] …",
        options.max_dots, options.region.0, options.region.2, options.region.1, options.region.3
    );

    match design_canvas(&broken, &options, &params) {
        Some(repaired) => {
            let added: Vec<String> = repaired
                .body
                .sites()
                .iter()
                .filter(|s| !broken.body.contains(**s))
                .map(|s| format!("({}, {}, {})", s.x, s.y, s.b))
                .collect();
            println!(
                "repaired with {} canvas dot(s) at {}",
                added.len(),
                added.join(", ")
            );
            println!(
                "verdict: {:?}",
                repaired.check_operational_with(&sim).status
            );
        }
        None => {
            println!("search budget exhausted without a repair — rerun with more restarts");
            // Show what the best-known manual repair would be.
            let manual = with_canvas(&broken, &[(14, 16, 0).into(), (16, 16, 0).into()]);
            println!(
                "manual reference (pair at row 16): {:?}",
                manual.check_operational_with(&sim).status
            );
        }
    }
}
