//! Regenerates the paper's **Table 1**: layout dimensions, SiDB counts,
//! and areas for the fourteen evaluation benchmarks.
//!
//! ```text
//! cargo run --release --example table1
//! ```
//!
//! Each benchmark runs through the full flow (synthesis → rewriting →
//! mapping → placement & routing → verification → library application).
//! Absolute SiDB counts differ from the paper's because the tile dot
//! patterns are this reproduction's own designs; the layout dimensions
//! and areas are directly comparable (see `EXPERIMENTS.md`).
//!
//! Besides the table, the run writes `BENCH_table1.json`: one entry per
//! benchmark with its wall time and the full flow-telemetry report
//! (per-stage durations, SAT probe statistics per aspect ratio). Set
//! `TELEMETRY=summary|tree|json` to also stream each flow's report to
//! stderr as it completes.
//!
//! The exact P&R step probes aspect ratios on a parallel portfolio; the
//! thread count defaults to the machine's parallelism and is recorded in
//! the JSON (`pnr_threads`). Override it with the `PNR_THREADS`
//! environment variable — results are identical at any thread count.
//!
//! Step 7 additionally re-validates the distinct tile designs each
//! layout uses with the cached exact simulation engine, so every
//! report in the JSON carries the `sidb.*` counters (configurations
//! visited/pruned, cache hits). `SIM_THREADS` and `SIM_CACHE` control
//! the simulation pool and cache, mirroring `PNR_THREADS`.

use bestagon_core::benchmarks::{benchmark, benchmark_names};
use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use fcn_telemetry::json::Value;
use std::time::Instant;

fn main() {
    let pnr_threads = fcn_pnr::default_num_threads();
    println!("=== Table 1: generated layout data ===\n");
    println!("(exact P&R portfolio: {pnr_threads} thread(s))\n");
    println!(
        "{:<16} {:>9} {:>5} {:>7} {:>12} {:>7}  {:<28} runtime",
        "Name", "w × h", "A", "SiDBs", "nm²", "engine", "paper (w×h, SiDBs, nm²)"
    );
    let mut entries: Vec<Value> = Vec::new();
    for name in benchmark_names() {
        let b = benchmark(name);
        let started = Instant::now();
        let options = FlowOptions::new()
            .with_pnr(PnrMethod::ExactWithFallback { max_area: 120 })
            .with_threads(pnr_threads)
            .with_tile_validation();
        match FlowRequest::netlist(name, b.xag.clone())
            .with_options(options)
            .execute()
        {
            Ok(result) => {
                let ratio = result.layout.ratio();
                let cell = result.cell.as_ref().expect("library applied");
                let paper = b
                    .paper_result
                    .map(|(w, h, s, a)| format!("{w}×{h}, {s}, {a:.2}"))
                    .unwrap_or_else(|| "—".into());
                println!(
                    "{:<16} {:>4} × {:<3} {:>4} {:>7} {:>12.2} {:>7}  {:<28} [{:.1?}]",
                    name,
                    ratio.width,
                    ratio.height,
                    ratio.tile_count(),
                    cell.num_sidbs(),
                    cell.area_nm2,
                    if result.exact { "exact" } else { "heur." },
                    paper,
                    started.elapsed(),
                );
                let report = &result.report;
                entries.push(Value::Obj(vec![
                    ("name".to_owned(), Value::Str(name.to_owned())),
                    (
                        "seconds".to_owned(),
                        Value::Num(started.elapsed().as_secs_f64()),
                    ),
                    ("exact".to_owned(), Value::Bool(result.exact)),
                    // Layout geometry: deterministic at any thread
                    // count, so `bench-diff` gates on it strictly.
                    ("width".to_owned(), Value::Num(ratio.width as f64)),
                    ("height".to_owned(), Value::Num(ratio.height as f64)),
                    (
                        "area_tiles".to_owned(),
                        Value::Num(ratio.tile_count() as f64),
                    ),
                    ("sidbs".to_owned(), Value::Num(cell.num_sidbs() as f64)),
                    ("area_nm2".to_owned(), Value::Num(cell.area_nm2)),
                    // Tree-wide work totals (deterministic at
                    // PNR_THREADS=1 / any SIM_THREADS — see README).
                    (
                        "conflicts".to_owned(),
                        Value::Num(report.counter_total("sat.conflicts") as f64),
                    ),
                    (
                        "visited".to_owned(),
                        Value::Num(report.counter_total("sidb.visited") as f64),
                    ),
                    // Distribution summaries (count/sum/min/max/p50/p90).
                    (
                        "conflicts_hist".to_owned(),
                        report.histogram_total("pnr.probe.conflicts").to_value(),
                    ),
                    (
                        "visited_hist".to_owned(),
                        report.histogram_total("sidb.visited").to_value(),
                    ),
                    ("report".to_owned(), report.to_value()),
                ]));
            }
            Err(e) => println!("{name:<16} FAILED: {e}"),
        }
    }
    let doc = Value::Obj(vec![
        (
            "generator".to_owned(),
            Value::Str("examples/table1.rs".to_owned()),
        ),
        ("pnr_threads".to_owned(), Value::Num(pnr_threads as f64)),
        ("benchmarks".to_owned(), Value::Arr(entries)),
        // Process-wide aggregates across all fourteen flows: flow count,
        // the flow-duration histogram, and every counter/histogram
        // summed over the whole batch.
        (
            "registry".to_owned(),
            fcn_telemetry::Registry::global().snapshot().to_value(),
        ),
    ]);
    match std::fs::write("BENCH_table1.json", doc.serialize_pretty() + "\n") {
        Ok(()) => eprintln!("wrote BENCH_table1.json"),
        Err(e) => eprintln!("could not write BENCH_table1.json: {e}"),
    }
}
