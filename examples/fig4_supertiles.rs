//! Regenerates the paper's **Figure 4** analysis: super-tiles under the
//! 40 nm minimum metal pitch of clocking electrodes.
//!
//! ```text
//! cargo run --release --example fig4_supertiles
//! ```
//!
//! For each benchmark layout, prints the electrode plan before and after
//! clock-zone expansion (flow step 6): per-row electrodes violate the
//! metal pitch, merged super-tile electrodes satisfy it.

use bestagon_core::benchmarks::{benchmark, benchmark_names};
use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use fcn_layout::supertile::{
    minimum_rows_per_supertile, plan_supertiles, plan_supertiles_with_rows, MIN_METAL_PITCH_NM,
    ROW_PITCH_NM, TILE_WIDTH_NM,
};

fn main() {
    println!("=== Figure 4: super-tile clock zones ===\n");
    println!("standard tile:  {TILE_WIDTH_NM:.2} nm wide, {ROW_PITCH_NM:.3} nm row pitch");
    println!("min metal pitch: {MIN_METAL_PITCH_NM:.1} nm (7 nm node, Wu et al. 2016)");
    println!(
        "→ merge {} tile rows per electrode ({}×{ROW_PITCH_NM:.3} = {:.2} nm ≥ 40 nm)\n",
        minimum_rows_per_supertile(),
        minimum_rows_per_supertile(),
        minimum_rows_per_supertile() as f64 * ROW_PITCH_NM
    );

    println!(
        "{:<14} {:>7} {:>22} {:>22} {:>10}",
        "benchmark", "rows", "per-row electrodes", "super-tile electrodes", "tiles/zone"
    );
    for name in benchmark_names().into_iter().take(6) {
        let b = benchmark(name);
        let options = FlowOptions::new()
            .with_pnr(PnrMethod::ExactWithFallback { max_area: 120 })
            .without_library();
        match FlowRequest::netlist(name, b.xag.clone())
            .with_options(options)
            .execute()
        {
            Ok(result) => {
                let fine = plan_supertiles_with_rows(&result.layout, 1);
                let merged = plan_supertiles(&result.layout);
                println!(
                    "{:<14} {:>7} {:>13} ({:>5.2} nm, {}) {:>12} ({:>5.2} nm, {}) {:>10}",
                    name,
                    result.layout.ratio().height,
                    fine.num_electrodes,
                    fine.electrode_pitch_nm,
                    if fine.is_fabricable() { "ok " } else { "VIOL" },
                    merged.num_electrodes,
                    merged.electrode_pitch_nm,
                    if merged.is_fabricable() {
                        "ok "
                    } else {
                        "VIOL"
                    },
                    merged.tiles_per_supertile,
                );
            }
            Err(e) => println!("{name:<14} FAILED: {e}"),
        }
    }
    println!(
        "\nAll tiles of a super-tile share one clock field and switch together;\n\
         the resulting linear (feed-forward) clocking is exactly what the row\n\
         scheme provides, so merging preserves every layout's validity."
    );
}
