//! Operational-domain analysis of the validated library tiles — the
//! "streamlined operational domain evaluation framework" the paper's
//! outlook (Section 6) calls for.
//!
//! ```text
//! cargo run --release --example opdomain
//! ```
//!
//! Sweeps `(ε_r, λ_TF)` around the experimentally calibrated point and
//! maps where each design still reproduces its truth table. The
//! adaptive sampler (default; `OPDOMAIN_STRATEGY=dense` for the full
//! sweep) follows the domain boundary and infers closed regions, so
//! only a fraction of the grid is simulated — each map reports how
//! many points were simulated vs inferred.

use bestagon_lib::tiles::{huff_style_or, inverter_nw_sw, wire_nw_sw};
use sidb_sim::opdomain::DomainParams;
use sidb_sim::{PhysicalParams, SimCache, SimEngine, SimParams};

fn main() {
    let mut sim = SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact);
    if let Some(cache) = SimCache::from_env() {
        sim = sim.with_cache(cache);
    }
    let params = DomainParams::new(sim);
    println!("=== Operational domains (■ = truth table reproduced) ===\n");
    for design in [huff_style_or(), wire_nw_sw(), inverter_nw_sw()] {
        let domain = design.operational_domain(&params);
        println!(
            "{} — coverage {:.0}% of the swept window, nominal point {}:",
            design.name,
            domain.coverage() * 100.0,
            match domain.nominal_operational() {
                Some(true) => "operational",
                Some(false) => "not operational",
                None => "unknown",
            }
        );
        println!(
            "  {} grid points: {} simulated, {} inferred, {} skipped ({} pattern simulations)",
            domain.stats.points,
            domain.stats.simulated,
            domain.stats.inferred,
            domain.stats.skipped,
            domain.stats.pattern_sims,
        );
        println!("{}", domain.render_ascii());
    }
}
