//! Operational-domain analysis of the validated library tiles — the
//! "streamlined operational domain evaluation framework" the paper's
//! outlook (Section 6) calls for.
//!
//! ```text
//! cargo run --release --example opdomain
//! ```
//!
//! Sweeps `(ε_r, λ_TF)` around the experimentally calibrated point and
//! maps where each design still reproduces its truth table.

use bestagon_lib::tiles::{huff_style_or, inverter_nw_sw, wire_nw_sw};
use sidb_sim::opdomain::{operational_domain_with, DomainGrid};
use sidb_sim::{PhysicalParams, SimCache, SimEngine, SimParams};

fn main() {
    let grid = DomainGrid::default();
    let mut sim = SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact);
    if let Some(cache) = SimCache::from_env() {
        sim = sim.with_cache(cache);
    }
    println!("=== Operational domains (■ = truth table reproduced) ===\n");
    for design in [huff_style_or(), wire_nw_sw(), inverter_nw_sw()] {
        let domain = operational_domain_with(&design, grid, &sim);
        println!(
            "{} — coverage {:.0}% of the swept window, nominal point {}:",
            design.name,
            domain.coverage() * 100.0,
            if domain.nominal_operational() {
                "operational"
            } else {
                "not operational"
            }
        );
        println!("{}", domain.render_ascii());
    }
}
