//! Regenerates the paper's **Figure 1c**: ground-state charge
//! configurations of a Huff-et-al.-style Y-shaped OR gate for all four
//! input patterns, simulated at the figure's physical parameters
//! (μ− = −0.28 eV, ε_r = 5.6, λ_TF = 5 nm).
//!
//! ```text
//! cargo run --release --example fig1_or_gate
//! ```

use bestagon_lib::tiles::huff_style_or;
use sidb_sim::charge::ChargeState;
use sidb_sim::{PhysicalParams, SimEngine, SimParams};

fn main() {
    let gate = huff_style_or();
    let params = PhysicalParams::default().with_mu_minus(-0.28);
    let sim_params = SimParams::new(params).with_engine(SimEngine::Exhaustive);
    println!("=== Figure 1c: Y-shaped OR gate, μ− = −0.28 eV ===");
    println!(
        "gate: {} ({} SiDBs + perturbers)\n",
        gate.name,
        gate.body.num_sites()
    );

    for pattern in 0..gate.num_patterns() {
        let a = pattern & 1 == 1;
        let b = pattern & 2 != 0;
        let sim = gate
            .simulate_pattern_with(pattern, &sim_params)
            .expect("non-empty gate");
        let out = sim.outputs[0];
        println!(
            "inputs a={} b={}  →  output {}   (expected {})",
            a as u8,
            b as u8,
            out.map(|v| (v as u8).to_string())
                .unwrap_or_else(|| "?".into()),
            (a || b) as u8
        );
        // Dot-accurate charge map.
        for (site, state) in sim.layout.sites().iter().zip(sim.ground_state.states()) {
            if *state == ChargeState::Negative {
                println!("    SiDB⁻ at (n={}, m={}, l={})", site.x, site.y, site.b);
            }
        }
    }

    let report = gate.check_operational_with(&sim_params);
    println!("\noperational check: {:?}", report.status);
    println!(
        "configurations visited: {} (pruned {})",
        report.stats.visited, report.stats.pruned
    );
}
