//! Regenerates the paper's **Figure 2**: clocking by charge-population
//! modulation — activated zones compute, deactivated zones separate.
//!
//! ```text
//! cargo run --release --example fig2_clocking
//! ```
//!
//! Runs the clocked gate-level pipeline simulation on a placed & routed
//! OR gate and prints, per tick, which zone is activated and how the
//! signal wavefront advances row by row; then demonstrates the resulting
//! pipeline throughput of one sample per clock cycle.

use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use bestagon_core::pipeline::PipelineSim;
use fcn_coords::HexCoord;
use fcn_logic::network::Xag;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut xag = Xag::new();
    let a = xag.primary_input("a");
    let b = xag.primary_input("b");
    let f = xag.or(a, b);
    xag.primary_output("f", f);
    let result = FlowRequest::netlist("or2", xag)
        .with_options(
            FlowOptions::new()
                .with_pnr(PnrMethod::Exact { max_area: 60 })
                .without_library(),
        )
        .execute()?;
    let layout = &result.layout;
    println!("=== Figure 2: four-phase clocking wave ===\n");
    println!("{}", layout.render_ascii());

    let inputs: HashMap<String, Vec<bool>> = [
        ("a".into(), vec![false, true, false, true]),
        ("b".into(), vec![false, false, true, true]),
    ]
    .into();
    let mut sim = PipelineSim::new(layout, inputs);

    for tick in 0..16 {
        let zone = PipelineSim::active_zone(tick);
        sim.step();
        let live_rows: Vec<i32> = (0..layout.ratio().height as i32)
            .filter(|&y| {
                (0..layout.ratio().width as i32).any(|x| sim.tile_is_live(HexCoord::new(x, y)))
            })
            .collect();
        println!("tick {tick:>2}: zone {zone} activated; rows holding signals: {live_rows:?}");
    }

    println!("\noutput samples (name, tick, value):");
    for (name, tick, value) in sim.outputs() {
        println!("  {name} @ tick {tick} = {}", *value as u8);
    }
    println!(
        "\nthroughput: {} samples in {} cycles after the fill latency — the 1/1 \
         throughput the paper reports for balanced layouts",
        sim.outputs().len(),
        sim.tick() / 4
    );
    Ok(())
}
