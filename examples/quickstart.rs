//! Quickstart: from a Verilog specification to a dot-accurate SiDB layout.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the full eight-step flow of the paper on a 2:1 multiplexer
//! and prints the gate-level layout, verification verdict, super-tile
//! plan, SiDB statistics, and a snippet of the SiQAD export.

use bestagon_core::flow::{FlowOptions, FlowRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        module mux21 (a, b, s, f);
          input a, b, s;
          output f;
          assign f = s ? b : a;
        endmodule";

    println!("=== Bestagon quickstart: 2:1 multiplexer ===\n");
    let result = FlowRequest::verilog(source)
        .with_options(FlowOptions::default())
        .execute()?;

    println!("specification:   {}", result.name);
    println!(
        "logic synthesis: {} XAG gates -> {} after rewriting (depth {})",
        result.gates_before_rewrite, result.gates_after_rewrite, result.depth
    );
    println!(
        "physical design: {} layout via the {} engine",
        result.layout.ratio(),
        if result.exact { "exact" } else { "heuristic" }
    );
    println!("verification:    {:?}", result.equivalence);
    println!(
        "clocking:        {} electrodes of {:.2} nm pitch ({} tiles each), fabricable: {}",
        result.supertiles.num_electrodes,
        result.supertiles.electrode_pitch_nm,
        result.supertiles.tiles_per_supertile,
        result.supertiles.is_fabricable()
    );
    let cell = result.cell.as_ref().expect("library applied by default");
    println!(
        "SiDB layout:     {} dangling bonds in {:.2} nm²\n",
        cell.num_sidbs(),
        cell.area_nm2
    );

    println!("--- gate-level layout ---");
    println!("{}", result.layout.render_ascii());

    let sqd = result.to_sqd().expect("sqd export");
    println!("--- SiQAD export (first lines) ---");
    for line in sqd.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} dots total)", cell.num_sidbs());

    println!("\n--- flow telemetry (per-stage wall time) ---");
    print!("{}", result.report.render_summary());
    Ok(())
}
