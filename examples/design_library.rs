//! Repairs the non-operational library tiles with the automated
//! designer — the workflow that produced the canvas dots baked into
//! `bestagon_lib::tiles` (this reproduction's substitute for the
//! paper's per-tile reinforcement-learning agent).
//!
//! ```text
//! cargo run --release --example design_library
//! ```
//!
//! Validates every Figure 5 design under the default physical
//! parameters, then runs the parallel canvas search
//! ([`design_library`](bestagon_lib::designer::design_library)) on each
//! failing tile under one shared wall-clock budget and reports the
//! canvas dots of every repair it finds, ready to be transplanted into
//! the tile constructors. Knobs: `DESIGNER_DEADLINE_MS` (default
//! 60000 — the expensive tiles need hours; raise it for a full hunt),
//! `DESIGNER_THREADS`, `SIM_CACHE=0`.

use bestagon_lib::designer::{design_library, DesignerOptions};
use bestagon_lib::tiles::{figure5_designs, validate_designs};
use fcn_budget::{Deadline, StepBudget};
use sidb_sim::PhysicalParams;

fn main() {
    let params = PhysicalParams::default();
    let designs = figure5_designs();
    let verdicts = validate_designs(&designs, &params);
    let failing: Vec<_> = designs
        .into_iter()
        .zip(&verdicts)
        .filter(|(_, v)| !v.operational)
        .map(|(d, _)| d)
        .collect();
    println!(
        "library: {} designs, {} failing under default parameters",
        verdicts.len(),
        failing.len()
    );
    if failing.is_empty() {
        println!("nothing to repair");
        return;
    }

    let deadline_ms = std::env::var("DESIGNER_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let options = DesignerOptions::new()
        .with_max_dots(4)
        .with_iterations(200)
        .with_restarts(8)
        .with_seed(7)
        .with_budget(StepBudget::unbounded().with_deadline(Deadline::after_ms(deadline_ms)));
    println!(
        "searching {} tile(s), deadline {deadline_ms} ms …",
        failing.len()
    );

    for repair in design_library(&failing, &options, &params) {
        let r = &repair.result;
        if repair.repaired {
            let dots: Vec<String> = r
                .canvas
                .iter()
                .map(|c| format!("({}, {}, {})", c.x, c.y, c.b))
                .collect();
            println!(
                "  {}: REPAIRED with {} canvas dot(s): {}",
                repair.name,
                r.canvas.len(),
                dots.join(", ")
            );
        } else {
            println!(
                "  {}: best {}/{} correct after {} candidates{}",
                repair.name,
                r.score.correct,
                r.target,
                r.stats.candidates,
                r.degradation
                    .as_ref()
                    .map(|d| format!(" — degraded: {:?}, {}", d.trigger, d.detail))
                    .unwrap_or_default()
            );
        }
    }
}
