//! Regenerates the paper's **Figure 5**: physical simulation of the
//! Bestagon library tiles (μ− = −0.32 eV, ε_r = 5.6, λ_TF = 5 nm).
//!
//! ```text
//! cargo run --release --example fig5_gate_sims
//! ```
//!
//! Every library design is validated with the exact ground-state engine
//! across all input patterns; the table reports the per-tile verdicts —
//! including the designs whose physical realization is still open, which
//! the paper's own workflow (RL proposal + manual review) also had to
//! iterate on. See `EXPERIMENTS.md` for the discussion.

use bestagon_lib::geometry::validation_params;
use bestagon_lib::tiles::{figure5_designs, validate_designs, wire_nw_se};
use sidb_sim::model::PhysicalParams;

fn main() {
    let params = PhysicalParams::default();
    println!("=== Figure 5: Bestagon tile validation ===");
    println!(
        "physics: μ− = {} eV, ε_r = {}, λ_TF = {} nm (full screened-Coulomb model)\n",
        params.mu_minus, params.epsilon_r, params.lambda_tf_nm,
    );

    let designs = figure5_designs();
    let report = validate_designs(&designs, &params);
    println!("{:<22} {:>7} {:>14}", "tile", "SiDBs", "operational");
    let mut operational = 0;
    for r in &report {
        println!(
            "{:<22} {:>7} {:>14}",
            r.name,
            r.num_sidbs,
            if r.operational {
                "yes".to_string()
            } else {
                format!("no (p{})", r.failing_pattern.unwrap_or(0))
            }
        );
        operational += r.operational as usize;
    }
    println!(
        "\n{operational}/{} designs reproduce their full truth table in exact\n\
         ground-state simulation under the full model.",
        report.len()
    );

    // The diagonal wire additionally passes under a domain-separated
    // simulation (2 meV interaction cutoff), the setting the library's
    // calibration sweeps use for far-apart sub-structures.
    let diag = validate_designs(&[wire_nw_se()], &validation_params());
    println!(
        "domain-separated check — {}: {}",
        diag[0].name,
        if diag[0].operational {
            "operational"
        } else {
            "not operational"
        }
    );
}
