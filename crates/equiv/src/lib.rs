//! `fcn-equiv` — formal verification of gate-level FCN layouts.
//!
//! Step 5 of the paper's flow: "perform SAT-based equivalence checking of
//! the input network and the resulting gate-level layout"
//! [Walter et al., DAC 2020]. The layout's logic is extracted by tracing
//! tiles in clock order ([`extract_network`]); the extracted netlist and
//! the specification XAG are then combined into a *miter* — outputs pair-
//! wise XOR-ed and OR-ed together — which is unsatisfiable exactly when
//! the two designs agree on every input assignment ([`check_equivalence`]).
//!
//! # Examples
//!
//! ```
//! use fcn_logic::network::Xag;
//! use fcn_logic::techmap::{map_xag, MapOptions};
//! use fcn_pnr::{exact_pnr, ExactOptions, NetGraph};
//! use fcn_equiv::{check_equivalence, Equivalence};
//!
//! let mut xag = Xag::new();
//! let a = xag.primary_input("a");
//! let b = xag.primary_input("b");
//! let f = xag.or(a, b);
//! xag.primary_output("f", f);
//! let net = map_xag(&xag, MapOptions::default())?;
//! let result = exact_pnr(&NetGraph::new(net)?, &ExactOptions::default())?;
//! assert_eq!(check_equivalence(&xag, &result.layout)?, Equivalence::Equivalent);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use fcn_budget::Deadline;
use fcn_coords::HexCoord;
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::tile::TileContents;
use fcn_logic::network::Xag;
use fcn_logic::techmap::{MappedId, MappedNetwork, MappedSignal};
use fcn_logic::GateKind;
use msat::{BoundedResult, CnfBuilder, Lit, SolveParams};
use std::collections::HashMap;

/// The resource limit that stopped a bounded equivalence check before it
/// reached a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiterLimit {
    /// The conflict budget ran out.
    Conflicts,
    /// The wall-clock deadline expired.
    Deadline,
}

impl core::fmt::Display for MiterLimit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MiterLimit::Conflicts => write!(f, "conflict budget exhausted"),
            MiterLimit::Deadline => write!(f, "deadline expired"),
        }
    }
}

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Specification and layout compute the same function.
    Equivalent,
    /// A distinguishing input assignment was found (values in
    /// specification PI order).
    NotEquivalent {
        /// The counterexample input assignment.
        counterexample: Vec<bool>,
    },
    /// A *bounded* check ran out of resources before reaching a verdict.
    /// Only [`check_equivalence_bounded`] and friends produce this; the
    /// unbounded entry points always conclude.
    Unknown {
        /// Which resource limit stopped the check.
        limit: MiterLimit,
    },
}

/// An error raised during extraction or equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The layout references a tile signal that has no driver.
    MissingDriver {
        /// The tile with the dangling input.
        tile: (i32, i32),
    },
    /// Specification and layout differ in their input/output pads.
    InterfaceMismatch(String),
    /// The extracted network is internally inconsistent — a fanin refers
    /// to a signal that was never defined, or a gate has the wrong
    /// number of inputs. Indicates a corrupted intermediate rather than
    /// a bad design, so it is reported instead of panicking.
    MalformedNetwork(String),
}

impl core::fmt::Display for EquivError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EquivError::MissingDriver { tile } => {
                write!(f, "tile ({}, {}) has an undriven input", tile.0, tile.1)
            }
            EquivError::InterfaceMismatch(msg) => write!(f, "interface mismatch: {msg}"),
            EquivError::MalformedNetwork(msg) => write!(f, "malformed network: {msg}"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Extracts the logic network realized by a row-clocked hexagonal layout.
///
/// Tiles are traced in row (clock) order; wire tiles and crossings forward
/// signals, gate tiles become network nodes. The extracted network carries
/// the layout's PI/PO pad names.
///
/// # Errors
///
/// Returns [`EquivError::MissingDriver`] if a tile input is unconnected —
/// run [`HexGateLayout::verify`] first for a detailed design-rule report.
pub fn extract_network(layout: &HexGateLayout) -> Result<MappedNetwork, EquivError> {
    let mut net = MappedNetwork::new();
    // Signal available at (tile, outgoing direction).
    let mut signal_at: HashMap<(HexCoord, fcn_coords::HexDirection), MappedSignal> = HashMap::new();

    // occupied_tiles iterates in BTreeMap order: (x, y) lexicographic — we
    // need row order instead.
    let mut tiles: Vec<(HexCoord, &TileContents<fcn_coords::HexDirection>)> =
        layout.occupied_tiles().collect();
    tiles.sort_by_key(|(c, _)| (c.y, c.x));

    for (coord, contents) in tiles {
        let fetch = |signal_at: &HashMap<_, _>, dir| -> Result<MappedSignal, EquivError> {
            let n = coord.neighbor(dir);
            signal_at
                .get(&(n, dir.opposite()))
                .copied()
                .ok_or(EquivError::MissingDriver {
                    tile: (coord.x, coord.y),
                })
        };
        match contents {
            TileContents::Gate {
                kind,
                inputs,
                outputs,
                name,
            } => {
                let fanins = inputs
                    .iter()
                    .map(|&d| fetch(&signal_at, d))
                    .collect::<Result<Vec<_>, _>>()?;
                let id = net.add_node(*kind, fanins, name.clone());
                for (port, &d) in outputs.iter().enumerate() {
                    signal_at.insert(
                        (coord, d),
                        MappedSignal {
                            node: id,
                            output: port as u8,
                        },
                    );
                }
            }
            TileContents::Wire { segments } => {
                for &(in_dir, out_dir) in segments {
                    let s = fetch(&signal_at, in_dir)?;
                    signal_at.insert((coord, out_dir), s);
                }
            }
        }
    }
    Ok(net)
}

/// Extracts the logic network realized by a 2DDWave-clocked Cartesian
/// layout (the Figure 3 baseline). Tiles are traced in anti-diagonal
/// order; the semantics mirror [`extract_network`].
///
/// # Errors
///
/// Returns [`EquivError::MissingDriver`] if a tile input is unconnected.
pub fn extract_network_cart(
    layout: &fcn_layout::cartesian::CartGateLayout,
) -> Result<MappedNetwork, EquivError> {
    use fcn_coords::CartDirection;
    let mut net = MappedNetwork::new();
    let mut signal_at: HashMap<(fcn_coords::CartCoord, CartDirection), MappedSignal> =
        HashMap::new();
    let mut tiles: Vec<(fcn_coords::CartCoord, &TileContents<CartDirection>)> =
        layout.occupied_tiles().collect();
    tiles.sort_by_key(|(c, _)| (c.x + c.y, c.x));

    for (coord, contents) in tiles {
        let fetch =
            |signal_at: &HashMap<_, _>, dir: CartDirection| -> Result<MappedSignal, EquivError> {
                let n = coord.neighbor(dir);
                signal_at
                    .get(&(n, dir.opposite()))
                    .copied()
                    .ok_or(EquivError::MissingDriver {
                        tile: (coord.x, coord.y),
                    })
            };
        match contents {
            TileContents::Gate {
                kind,
                inputs,
                outputs,
                name,
            } => {
                let fanins = inputs
                    .iter()
                    .map(|&d| fetch(&signal_at, d))
                    .collect::<Result<Vec<_>, _>>()?;
                let id = net.add_node(*kind, fanins, name.clone());
                for (port, &d) in outputs.iter().enumerate() {
                    signal_at.insert(
                        (coord, d),
                        MappedSignal {
                            node: id,
                            output: port as u8,
                        },
                    );
                }
            }
            TileContents::Wire { segments } => {
                for &(in_dir, out_dir) in segments {
                    let s = fetch(&signal_at, in_dir)?;
                    signal_at.insert((coord, out_dir), s);
                }
            }
        }
    }
    Ok(net)
}

/// Checks whether a Cartesian layout implements the specification.
///
/// # Errors
///
/// Same conditions as [`check_equivalence`].
pub fn check_equivalence_cart(
    spec: &Xag,
    layout: &fcn_layout::cartesian::CartGateLayout,
) -> Result<Equivalence, EquivError> {
    let extracted = extract_network_cart(layout)?;
    check_equivalence_extracted(spec, &extracted)
}

/// Bounded variant of [`check_equivalence_cart`]; see
/// [`check_equivalence_bounded`] for the semantics of the limits.
///
/// # Errors
///
/// Same conditions as [`check_equivalence`].
pub fn check_equivalence_cart_bounded(
    spec: &Xag,
    layout: &fcn_layout::cartesian::CartGateLayout,
    max_conflicts: Option<u64>,
    deadline: Deadline,
) -> Result<Equivalence, EquivError> {
    let extracted = extract_network_cart(layout)?;
    check_equivalence_extracted_bounded(spec, &extracted, max_conflicts, deadline)
}

/// Encodes an [`Xag`] into the CNF builder; returns one literal per PO.
fn encode_xag(
    cnf: &mut CnfBuilder,
    xag: &Xag,
    pi_lits: &HashMap<String, Lit>,
) -> Vec<(String, Lit)> {
    use fcn_logic::network::NodeKind;
    let mut lit_of: Vec<Lit> = Vec::with_capacity(xag.num_nodes());
    let mut pi_index = 0usize;
    for id in xag.node_ids() {
        let lit = match xag.node(id) {
            NodeKind::Constant => cnf.constant_false(),
            NodeKind::Input => {
                let name = xag.pi_name(pi_index);
                pi_index += 1;
                pi_lits[name]
            }
            NodeKind::And(a, b) => {
                let la = lit_of[a.node().index()].negated_if(a.is_complemented());
                let lb = lit_of[b.node().index()].negated_if(b.is_complemented());
                cnf.and(la, lb)
            }
            NodeKind::Xor(a, b) => {
                let la = lit_of[a.node().index()].negated_if(a.is_complemented());
                let lb = lit_of[b.node().index()].negated_if(b.is_complemented());
                cnf.xor(la, lb)
            }
        };
        lit_of.push(lit);
    }
    xag.primary_outputs()
        .iter()
        .map(|(name, s)| {
            (
                name.clone(),
                lit_of[s.node().index()].negated_if(s.is_complemented()),
            )
        })
        .collect()
}

/// Small helper for conditional negation.
trait NegatedIf {
    fn negated_if(self, c: bool) -> Self;
}

impl NegatedIf for Lit {
    fn negated_if(self, c: bool) -> Lit {
        if c {
            self.negated()
        } else {
            self
        }
    }
}

/// Encodes a [`MappedNetwork`] into CNF; returns one literal per PO.
fn encode_mapped(
    cnf: &mut CnfBuilder,
    net: &MappedNetwork,
    pi_lits: &HashMap<String, Lit>,
) -> Result<Vec<(String, Lit)>, EquivError> {
    let mut out_lits: HashMap<(MappedId, u8), Lit> = HashMap::new();
    let mut pos = Vec::new();
    for id in net.node_ids() {
        let node = net.node(id);
        let ins: Vec<Lit> = node
            .fanins
            .iter()
            .map(|f| {
                out_lits.get(&(f.node, f.output)).copied().ok_or_else(|| {
                    EquivError::MalformedNetwork(format!(
                        "node {} reads undefined signal ({}, {})",
                        id.index(),
                        f.node.index(),
                        f.output
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let arity = |want: usize| -> Result<(), EquivError> {
            if ins.len() == want {
                Ok(())
            } else {
                Err(EquivError::MalformedNetwork(format!(
                    "node {} ({:?}) has {} fanins, expected {want}",
                    id.index(),
                    node.kind,
                    ins.len()
                )))
            }
        };
        match node.kind {
            GateKind::Pi => {
                let name = node.name.clone().unwrap_or_default();
                let lit = *pi_lits.get(&name).ok_or_else(|| {
                    EquivError::InterfaceMismatch(format!(
                        "layout PI '{name}' not in specification"
                    ))
                })?;
                out_lits.insert((id, 0), lit);
            }
            GateKind::Po => {
                arity(1)?;
                pos.push((node.name.clone().unwrap_or_default(), ins[0]));
            }
            GateKind::Buf => {
                arity(1)?;
                out_lits.insert((id, 0), ins[0]);
            }
            GateKind::Inv => {
                arity(1)?;
                out_lits.insert((id, 0), ins[0].negated());
            }
            GateKind::And => {
                arity(2)?;
                let o = cnf.and(ins[0], ins[1]);
                out_lits.insert((id, 0), o);
            }
            GateKind::Nand => {
                arity(2)?;
                let o = cnf.and(ins[0], ins[1]);
                out_lits.insert((id, 0), o.negated());
            }
            GateKind::Or => {
                arity(2)?;
                let o = cnf.or(ins[0], ins[1]);
                out_lits.insert((id, 0), o);
            }
            GateKind::Nor => {
                arity(2)?;
                let o = cnf.or(ins[0], ins[1]);
                out_lits.insert((id, 0), o.negated());
            }
            GateKind::Xor => {
                arity(2)?;
                let o = cnf.xor(ins[0], ins[1]);
                out_lits.insert((id, 0), o);
            }
            GateKind::Xnor => {
                arity(2)?;
                let o = cnf.xor(ins[0], ins[1]);
                out_lits.insert((id, 0), o.negated());
            }
            GateKind::Fanout => {
                arity(1)?;
                out_lits.insert((id, 0), ins[0]);
                out_lits.insert((id, 1), ins[0]);
            }
            GateKind::HalfAdder => {
                arity(2)?;
                let s = cnf.xor(ins[0], ins[1]);
                let c = cnf.and(ins[0], ins[1]);
                out_lits.insert((id, 0), s);
                out_lits.insert((id, 1), c);
            }
        }
    }
    Ok(pos)
}

/// Checks whether `layout` implements the specification `spec`.
///
/// Builds a miter over shared primary inputs (matched by pad name) and
/// asks the SAT solver for a distinguishing assignment.
///
/// # Errors
///
/// Fails when the PI/PO interfaces disagree or the layout has undriven
/// tile inputs.
pub fn check_equivalence(spec: &Xag, layout: &HexGateLayout) -> Result<Equivalence, EquivError> {
    let extracted = extract_network(layout)?;
    check_equivalence_extracted(spec, &extracted)
}

/// Bounded variant of [`check_equivalence`]: the miter solve stops at
/// `max_conflicts` conflicts (when given) or at the wall-clock
/// `deadline` (when bounded), reporting [`Equivalence::Unknown`] with
/// the limit that fired instead of running to completion. With
/// `max_conflicts: None` and an unbounded deadline this is exactly
/// [`check_equivalence`].
///
/// # Errors
///
/// Same conditions as [`check_equivalence`].
pub fn check_equivalence_bounded(
    spec: &Xag,
    layout: &HexGateLayout,
    max_conflicts: Option<u64>,
    deadline: Deadline,
) -> Result<Equivalence, EquivError> {
    let extracted = extract_network(layout)?;
    check_equivalence_extracted_bounded(spec, &extracted, max_conflicts, deadline)
}

/// Equivalence check against an already extracted network.
///
/// # Errors
///
/// Fails when the PI/PO interfaces disagree.
pub fn check_equivalence_extracted(
    spec: &Xag,
    extracted: &MappedNetwork,
) -> Result<Equivalence, EquivError> {
    check_equivalence_extracted_bounded(spec, extracted, None, Deadline::unbounded())
}

/// Bounded equivalence check against an already extracted network (see
/// [`check_equivalence_bounded`]). Hosts the `equiv.miter` fault-
/// injection point: an injected `exhaust` or `interrupt` forces an
/// [`Equivalence::Unknown`] verdict when the corresponding limit is
/// configured, and an injected `panic` fires here.
///
/// # Errors
///
/// Fails when the PI/PO interfaces disagree.
pub fn check_equivalence_extracted_bounded(
    spec: &Xag,
    extracted: &MappedNetwork,
    max_conflicts: Option<u64>,
    deadline: Deadline,
) -> Result<Equivalence, EquivError> {
    let _span = fcn_telemetry::span("miter");
    let mut cnf = CnfBuilder::new();
    // Shared PI literals by name.
    let mut pi_lits: HashMap<String, Lit> = HashMap::new();
    let mut pi_order: Vec<String> = Vec::new();
    for i in 0..spec.num_pis() {
        let name = spec.pi_name(i).to_owned();
        let lit = cnf.new_lit();
        pi_order.push(name.clone());
        pi_lits.insert(name, lit);
    }
    // Every layout PI must exist in the spec.
    for id in extracted.primary_inputs() {
        let name = extracted.node(id).name.clone().unwrap_or_default();
        if !pi_lits.contains_key(&name) {
            return Err(EquivError::InterfaceMismatch(format!(
                "layout PI '{name}' not in specification"
            )));
        }
    }

    let spec_pos = encode_xag(&mut cnf, spec, &pi_lits);
    let layout_pos = encode_mapped(&mut cnf, extracted, &pi_lits)?;

    if spec_pos.len() != layout_pos.len() {
        return Err(EquivError::InterfaceMismatch(format!(
            "specification has {} outputs, layout has {}",
            spec_pos.len(),
            layout_pos.len()
        )));
    }
    let layout_by_name: HashMap<&str, Lit> =
        layout_pos.iter().map(|(n, l)| (n.as_str(), *l)).collect();

    let mut diffs = Vec::new();
    for (name, spec_lit) in &spec_pos {
        let layout_lit = *layout_by_name.get(name.as_str()).ok_or_else(|| {
            EquivError::InterfaceMismatch(format!("specification PO '{name}' missing in layout"))
        })?;
        diffs.push(cnf.xor(*spec_lit, layout_lit));
    }
    cnf.add_clause(diffs); // at least one output differs

    fcn_telemetry::counter("miter.vars", cnf.solver().num_vars() as u64);
    fcn_telemetry::counter("miter.clauses", cnf.solver().num_clauses() as u64);
    fcn_telemetry::counter("miter.outputs", spec_pos.len() as u64);
    // Injected faults can force the bounded no-verdict paths; as in the
    // solver, they are gated on the corresponding limit actually being
    // configured so an unbounded check can never report `Unknown`.
    match fcn_budget::fault::check("equiv.miter") {
        Some(fcn_budget::fault::Fault::Exhaust) if max_conflicts.is_some() => {
            fcn_telemetry::note("verdict", "unknown");
            return Ok(Equivalence::Unknown {
                limit: MiterLimit::Conflicts,
            });
        }
        Some(fcn_budget::fault::Fault::Interrupt) if deadline.is_bounded() => {
            fcn_telemetry::note("verdict", "unknown");
            return Ok(Equivalence::Unknown {
                limit: MiterLimit::Deadline,
            });
        }
        _ => {}
    }
    let outcome = if max_conflicts.is_none() && !deadline.is_bounded() {
        // The unbounded path always concludes.
        match cnf.solve() {
            msat::SolveResult::Sat(model) => BoundedResult::Sat(model),
            msat::SolveResult::Unsat => BoundedResult::Unsat,
        }
    } else {
        let mut params = SolveParams::new().deadline(deadline);
        if let Some(budget) = max_conflicts {
            params = params.budget(budget);
        }
        cnf.solve_with(&params)
    };
    let stats = cnf.solver().stats();
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    match outcome {
        BoundedResult::Unsat => {
            fcn_telemetry::note("verdict", "equivalent");
            Ok(Equivalence::Equivalent)
        }
        BoundedResult::Sat(model) => {
            fcn_telemetry::note("verdict", "not-equivalent");
            Ok(Equivalence::NotEquivalent {
                counterexample: pi_order
                    .iter()
                    .map(|n| model.lit_value(pi_lits[n]))
                    .collect(),
            })
        }
        BoundedResult::DeadlineExpired => {
            fcn_telemetry::note("verdict", "unknown");
            Ok(Equivalence::Unknown {
                limit: MiterLimit::Deadline,
            })
        }
        BoundedResult::BudgetExceeded | BoundedResult::Interrupted => {
            fcn_telemetry::note("verdict", "unknown");
            Ok(Equivalence::Unknown {
                limit: MiterLimit::Conflicts,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::techmap::{map_xag, MapOptions};
    use fcn_pnr::{exact_pnr, heuristic_pnr, ExactOptions, NetGraph};

    fn full_adder() -> Xag {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let cin = xag.primary_input("cin");
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        let and1 = xag.and(a, b);
        let and2 = xag.and(axb, cin);
        let cout = xag.or(and1, and2);
        xag.primary_output("sum", sum);
        xag.primary_output("cout", cout);
        xag
    }

    #[test]
    fn exact_layout_is_equivalent() {
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let result = exact_pnr(&NetGraph::new(net).expect("ok"), &ExactOptions::default())
            .expect("feasible");
        assert_eq!(
            check_equivalence(&xag, &result.layout).expect("checkable"),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn heuristic_layout_is_equivalent() {
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        assert_eq!(
            check_equivalence(&xag, &layout).expect("checkable"),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn extraction_round_trips_simulation() {
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        let extracted = extract_network(&layout).expect("extractable");
        for row in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| (row >> i) & 1 == 1).collect();
            assert_eq!(
                xag.simulate(&inputs),
                extracted.simulate(&inputs),
                "row {row}"
            );
        }
    }

    #[test]
    fn wrong_layout_is_detected() {
        // Specification: AND. Layout: OR. The miter must find a witness.
        let mut spec = Xag::new();
        let a = spec.primary_input("a");
        let b = spec.primary_input("b");
        let f = spec.and(a, b);
        spec.primary_output("f", f);

        let mut wrong = Xag::new();
        let a = wrong.primary_input("a");
        let b = wrong.primary_input("b");
        let f = wrong.or(a, b);
        wrong.primary_output("f", f);
        let net = map_xag(&wrong, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");

        match check_equivalence(&spec, &layout).expect("checkable") {
            Equivalence::NotEquivalent { counterexample } => {
                // The witness must actually distinguish AND from OR.
                let s = spec.simulate(&counterexample);
                let e = extract_network(&layout)
                    .expect("ok")
                    .simulate(&counterexample);
                assert_ne!(s, e);
            }
            other => panic!("AND vs OR must not be {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let mut spec = Xag::new();
        let a = spec.primary_input("a");
        spec.primary_output("f", !a);

        let mut other = Xag::new();
        let x = other.primary_input("x"); // different pad name
        other.primary_output("f", !x);
        let net = map_xag(&other, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        assert!(matches!(
            check_equivalence(&spec, &layout),
            Err(EquivError::InterfaceMismatch(_))
        ));
    }

    #[test]
    fn bounded_check_with_zero_conflicts_still_concludes_or_reports_unknown() {
        // A conflict budget of 0 must never panic or mis-report: the
        // check either concludes without conflicts or says Unknown.
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        let verdict = check_equivalence_bounded(&xag, &layout, Some(0), Deadline::unbounded())
            .expect("checkable");
        assert!(matches!(
            verdict,
            Equivalence::Equivalent
                | Equivalence::Unknown {
                    limit: MiterLimit::Conflicts
                }
        ));
    }

    #[test]
    fn bounded_check_reports_deadline_as_unknown() {
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        // An already-expired deadline forces the no-verdict path at the
        // solver's entry check.
        let expired = Deadline::at(std::time::Instant::now());
        assert_eq!(
            check_equivalence_bounded(&xag, &layout, None, expired).expect("checkable"),
            Equivalence::Unknown {
                limit: MiterLimit::Deadline
            }
        );
    }

    #[test]
    fn unbounded_check_ignores_injected_miter_faults() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        let _scope = install(std::sync::Arc::new(FaultPlan::single(
            "equiv.miter",
            Fault::Exhaust,
        )));
        // No conflict budget configured, so the injected exhaust cannot
        // smuggle an Unknown verdict into the unbounded API.
        assert_eq!(
            check_equivalence(&xag, &layout).expect("checkable"),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn injected_miter_exhaust_forces_unknown_when_bounded() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let xag = full_adder();
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("ok")).expect("routes");
        let _scope = install(std::sync::Arc::new(FaultPlan::single(
            "equiv.miter",
            Fault::Exhaust,
        )));
        assert_eq!(
            check_equivalence_bounded(&xag, &layout, Some(1_000_000), Deadline::unbounded())
                .expect("checkable"),
            Equivalence::Unknown {
                limit: MiterLimit::Conflicts
            }
        );
    }

    #[test]
    fn malformed_network_is_an_error_not_a_panic() {
        use fcn_logic::techmap::MappedSignal;
        let mut spec = Xag::new();
        let a = spec.primary_input("a");
        spec.primary_output("f", a);

        // A PO whose fanin points at a node output that no gate drives.
        let mut net = MappedNetwork::new();
        let pi = net.add_node(GateKind::Pi, vec![], Some("a".into()));
        net.add_node(
            GateKind::Po,
            vec![MappedSignal {
                node: pi,
                output: 7, // PIs only drive output 0
            }],
            Some("f".into()),
        );
        assert!(matches!(
            check_equivalence_extracted(&spec, &net),
            Err(EquivError::MalformedNetwork(_))
        ));
    }

    #[test]
    fn extraction_detects_missing_driver() {
        use fcn_coords::{AspectRatio, HexCoord, HexDirection};
        use fcn_layout::clocking::ClockingScheme;
        let mut layout = HexGateLayout::new(AspectRatio::new(2, 2), ClockingScheme::Row);
        layout.place(
            HexCoord::new(1, 1),
            TileContents::gate(
                GateKind::Po,
                vec![HexDirection::NorthWest],
                vec![],
                Some("f".into()),
            ),
        );
        assert!(matches!(
            extract_network(&layout),
            Err(EquivError::MissingDriver { .. })
        ));
    }
}
