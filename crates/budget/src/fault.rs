//! Deterministic fault injection for resilience testing.
//!
//! The flow promises to *degrade* on failure: a panicking portfolio
//! worker becomes a typed error, an exhausted SAT budget triggers the
//! heuristic fallback, an expired deadline downgrades verification to an
//! `Unknown` verdict. Those paths are worthless if they are never
//! executed, so the engines expose named **injection points** — at every
//! flow-stage boundary (`step2:rewrite`, …), inside the CDCL search loop
//! (`msat.search`), and inside each P&R probe (`pnr.probe`) — where a
//! [`FaultPlan`] can force a failure on demand.
//!
//! A plan is installed per thread with [`install`] (tests) or from the
//! `FAULT_INJECT` environment variable (CI, see [`FaultPlan::from_env`]).
//! The portfolio scheduler re-installs the caller's plan inside its
//! worker threads, exactly like the ambient telemetry collector, so an
//! injected solver fault fires at any thread count. When no plan is
//! armed anywhere, the per-point check is a single relaxed atomic load.
//!
//! Injection is deterministic: a rule fires on specific hit numbers of
//! its point (`@nth`), or — for randomized soak tests — on a
//! pseudo-random subset of hits derived from an explicit seed
//! ([`FaultPlan::seeded`]), never from global RNG state.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The failure a rule injects at its point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Unwind with a panic. Every stage and worker boundary must convert
    /// this into a typed error and cancel siblings.
    Panic,
    /// Report the local resource budget as exhausted.
    Exhaust,
    /// Report a cooperative interrupt (cancellation).
    Interrupt,
    /// Hand malformed intermediate data to the next consumer.
    Malform,
}

impl Fault {
    fn parse(s: &str) -> Option<Fault> {
        match s {
            "panic" => Some(Fault::Panic),
            "exhaust" => Some(Fault::Exhaust),
            "interrupt" => Some(Fault::Interrupt),
            "malform" => Some(Fault::Malform),
            _ => None,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Fault::Panic => "panic",
            Fault::Exhaust => "exhaust",
            Fault::Interrupt => "interrupt",
            Fault::Malform => "malform",
        })
    }
}

/// When a rule fires, relative to the hit counter of its point.
#[derive(Debug)]
enum Firing {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the `n`-th hit (1-based).
    Nth(u64),
    /// Fire pseudo-randomly on `permille`/1000 of hits, derived from
    /// `seed` and the hit number (deterministic for a fixed seed).
    Seeded { seed: u64, permille: u32 },
}

/// One injection rule: at which point, which fault, on which hits.
#[derive(Debug)]
struct Rule {
    /// Exact point name, or `*` matching every point.
    point: String,
    fault: Fault,
    firing: Firing,
    hits: AtomicU64,
}

impl Rule {
    fn matches(&self, point: &str) -> bool {
        self.point == "*" || self.point == point
    }

    /// Records a hit and decides whether the rule fires on it.
    fn hit(&self) -> Option<Fault> {
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match self.firing {
            Firing::Always => true,
            Firing::Nth(target) => n == target,
            Firing::Seeded { seed, permille } => {
                // SplitMix64 over (seed, hit number): stable across
                // platforms and runs, no global RNG involved.
                let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % 1000) < u64::from(permille)
            }
        };
        fire.then_some(self.fault)
    }
}

/// A set of injection rules, shared (`Arc`) between the installing
/// thread and any worker threads it propagates the plan to, so hit
/// counters are global to the plan rather than per thread.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan (never fires).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single always-firing rule at `point`.
    pub fn single(point: &str, fault: Fault) -> Self {
        FaultPlan::new().with_rule(point, fault, None)
    }

    /// Adds a rule firing at `point` (use `"*"` for every point) — on
    /// every hit, or only on the 1-based `nth` hit when given.
    pub fn with_rule(mut self, point: &str, fault: Fault, nth: Option<u64>) -> Self {
        self.rules.push(Rule {
            point: point.to_string(),
            fault,
            firing: match nth {
                Some(n) => Firing::Nth(n),
                None => Firing::Always,
            },
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Adds a seeded pseudo-random rule: `fault` fires at `point` on
    /// roughly `permille`/1000 of hits, chosen deterministically from
    /// `seed` and the hit number.
    pub fn seeded(mut self, point: &str, fault: Fault, seed: u64, permille: u32) -> Self {
        self.rules.push(Rule {
            point: point.to_string(),
            fault,
            firing: Firing::Seeded {
                seed,
                permille: permille.min(1000),
            },
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Parses a plan from a `FAULT_INJECT`-style spec: comma-separated
    /// `point=fault[@nth]` rules, where `fault` is one of `panic`,
    /// `exhaust`, `interrupt`, `malform`, and the optional `@nth` makes
    /// the rule fire only on the nth hit of the point (1-based).
    /// Example: `step4:pnr=panic@1,msat.search=exhaust`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (point, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{part}`: expected point=fault[@nth]"))?;
            let (fault_str, nth) = match rest.split_once('@') {
                Some((f, n)) => {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("fault rule `{part}`: bad hit index `{n}`"))?;
                    (f, Some(n))
                }
                None => (rest, None),
            };
            let fault = Fault::parse(fault_str)
                .ok_or_else(|| format!("fault rule `{part}`: unknown fault `{fault_str}`"))?;
            plan = plan.with_rule(point.trim(), fault, nth);
        }
        Ok(plan)
    }

    /// Builds a plan from the `FAULT_INJECT` environment variable.
    /// Returns `None` when unset or empty; malformed specs are reported
    /// on stderr and ignored (an operator typo must not take down a
    /// service whose whole point is resilience).
    pub fn from_env() -> Option<Arc<Self>> {
        let spec = std::env::var("FAULT_INJECT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) if !plan.rules.is_empty() => Some(Arc::new(plan)),
            Ok(_) => None,
            Err(e) => {
                eprintln!("FAULT_INJECT ignored: {e}");
                None
            }
        }
    }

    /// Records a hit at `point` and returns the fault to inject, if any.
    /// The first matching rule that fires wins; every matching rule's
    /// hit counter advances regardless.
    pub fn at(&self, point: &str) -> Option<Fault> {
        let mut fired = None;
        for rule in self.rules.iter().filter(|r| r.matches(point)) {
            let f = rule.hit();
            if fired.is_none() {
                fired = f;
            }
        }
        fired
    }

    /// Total hits recorded at `point` across all threads sharing the
    /// plan (diagnostic; used by tests to assert a point was reached).
    pub fn hits(&self, point: &str) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.matches(point))
            .map(|r| r.hits.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// Count of installed plans across all threads; lets [`armed`] answer
/// with one relaxed load when fault injection is off (the common case).
static ARMED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static PLANS: RefCell<Vec<Arc<FaultPlan>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls its plan when dropped.
#[must_use = "the plan is uninstalled when the scope is dropped"]
pub struct FaultScope(());

impl Drop for FaultScope {
    fn drop(&mut self) {
        PLANS.with(|s| s.borrow_mut().pop());
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs `plan` for the current thread until the returned scope is
/// dropped. Plans nest; the innermost one is consulted.
pub fn install(plan: Arc<FaultPlan>) -> FaultScope {
    PLANS.with(|s| s.borrow_mut().push(plan));
    ARMED.fetch_add(1, Ordering::Relaxed);
    FaultScope(())
}

/// The innermost plan installed on this thread, if any. Worker pools
/// capture this before spawning and [`install`] it inside each worker,
/// mirroring how the ambient telemetry collector propagates.
pub fn current() -> Option<Arc<FaultPlan>> {
    PLANS.with(|s| s.borrow().last().cloned())
}

/// Whether any thread has a plan installed. One relaxed atomic load;
/// engines gate their per-point checks on this.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed) > 0
}

/// Records a hit at `point` against this thread's plan and returns the
/// fault to inject, if any. Cheap no-op when nothing is [`armed`].
#[inline]
pub fn at(point: &str) -> Option<Fault> {
    if !armed() {
        return None;
    }
    current().and_then(|p| p.at(point))
}

/// Like [`at`], but a scheduled [`Fault::Panic`] panics right here (with
/// the point name in the payload); other faults are returned for the
/// call site to interpret. Call sites that only honor panics may ignore
/// the return value.
///
/// # Panics
///
/// Panics when the installed plan schedules [`Fault::Panic`] at `point`.
#[inline]
pub fn check(point: &str) -> Option<Fault> {
    match at(point) {
        Some(Fault::Panic) => panic!("injected fault: panic at {point}"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_silent() {
        assert!(!armed());
        assert_eq!(at("anywhere"), None);
        assert_eq!(check("anywhere"), None);
    }

    #[test]
    fn single_rule_fires_every_hit() {
        let _scope = install(Arc::new(FaultPlan::single("p", Fault::Exhaust)));
        assert!(armed());
        assert_eq!(at("p"), Some(Fault::Exhaust));
        assert_eq!(at("p"), Some(Fault::Exhaust));
        assert_eq!(at("other"), None);
    }

    #[test]
    fn nth_rule_fires_once() {
        let plan = Arc::new(FaultPlan::new().with_rule("p", Fault::Interrupt, Some(2)));
        let _scope = install(plan.clone());
        assert_eq!(at("p"), None);
        assert_eq!(at("p"), Some(Fault::Interrupt));
        assert_eq!(at("p"), None);
        assert_eq!(plan.hits("p"), 3);
    }

    #[test]
    fn wildcard_matches_every_point() {
        let _scope = install(Arc::new(FaultPlan::single("*", Fault::Malform)));
        assert_eq!(at("a"), Some(Fault::Malform));
        assert_eq!(at("b"), Some(Fault::Malform));
    }

    #[test]
    fn scopes_nest_and_uninstall() {
        let outer = install(Arc::new(FaultPlan::single("p", Fault::Exhaust)));
        {
            let _inner = install(Arc::new(FaultPlan::single("p", Fault::Interrupt)));
            assert_eq!(at("p"), Some(Fault::Interrupt));
        }
        assert_eq!(at("p"), Some(Fault::Exhaust));
        drop(outer);
        assert_eq!(at("p"), None);
    }

    #[test]
    fn parse_round_trips() {
        let plan = FaultPlan::parse("step4:pnr=panic@1, msat.search=exhaust").expect("valid");
        assert_eq!(plan.at("msat.search"), Some(Fault::Exhaust));
        assert_eq!(plan.at("step4:pnr"), Some(Fault::Panic));
        assert_eq!(plan.at("step4:pnr"), None); // @1 only
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("p=explode").is_err());
        assert!(FaultPlan::parse("p=panic@x").is_err());
    }

    #[test]
    fn seeded_rule_is_deterministic() {
        let fires = |seed| {
            let plan = FaultPlan::new().seeded("p", Fault::Panic, seed, 500);
            (0..64).filter(|_| plan.at("p").is_some()).count()
        };
        let a = fires(42);
        assert_eq!(a, fires(42), "same seed, same firings");
        assert!(a > 10 && a < 54, "roughly half fire, got {a}");
    }

    #[test]
    fn shared_counters_across_threads() {
        let plan = Arc::new(FaultPlan::new().with_rule("p", Fault::Panic, Some(4)));
        let fired: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let plan = plan.clone();
                    s.spawn(move || {
                        let _scope = install(plan);
                        usize::from(at("p").is_some())
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        });
        assert_eq!(fired, 1, "the 4th global hit fires exactly once");
        assert_eq!(plan.hits("p"), 4);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at boom")]
    fn check_panics_on_panic_fault() {
        let _scope = install(Arc::new(FaultPlan::single("boom", Fault::Panic)));
        check("boom");
    }
}
