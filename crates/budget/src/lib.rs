//! Deadlines, per-stage resource budgets, and fault injection.
//!
//! The exact engines in this workspace (SAT placement & routing, the
//! equivalence miter, exhaustive ground-state simulation) have unbounded
//! worst-case runtime. A deployable flow must *degrade* under resource
//! pressure instead of hanging or dying, which needs three ingredients
//! shared by every layer:
//!
//! * [`Deadline`] — a copyable wall-clock cut-off polled cooperatively by
//!   the CDCL loop, the portfolio scheduler, and the simulators.
//! * [`FlowBudget`] — the per-stage resource budgets (rewrite iterations,
//!   SAT conflicts per probe and cumulative, equivalence-miter conflicts,
//!   simulation steps) carried through all eight flow steps.
//! * [`fault`] — a deterministic fault-injection harness that can force
//!   panics, budget exhaustion, interrupts, and malformed intermediate
//!   data at named points, so every degradation edge is exercised by
//!   tests rather than hoped-for.
//!
//! This crate sits below `msat`; its only dependency is the (itself
//! dependency-free) `fcn-telemetry` crate, so deadline bookkeeping can
//! be recorded against the same monotonic clock the span timings use
//! ([`Deadline::record_remaining`]).

#![forbid(unsafe_code)]

pub mod fault;

use std::time::{Duration, Instant};

/// A wall-clock cut-off, or "no cut-off".
///
/// `Deadline` is a tiny copyable handle (an `Option<Instant>` with
/// helpers) designed to be threaded through deep call stacks and polled
/// cheaply: [`Deadline::unbounded`] never expires and costs nothing to
/// check; a bounded deadline costs one `Instant::now()` per poll, so
/// pollers amortize it behind a countdown (the SAT solver reuses its
/// interrupt poll cadence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline that never expires. Polling it is free.
    pub const fn unbounded() -> Self {
        Deadline(None)
    }

    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline(Some(Instant::now() + timeout))
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Deadline::after(Duration::from_millis(ms))
    }

    /// A deadline at the given instant.
    pub const fn at(instant: Instant) -> Self {
        Deadline(Some(instant))
    }

    /// The underlying instant, if bounded.
    pub const fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// Whether this deadline can ever expire.
    pub const fn is_bounded(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the deadline has passed. Always `false` when unbounded.
    pub fn expired(&self) -> bool {
        match self.0 {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }

    /// Time left before expiry; `None` when unbounded, zero when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// Milliseconds left before expiry; `None` when unbounded.
    pub fn remaining_ms(&self) -> Option<u64> {
        self.remaining().map(|d| d.as_millis() as u64)
    }

    /// Records the remaining milliseconds as a telemetry counter named
    /// `name` on the ambient collector's innermost open span. A no-op
    /// when the deadline is unbounded (an unconstrained run's report is
    /// unchanged) or when no collector is installed. Both the deadline
    /// and the telemetry spans read `std::time::Instant`, so the
    /// recorded headroom is directly comparable to the span durations
    /// around it.
    pub fn record_remaining(&self, name: &str) {
        if let Some(ms) = self.remaining_ms() {
            fcn_telemetry::counter(name, ms);
        }
    }
}

/// Per-stage resource budgets for one end-to-end flow run.
///
/// The default ([`FlowBudget::unbounded`]) imposes no limits and leaves
/// every engine byte-identical to an un-budgeted build; each field is an
/// independent opt-in. [`FlowBudget::from_env`] reads the documented
/// `FLOW_*` environment variables, so operators can bound a deployment
/// without code changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FlowBudget {
    /// Wall-clock deadline for the whole flow run.
    pub deadline: Deadline,
    /// Maximum cut-rewriting iterations (step 2).
    pub rewrite_iterations: Option<usize>,
    /// SAT conflict budget per aspect-ratio probe (step 4). `None`
    /// defers to the engine default.
    pub sat_conflicts_per_probe: Option<u64>,
    /// Cumulative SAT conflict budget across all aspect-ratio probes of
    /// one P&R scan (step 4).
    pub sat_conflicts_total: Option<u64>,
    /// Conflict budget for the equivalence miter (step 5). When set, an
    /// exhausted check reports `Unknown` instead of running forever.
    pub equiv_conflicts: Option<u64>,
    /// Step budget for exhaustive SiDB ground-state sweeps.
    pub sim_steps: Option<u64>,
}

impl FlowBudget {
    /// No limits: every stage runs exactly as without a budget.
    pub const fn unbounded() -> Self {
        FlowBudget {
            deadline: Deadline::unbounded(),
            rewrite_iterations: None,
            sat_conflicts_per_probe: None,
            sat_conflicts_total: None,
            equiv_conflicts: None,
            sim_steps: None,
        }
    }

    /// Reads the budget from the environment. Unset (or unparseable)
    /// variables leave the corresponding field unbounded, so an empty
    /// environment yields [`FlowBudget::unbounded`].
    ///
    /// | variable | field |
    /// |---|---|
    /// | `FLOW_DEADLINE_MS` | [`FlowBudget::deadline`] (relative to now) |
    /// | `FLOW_REWRITE_ITERS` | [`FlowBudget::rewrite_iterations`] |
    /// | `FLOW_SAT_CONFLICTS` | [`FlowBudget::sat_conflicts_per_probe`] |
    /// | `FLOW_SAT_CONFLICTS_TOTAL` | [`FlowBudget::sat_conflicts_total`] |
    /// | `FLOW_EQUIV_CONFLICTS` | [`FlowBudget::equiv_conflicts`] |
    /// | `FLOW_SIM_STEPS` | [`FlowBudget::sim_steps`] |
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok()?.trim().parse().ok()
        }
        FlowBudget {
            deadline: match parse::<u64>("FLOW_DEADLINE_MS") {
                Some(ms) => Deadline::after_ms(ms),
                None => Deadline::unbounded(),
            },
            rewrite_iterations: parse("FLOW_REWRITE_ITERS"),
            sat_conflicts_per_probe: parse("FLOW_SAT_CONFLICTS"),
            sat_conflicts_total: parse("FLOW_SAT_CONFLICTS_TOTAL"),
            equiv_conflicts: parse("FLOW_EQUIV_CONFLICTS"),
            sim_steps: parse("FLOW_SIM_STEPS"),
        }
    }

    /// Whether any limit is configured. An unconstrained budget lets the
    /// flow skip the degradation machinery entirely.
    pub fn is_unbounded(&self) -> bool {
        *self == FlowBudget::unbounded()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the rewrite-iteration cap.
    pub fn with_rewrite_iterations(mut self, iterations: usize) -> Self {
        self.rewrite_iterations = Some(iterations);
        self
    }

    /// Sets the per-probe SAT conflict budget.
    pub fn with_sat_conflicts_per_probe(mut self, conflicts: u64) -> Self {
        self.sat_conflicts_per_probe = Some(conflicts);
        self
    }

    /// Sets the cumulative SAT conflict budget for one P&R scan.
    pub fn with_sat_conflicts_total(mut self, conflicts: u64) -> Self {
        self.sat_conflicts_total = Some(conflicts);
        self
    }

    /// Sets the equivalence-miter conflict budget.
    pub fn with_equiv_conflicts(mut self, conflicts: u64) -> Self {
        self.equiv_conflicts = Some(conflicts);
        self
    }

    /// Sets the simulation step budget.
    pub fn with_sim_steps(mut self, steps: u64) -> Self {
        self.sim_steps = Some(steps);
        self
    }
}

/// A step/wall-clock budget for a single bounded scan (used by the SiDB
/// simulators, which count sweep steps rather than SAT conflicts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBudget {
    /// Maximum number of steps; `None` is unlimited.
    pub max_steps: Option<u64>,
    /// Wall-clock cut-off, polled periodically.
    pub deadline: Deadline,
}

impl StepBudget {
    /// No limits.
    pub const fn unbounded() -> Self {
        StepBudget {
            max_steps: None,
            deadline: Deadline::unbounded(),
        }
    }

    /// Whether neither limit is configured.
    pub const fn is_unbounded(&self) -> bool {
        self.max_steps.is_none() && !self.deadline.is_bounded()
    }

    /// Caps the number of steps.
    #[must_use]
    pub const fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the wall-clock cut-off.
    #[must_use]
    pub const fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::unbounded();
        assert!(!d.expired());
        assert!(!d.is_bounded());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.remaining_ms(), None);
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after_ms(0);
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_not_yet_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().expect("bounded") > Duration::from_secs(3000));
    }

    #[test]
    fn record_remaining_feeds_the_ambient_collector() {
        let collector = std::sync::Arc::new(fcn_telemetry::Collector::new("test"));
        fcn_telemetry::with_collector(&collector, || {
            Deadline::unbounded().record_remaining("headroom_ms");
            Deadline::after(Duration::from_secs(3600)).record_remaining("headroom_ms");
        });
        let report = collector.report();
        let recorded = report.root.counters.get("headroom_ms").copied();
        // Unbounded recorded nothing; the bounded deadline recorded its
        // (large) remaining headroom.
        assert!(recorded.is_some_and(|ms| ms > 3_000_000), "{recorded:?}");
        // Without a collector the call is a no-op rather than a panic.
        Deadline::after_ms(5).record_remaining("headroom_ms");
    }

    #[test]
    fn default_budget_is_unbounded() {
        assert!(FlowBudget::default().is_unbounded());
        assert!(FlowBudget::unbounded().is_unbounded());
        assert!(!FlowBudget::unbounded()
            .with_sat_conflicts_total(10)
            .is_unbounded());
    }

    #[test]
    fn builder_sets_fields() {
        let b = FlowBudget::unbounded()
            .with_rewrite_iterations(1)
            .with_sat_conflicts_per_probe(100)
            .with_sat_conflicts_total(500)
            .with_equiv_conflicts(200)
            .with_sim_steps(1000);
        assert_eq!(b.rewrite_iterations, Some(1));
        assert_eq!(b.sat_conflicts_per_probe, Some(100));
        assert_eq!(b.sat_conflicts_total, Some(500));
        assert_eq!(b.equiv_conflicts, Some(200));
        assert_eq!(b.sim_steps, Some(1000));
    }
}
