//! `fcn-server` — the flow as a service (ROADMAP item 1).
//!
//! A long-lived, multi-tenant design server: clients submit
//! [`bestagon_core::FlowRequest`]s into a bounded job queue; a fixed
//! crew of worker threads drains it, each job running the full
//! eight-step flow and answering with its artifacts plus the per-run
//! telemetry report. Three pieces of state are deliberately shared
//! *across* requests, because real workloads resubmit near-identical
//! designs constantly:
//!
//! * one process-wide [`sidb_sim::SimCache`], so step 7 never
//!   re-simulates a charge configuration another job already settled;
//! * a content-addressed result cache keyed by
//!   [`bestagon_core::FlowRequest::fingerprint`] — an identical
//!   circuit+options pair is answered from memory, honestly marked
//!   `cache_hit`;
//! * one warm [`fcn_pnr::SessionPool`] per worker, so repeat netlists
//!   start their SAT scans from learned clauses instead of cold.
//!
//! Admission control never hangs a client: a saturated queue rejects at
//! submit with a typed [`RejectReason`], a job whose deadline expired
//! while queued is rejected at dequeue, and shutdown drains the queue
//! with rejections before the workers exit. Results are deterministic
//! at any worker count — each job runs wholly on one worker, and both
//! the session pool and the simulation cache are pure work
//! optimizations whose presence never changes an artifact byte.
//!
//! Aggregates land in the process-wide [`fcn_telemetry::Registry`]
//! (`server.jobs`, `server.rejected`, `server.cache_hits`, a
//! queue-depth histogram); [`Server::aggregate`] diffs two snapshots to
//! attribute a window. The `fcn-server` binary speaks line-delimited
//! JSON over stdin/stdout — see `main.rs` for the wire format.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bestagon_core::flow::{FlowRequest, FlowResult};
use fcn_budget::Deadline;
use fcn_pnr::SessionPool;
use fcn_telemetry::json::Value;
use fcn_telemetry::{Registry, RegistrySnapshot};
use sidb_sim::SimCache;

/// How the server is sized.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Concurrent flow workers. Results are byte-identical at any
    /// width; width only buys throughput.
    pub workers: usize,
    /// Jobs the queue admits before rejecting with
    /// [`RejectReason::QueueFull`] (in-flight jobs do not count).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
        }
    }
}

impl ServerConfig {
    /// The default sizing: one worker, a 64-job queue.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Reads `SERVER_WORKERS` and `SERVER_QUEUE` from the environment,
    /// keeping the defaults where unset or unparseable.
    pub fn from_env() -> Self {
        fn parse(name: &str) -> Option<usize> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut config = ServerConfig::default();
        if let Some(workers) = parse("SERVER_WORKERS") {
            config.workers = workers;
        }
        if let Some(capacity) = parse("SERVER_QUEUE") {
            config.queue_capacity = capacity;
        }
        config
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// Why the server refused a job instead of running it. Never an error
/// and never a hang: rejection is a first-class, typed verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue already holds `capacity` jobs; resubmit later.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The job's deadline expired while it waited in the queue.
    DeadlineExpired,
    /// The server is shutting down and drains its queue unrun.
    ShuttingDown,
}

impl RejectReason {
    /// Stable machine-readable discriminant (wire-protocol contract).
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::DeadlineExpired => "deadline-expired",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs pending)")
            }
            RejectReason::DeadlineExpired => f.write_str("deadline expired while queued"),
            RejectReason::ShuttingDown => f.write_str("server shutting down"),
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The flow completed; artifacts attached.
    Done,
    /// The flow ran and failed with a typed [`bestagon_core::FlowError`]
    /// (attached as `error`).
    Failed,
    /// The server refused to run the job (see `error.code`).
    Rejected,
}

impl JobStatus {
    /// Stable machine-readable discriminant (wire-protocol contract).
    pub fn code(&self) -> &'static str {
        match self {
            JobStatus::Done => "ok",
            JobStatus::Failed => "error",
            JobStatus::Rejected => "rejected",
        }
    }
}

/// The server's answer to one job.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct JobResponse {
    /// Server-assigned job id (submission order, 1-based).
    pub id: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// Whether the answer was served from the content-addressed result
    /// cache instead of a fresh flow run.
    pub cache_hit: bool,
    /// Exported gate-level Verilog of the optimized network.
    pub verilog: Option<String>,
    /// SiQAD `.sqd` export of the dot-accurate layout (when the library
    /// was applied).
    pub sqd: Option<String>,
    /// Number of graceful-degradation events the run recorded.
    pub degradations: u64,
    /// The per-run telemetry report (span tree as JSON). On a cache
    /// hit, the cold run's report.
    pub report: Option<Value>,
    /// The typed failure ([`bestagon_core::FlowError::to_value`]) or
    /// rejection (`{code, message}`).
    pub error: Option<Value>,
}

impl JobResponse {
    fn rejected(id: u64, reason: &RejectReason) -> Self {
        JobResponse {
            id,
            status: JobStatus::Rejected,
            cache_hit: false,
            verilog: None,
            sqd: None,
            degradations: 0,
            report: None,
            error: Some(Value::Obj(vec![
                ("code".to_owned(), Value::Str(reason.code().to_owned())),
                ("message".to_owned(), Value::Str(reason.to_string())),
            ])),
        }
    }

    /// The response as a JSON object with stable field names (`id`,
    /// `status`, `cache_hit`, then `verilog`/`sqd`/`degradations`/
    /// `report` or `error` as applicable).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_owned(), Value::Num(self.id as f64)),
            (
                "status".to_owned(),
                Value::Str(self.status.code().to_owned()),
            ),
            ("cache_hit".to_owned(), Value::Bool(self.cache_hit)),
        ];
        if let Some(verilog) = &self.verilog {
            fields.push(("verilog".to_owned(), Value::Str(verilog.clone())));
        }
        if let Some(sqd) = &self.sqd {
            fields.push(("sqd".to_owned(), Value::Str(sqd.clone())));
        }
        if self.status == JobStatus::Done {
            fields.push((
                "degradations".to_owned(),
                Value::Num(self.degradations as f64),
            ));
        }
        if let Some(report) = &self.report {
            fields.push(("report".to_owned(), report.clone()));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_owned(), error.clone()));
        }
        Value::Obj(fields)
    }
}

/// A handle to one admitted job; resolves to its [`JobResponse`].
#[derive(Debug)]
pub struct JobTicket {
    id: u64,
    receiver: mpsc::Receiver<JobResponse>,
}

impl JobTicket {
    /// The server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job's response. Every admitted job is answered
    /// — run, failed, deadline-rejected, or shutdown-rejected — so this
    /// never hangs on a live server.
    pub fn wait(self) -> JobResponse {
        self.receiver
            .recv()
            .expect("the server answers every admitted job before its workers exit")
    }
}

/// One queued job.
struct Job {
    id: u64,
    request: FlowRequest,
    deadline: Deadline,
    respond: mpsc::Sender<JobResponse>,
}

/// A finished result's replayable bytes.
#[derive(Clone)]
struct CachedResult {
    verilog: String,
    sqd: Option<String>,
    degradations: u64,
    report: Value,
}

/// State shared between the handle and the workers.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    results: Mutex<HashMap<u64, CachedResult>>,
    sim_cache: SimCache,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The in-process design server. Construct with [`Server::new`];
/// dropping it drains the queue (rejecting unstarted jobs), finishes
/// in-flight jobs, and joins the workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
    next_id: AtomicU64,
    started_at: RegistrySnapshot,
}

impl Server {
    /// Boots `config.workers` worker threads over an empty queue.
    pub fn new(config: ServerConfig) -> Server {
        let config = ServerConfig {
            workers: config.workers.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            sim_cache: SimCache::new(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flow-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a flow worker")
            })
            .collect();
        Server {
            shared,
            workers,
            config,
            next_id: AtomicU64::new(0),
            started_at: Registry::global().snapshot(),
        }
    }

    /// The sizing this server was booted with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Admits a job, or rejects it with a typed reason — immediately,
    /// never blocking on a full queue. The job's deadline is whatever
    /// `request.options.budget.deadline` says; a job still queued when
    /// it expires is rejected at dequeue instead of run.
    pub fn submit(&self, request: FlowRequest) -> Result<JobTicket, RejectReason> {
        let registry = Registry::global();
        let deadline = request.options.budget.deadline;
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.shutdown {
            registry.add_counter("server.rejected", 1);
            return Err(RejectReason::ShuttingDown);
        }
        if queue.jobs.len() >= self.config.queue_capacity {
            registry.add_counter("server.rejected", 1);
            return Err(RejectReason::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (sender, receiver) = mpsc::channel();
        queue.jobs.push_back(Job {
            id,
            request,
            deadline,
            respond: sender,
        });
        registry.record_histogram("server.queue_depth", queue.jobs.len() as u64);
        drop(queue);
        self.shared.available.notify_one();
        Ok(JobTicket { id, receiver })
    }

    /// Everything the process-wide [`Registry`] accumulated since this
    /// server was constructed: `server.*` counters, the queue-depth
    /// histogram, and every per-flow counter the jobs' reports folded
    /// in.
    pub fn aggregate(&self) -> RegistrySnapshot {
        Registry::global().snapshot().diff(&self.started_at)
    }

    /// [`Server::aggregate`] as a JSON object.
    pub fn aggregate_value(&self) -> Value {
        self.aggregate().to_value()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let drained: Vec<Job> = {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
            queue.jobs.drain(..).collect()
        };
        let registry = Registry::global();
        for job in drained {
            registry.add_counter("server.rejected", 1);
            let _ = job
                .respond
                .send(JobResponse::rejected(job.id, &RejectReason::ShuttingDown));
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: a private warm session pool, then block-pop-run until
/// shutdown. Jobs never migrate mid-run, so reuse patterns (and
/// therefore work counters) match the sequential engine's.
fn worker_loop(shared: &Shared) {
    let pool = SessionPool::new();
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        process(shared, &pool, job);
    }
}

/// Runs (or replays, or rejects) one job and answers its ticket.
fn process(shared: &Shared, pool: &SessionPool, job: Job) {
    let registry = Registry::global();
    if job.deadline.expired() {
        registry.add_counter("server.rejected", 1);
        let _ = job.respond.send(JobResponse::rejected(
            job.id,
            &RejectReason::DeadlineExpired,
        ));
        return;
    }

    let key = job.request.fingerprint();
    let cached = shared.results.lock().unwrap().get(&key).cloned();
    if let Some(hit) = cached {
        registry.add_counter("server.jobs", 1);
        registry.add_counter("server.cache_hits", 1);
        let _ = job.respond.send(JobResponse {
            id: job.id,
            status: JobStatus::Done,
            cache_hit: true,
            verilog: Some(hit.verilog),
            sqd: hit.sqd,
            degradations: hit.degradations,
            report: Some(hit.report),
            error: None,
        });
        return;
    }

    // Cold: run the flow with the shared engines installed — unless the
    // client pinned its own, which always wins.
    let mut request = job.request;
    if request.options.sim_cache.is_none() {
        request.options.sim_cache = Some(shared.sim_cache.clone());
    }
    if request.options.session_pool.is_none() {
        request.options.session_pool = Some(pool.clone());
    }
    let outcome = request.execute();
    registry.add_counter("server.jobs", 1);
    let response = match outcome {
        Ok(result) => {
            let response = done_response(job.id, &result);
            // Only pristine runs are cacheable: degradations depend on
            // wall-clock pressure, which the fingerprint cannot see.
            if result.degradations.is_empty() {
                shared.results.lock().unwrap().insert(
                    key,
                    CachedResult {
                        verilog: response.verilog.clone().expect("done responses export"),
                        sqd: response.sqd.clone(),
                        degradations: 0,
                        report: response.report.clone().expect("done responses report"),
                    },
                );
            }
            response
        }
        Err(error) => {
            registry.add_counter("server.failed", 1);
            JobResponse {
                id: job.id,
                status: JobStatus::Failed,
                cache_hit: false,
                verilog: None,
                sqd: None,
                degradations: 0,
                report: None,
                error: Some(error.to_value()),
            }
        }
    };
    let _ = job.respond.send(response);
}

fn done_response(id: u64, result: &FlowResult) -> JobResponse {
    JobResponse {
        id,
        status: JobStatus::Done,
        cache_hit: false,
        verilog: Some(result.to_verilog()),
        sqd: result.to_sqd(),
        degradations: result.degradations.len() as u64,
        report: Some(result.report.to_value()),
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestagon_core::flow::{FlowOptions, PnrMethod};

    const AND2: &str = "module and2 (a, b, f); input a, b; output f; assign f = a & b; endmodule";

    fn quick_options() -> FlowOptions {
        FlowOptions::new()
            .with_pnr(PnrMethod::Exact { max_area: 60 })
            .without_library()
    }

    #[test]
    fn a_job_runs_and_answers_with_artifacts() {
        let server = Server::new(ServerConfig::new());
        let ticket = server
            .submit(FlowRequest::verilog(AND2).with_options(quick_options()))
            .expect("admitted");
        let response = ticket.wait();
        assert_eq!(response.status, JobStatus::Done);
        assert!(!response.cache_hit);
        assert!(response.verilog.as_deref().unwrap().contains("and2"));
        assert!(response.report.is_some());
    }

    #[test]
    fn identical_resubmission_is_a_cache_hit_with_identical_bytes() {
        let server = Server::new(ServerConfig::new());
        let request = FlowRequest::verilog(AND2).with_options(quick_options());
        let before = server.aggregate();
        let cold = server.submit(request.clone()).expect("admitted").wait();
        let warm = server.submit(request).expect("admitted").wait();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit, "second identical request replays");
        assert_eq!(cold.verilog, warm.verilog);
        assert_eq!(cold.sqd, warm.sqd);
        let window = server.aggregate().diff(&before);
        assert_eq!(window.counters.get("server.jobs"), Some(&2));
        assert_eq!(window.counters.get("server.cache_hits"), Some(&1));
    }

    #[test]
    fn a_full_queue_rejects_with_a_typed_reason() {
        // Zero workers are clamped to one; saturate it with a slow-ish
        // job, then overflow the one-slot queue.
        let server = Server::new(ServerConfig::new().with_queue_capacity(1));
        let burst: Vec<_> = (0..10)
            .map(|_| server.submit(FlowRequest::verilog(AND2).with_options(quick_options())))
            .collect();
        let rejected: Vec<_> = burst.into_iter().filter_map(Result::err).collect();
        // With one worker and a one-deep queue, at most two of the ten
        // are ever admitted-or-running at once; the burst must see
        // queue-full rejections, all typed.
        assert!(!rejected.is_empty(), "burst overflows the one-slot queue");
        assert!(rejected
            .iter()
            .all(|r| matches!(r, RejectReason::QueueFull { capacity: 1 })));
        assert_eq!(rejected[0].code(), "queue-full");
    }

    #[test]
    fn an_expired_deadline_is_rejected_at_dequeue_not_run() {
        let server = Server::new(ServerConfig::new());
        let request = FlowRequest::verilog(AND2).with_options(quick_options().with_deadline_ms(0));
        let response = server.submit(request).expect("admitted").wait();
        assert_eq!(response.status, JobStatus::Rejected);
        assert_eq!(
            response
                .error
                .as_ref()
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("deadline-expired")
        );
    }

    #[test]
    fn a_failing_flow_answers_with_the_typed_error() {
        let server = Server::new(ServerConfig::new());
        let response = server
            .submit(FlowRequest::verilog("module broken ("))
            .expect("admitted")
            .wait();
        assert_eq!(response.status, JobStatus::Failed);
        assert_eq!(
            response
                .error
                .as_ref()
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("parse")
        );
    }

    #[test]
    fn shutdown_rejects_queued_jobs_instead_of_hanging() {
        let server = Server::new(ServerConfig::new().with_queue_capacity(8));
        // A small pile-up behind one worker, then immediate shutdown.
        let tickets: Vec<_> = (0..4)
            .filter_map(|_| {
                server
                    .submit(FlowRequest::verilog(AND2).with_options(quick_options()))
                    .ok()
            })
            .collect();
        drop(server);
        for ticket in tickets {
            let response = ticket.wait();
            match response.status {
                JobStatus::Done => {}
                JobStatus::Rejected => {
                    assert_eq!(
                        response
                            .error
                            .as_ref()
                            .and_then(|e| e.get("code"))
                            .and_then(Value::as_str),
                        Some("shutting-down")
                    );
                }
                JobStatus::Failed => panic!("shutdown must not fail jobs"),
            }
        }
    }
}
