//! `fcn-server` binary: line-delimited JSON over stdin/stdout.
//!
//! Each input line is one job request object:
//!
//! ```json
//! {"id": 7, "format": "verilog", "source": "module ...", "deadline_ms": 5000,
//!  "pnr": "exact", "max_area": 60, "verify": true, "apply_library": false}
//! ```
//!
//! * `format` — `"verilog"` or `"blif"` (required, with `source`).
//! * `id` — optional client tag, echoed back verbatim in the response.
//! * `deadline_ms` — optional wall-clock deadline, ticking from parse.
//! * `pnr` — `"exact"`, `"heuristic"`, or `"exact-fallback"` (with
//!   optional `max_area`); defaults to the flow's default engine.
//! * `verify` / `apply_library` / `tile_validation` — optional booleans
//!   overriding the flow defaults (on / on / off).
//!
//! Malformed lines are answered with a `status: "rejected"` line
//! carrying a `protocol` error code — the server never dies on bad
//! input. After stdin closes, responses are printed one JSON object per
//! line in submission order, followed by a final
//! `{"aggregate": {...}}` line with the windowed `server.*` counters
//! and queue-depth histogram. Worker count and queue bound come from
//! `SERVER_WORKERS` and `SERVER_QUEUE`.

use std::io::{BufRead, Write};

use bestagon_core::flow::{FlowOptions, FlowRequest, PnrMethod};
use fcn_server::{JobTicket, Server, ServerConfig};
use fcn_telemetry::json::{self, Value};

/// One stdin line's fate: a live ticket, or an answer already decided
/// (protocol error, admission rejection).
enum Pending {
    Ticket {
        ticket: JobTicket,
        client_id: Option<Value>,
    },
    Immediate(Value),
}

fn protocol_error(client_id: Option<&Value>, message: &str) -> Value {
    let mut fields = Vec::new();
    if let Some(id) = client_id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.push(("status".to_owned(), Value::Str("rejected".to_owned())));
    fields.push(("cache_hit".to_owned(), Value::Bool(false)));
    fields.push((
        "error".to_owned(),
        Value::Obj(vec![
            ("code".to_owned(), Value::Str("protocol".to_owned())),
            ("message".to_owned(), Value::Str(message.to_owned())),
        ]),
    ));
    Value::Obj(fields)
}

/// Parses one request line into a [`FlowRequest`] (plus the client's
/// tag), or a human-readable protocol complaint.
fn parse_request(line: &str) -> Result<(FlowRequest, Option<Value>), (Option<Value>, String)> {
    let value = json::parse(line).map_err(|e| (None, format!("malformed JSON: {e}")))?;
    let client_id = value.get("id").cloned();
    let fail = |message: String| (client_id.clone(), message);

    let format = value
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing string field \"format\"".to_owned()))?;
    let source = value
        .get("source")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing string field \"source\"".to_owned()))?;
    let mut request = match format {
        "verilog" => FlowRequest::verilog(source),
        "blif" => FlowRequest::blif(source),
        other => return Err(fail(format!("unknown format {other:?}"))),
    };

    let mut options = FlowOptions::new();
    let max_area = value
        .get("max_area")
        .and_then(Value::as_f64)
        .map(|a| a.max(0.0) as u64);
    match value.get("pnr").and_then(Value::as_str) {
        None => {}
        Some("exact") => {
            options = options.with_pnr(PnrMethod::Exact {
                max_area: max_area.unwrap_or(100),
            });
        }
        Some("heuristic") => options = options.with_pnr(PnrMethod::Heuristic),
        Some("exact-fallback") => {
            options = options.with_pnr(PnrMethod::ExactWithFallback {
                max_area: max_area.unwrap_or(100),
            });
        }
        Some(other) => return Err(fail(format!("unknown pnr engine {other:?}"))),
    }
    if value.get("verify").and_then(Value::as_bool) == Some(false) {
        options = options.without_verify();
    }
    if value.get("apply_library").and_then(Value::as_bool) == Some(false) {
        options = options.without_library();
    }
    if value.get("tile_validation").and_then(Value::as_bool) == Some(true) {
        options = options.with_tile_validation();
    }
    if let Some(ms) = value.get("deadline_ms").and_then(Value::as_f64) {
        options = options.with_deadline_ms(ms.max(0.0) as u64);
    }
    request = request.with_options(options);
    Ok((request, client_id))
}

/// Stamps the client's tag over the server-assigned numeric id.
fn with_client_id(mut response: Value, client_id: Option<Value>) -> Value {
    if let (Some(tag), Value::Obj(fields)) = (client_id, &mut response) {
        match fields.iter_mut().find(|(k, _)| k == "id") {
            Some(slot) => slot.1 = tag,
            None => fields.insert(0, ("id".to_owned(), tag)),
        }
    }
    response
}

fn main() {
    let server = Server::new(ServerConfig::from_env());
    let stdin = std::io::stdin();
    let mut pending = Vec::new();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err((client_id, message)) => {
                pending.push(Pending::Immediate(protocol_error(
                    client_id.as_ref(),
                    &message,
                )));
            }
            Ok((request, client_id)) => match server.submit(request) {
                Ok(ticket) => pending.push(Pending::Ticket { ticket, client_id }),
                Err(reason) => {
                    let mut fields = Vec::new();
                    if let Some(id) = &client_id {
                        fields.push(("id".to_owned(), id.clone()));
                    }
                    fields.push(("status".to_owned(), Value::Str("rejected".to_owned())));
                    fields.push(("cache_hit".to_owned(), Value::Bool(false)));
                    fields.push((
                        "error".to_owned(),
                        Value::Obj(vec![
                            ("code".to_owned(), Value::Str(reason.code().to_owned())),
                            ("message".to_owned(), Value::Str(reason.to_string())),
                        ]),
                    ));
                    pending.push(Pending::Immediate(Value::Obj(fields)));
                }
            },
        }
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for entry in pending {
        let value = match entry {
            Pending::Immediate(value) => value,
            Pending::Ticket { ticket, client_id } => {
                with_client_id(ticket.wait().to_value(), client_id)
            }
        };
        let _ = writeln!(out, "{}", value.serialize());
    }
    let aggregate = Value::Obj(vec![("aggregate".to_owned(), server.aggregate_value())]);
    let _ = writeln!(out, "{}", aggregate.serialize());
}
