//! Branch-and-bound exact ground-state search ("QuickExact"-style).
//!
//! The plain exhaustive sweep ([`crate::exgs`]) visits all `2^n`
//! configurations; for the structured layouts of BDL logic that is
//! enormously wasteful, because population stability kills almost every
//! branch early. This engine performs a depth-first search over the sites
//! (ordered by surface position) and prunes with two monotonicity
//! arguments — assigning further sites can only *lower* local potentials,
//! so
//!
//! * an already-assigned **negative** site whose potential has dropped
//!   below `μ−` can never recover → prune;
//! * an already-assigned **neutral** site whose potential cannot reach
//!   `μ−` even if every remaining site were negative → prune.
//!
//! For gate-sized BDL structures this reduces the effective search to a
//! few hundred branches, making exact validation cheap enough to sit in
//! the inner loop of the automated gate designer.
//!
//! Under an interaction cutoff the layout may decompose into independent
//! clusters; each cluster is an independent partition unit solved across
//! the engine's worker pool, and the per-cluster spectra are merged
//! best-first. The entry points here are deprecated wrappers; new code
//! uses [`crate::engine::simulate_with`] with
//! [`SimEngine::QuickExact`](crate::engine::SimEngine).

use crate::charge::{ChargeConfiguration, ChargeState, InteractionMatrix};
use crate::engine::{self, SimEngine, SimParams};
use crate::exgs::SimulatedState;
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;

/// Exact ground state via branch and bound. Equivalent to the
/// exhaustive sweep but typically orders of magnitude faster on
/// BDL-structured layouts.
///
/// # Panics
///
/// Panics if `params.three_state` is set.
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::QuickExact`"
)]
pub fn quick_exact_ground_state(
    layout: &SidbLayout,
    params: &PhysicalParams,
) -> Option<ChargeConfiguration> {
    engine::simulate_with(
        layout,
        &SimParams::new(*params).with_engine(SimEngine::QuickExact),
    )
    .states
    .pop()
    .map(|s| s.config)
}

/// The `k` lowest-free-energy valid configurations via branch and bound,
/// sorted ascending by free energy.
///
/// # Panics
///
/// Panics if `params.three_state` is set.
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::QuickExact`"
)]
pub fn quick_exact_low_energy(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
) -> Vec<SimulatedState> {
    engine::simulate_with(
        layout,
        &SimParams::new(*params)
            .with_engine(SimEngine::QuickExact)
            .with_k(k),
    )
    .states
}

/// One branch-and-bound run's outcome (for [`crate::engine`]).
pub(crate) struct QeRun {
    pub states: Vec<SimulatedState>,
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Subtrees cut by the bound and viability arguments.
    pub prunes: u64,
    /// Partition units recomputed after a worker fault.
    pub recovered: u64,
}

/// The engine core: exact k-best search, decomposing into connected
/// clusters of the interaction graph and solving them across the worker
/// pool. `matrix`, when given, must be the interaction matrix of
/// `layout` under `params` (shared by gate validation across input
/// patterns).
pub(crate) fn low_energy_core(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
    threads: usize,
    matrix: Option<&InteractionMatrix>,
) -> QeRun {
    assert!(
        !params.three_state,
        "quick-exact implements the two-state model"
    );
    let n = layout.num_sites();
    if n == 0 || k == 0 {
        return QeRun {
            states: Vec::new(),
            nodes: 0,
            prunes: 0,
            recovered: 0,
        };
    }
    let owned;
    let m = match matrix {
        Some(m) if m.num_sites() == n => m,
        _ => {
            owned = InteractionMatrix::new(layout, params);
            &owned
        }
    };

    // Under an interaction cutoff the layout may decompose into
    // independent clusters; solve each exactly and combine (energies add,
    // validity is per-cluster).
    let components = connected_components(m);
    if components.len() == 1 {
        let (states, nodes, prunes) = solve_connected(layout, params, k, Some(m));
        return QeRun {
            states,
            nodes,
            prunes,
            recovered: 0,
        };
    }
    let run = engine::run_partitioned(components.len(), threads, |ci| {
        let sub = SidbLayout::from_sites(components[ci].iter().map(|&i| layout.sites()[i]));
        if m.has_external() {
            // External potentials are per-site, so they restrict to the
            // component without coupling clusters together.
            let ext: Vec<f64> = components[ci].iter().map(|&i| m.external(i)).collect();
            let sub_m = InteractionMatrix::new(&sub, params).with_external(ext);
            solve_connected(&sub, params, k, Some(&sub_m))
        } else {
            solve_connected(&sub, params, k, None)
        }
    });
    let mut nodes = 0u64;
    let mut prunes = 0u64;
    let mut per_cluster: Vec<Vec<SimulatedState>> = Vec::with_capacity(components.len());
    for (states, n_nodes, n_prunes) in run.results {
        nodes += n_nodes;
        prunes += n_prunes;
        if states.is_empty() {
            return QeRun {
                states: Vec::new(), // a cluster with no valid state (n=0 never)
                nodes,
                prunes,
                recovered: run.recovered,
            };
        }
        per_cluster.push(states);
    }
    QeRun {
        states: combine_clusters(layout, k, &components, &per_cluster),
        nodes,
        prunes,
        recovered: run.recovered,
    }
}

/// Exact k-best search over one connected cluster. Returns the sorted
/// states plus (nodes expanded, subtrees pruned).
fn solve_connected(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
    matrix: Option<&InteractionMatrix>,
) -> (Vec<SimulatedState>, u64, u64) {
    let n = layout.num_sites();
    let owned;
    let m = match matrix {
        Some(m) => m,
        None => {
            owned = InteractionMatrix::new(layout, params);
            &owned
        }
    };

    // Decide physically close sites together — that is what makes the
    // bounds bite. A Prim-style proximity order (grow a connected blob,
    // always appending the unvisited site closest to the blob) keeps the
    // search local even for layouts with several independent chains,
    // where a naive row-major order would multiply their branchings.
    let order: Vec<usize> = {
        let start = (0..n)
            .min_by_key(|&i| {
                let s = layout.sites()[i];
                (s.y, s.x, s.b)
            })
            .expect("n > 0");
        let mut order = vec![start];
        let mut dist: Vec<f64> = (0..n)
            .map(|i| {
                if i == start {
                    f64::INFINITY
                } else {
                    layout.distance_angstrom(start, i)
                }
            })
            .collect();
        let mut visited = vec![false; n];
        visited[start] = true;
        for _ in 1..n {
            let next = (0..n)
                .filter(|&i| !visited[i])
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("finite"))
                .expect("unvisited site remains");
            visited[next] = true;
            order.push(next);
            for i in 0..n {
                if !visited[i] {
                    dist[i] = dist[i].min(layout.distance_angstrom(next, i));
                }
            }
        }
        order
    };

    // rem[i][a] = Σ_{t ≥ a} v(i, order[t]): the maximum additional
    // (negative) potential site i can still receive from undecided sites.
    let mut rem = vec![0.0f64; n * (n + 1)];
    for i in 0..n {
        for a in (0..n).rev() {
            let j = order[a];
            let v = if i == j { 0.0 } else { m.interaction(i, j) };
            rem[i * (n + 1) + a] = rem[i * (n + 1) + a + 1] + v;
        }
    }

    struct Search<'a> {
        m: &'a InteractionMatrix,
        mu: f64,
        order: &'a [usize],
        rem: &'a [f64],
        n: usize,
        states: Vec<ChargeState>,
        potentials: Vec<f64>,
        energy: f64,
        num_negative: usize,
        best: Vec<SimulatedState>,
        k: usize,
        nodes_left: u64,
        bound_prunes: u64,
        viability_prunes: u64,
    }

    impl Search<'_> {
        fn remaining(&self, i: usize, depth: usize) -> f64 {
            self.rem[i * (self.n + 1) + depth]
        }

        /// Branch-and-bound cut: a lower bound on the free energy of any
        /// completion of the current partial assignment. Adding a negative
        /// at undecided site `j` changes `F` by at least `μ − V_j`
        /// (interactions among added electrons only increase `F`), so
        /// undecided sites contribute at least `min(0, μ − V_j)` each.
        fn free_energy_lower_bound(&self, depth: usize) -> f64 {
            let mut lb = self.energy + self.mu * self.num_negative as f64;
            for &j in &self.order[depth..] {
                let gain = self.mu - self.potentials[j];
                if gain < 0.0 {
                    lb += gain;
                }
            }
            lb
        }

        /// The pruning threshold: the k-th best free energy found so far.
        fn bound(&self) -> f64 {
            if self.best.len() == self.k {
                self.best.last().expect("k > 0").free_energy + 1e-12
            } else {
                f64::INFINITY
            }
        }

        /// Inserts a valid state into the k-best list (deduplicated, so
        /// the seeding incumbent is not double-counted when the search
        /// rediscovers it).
        fn record(&mut self, state: SimulatedState) {
            if self.best.iter().any(|s| s.config == state.config) {
                return;
            }
            engine::insert_state(&mut self.best, state, self.k);
        }

        /// Checks whether the partial assignment can still extend to a
        /// population-stable configuration.
        fn viable(&self, depth: usize) -> bool {
            const EPS: f64 = 1e-9;
            for &i in &self.order[..depth] {
                match self.states[i] {
                    ChargeState::Negative => {
                        if self.potentials[i] < self.mu - EPS {
                            return false;
                        }
                    }
                    ChargeState::Neutral => {
                        if self.potentials[i] - self.remaining(i, depth) > self.mu + EPS {
                            return false;
                        }
                    }
                    ChargeState::Positive => unreachable!("two-state search"),
                }
            }
            true
        }

        fn recurse(&mut self, depth: usize) {
            const EPS: f64 = 1e-9;
            if self.nodes_left == 0 {
                // Budget exhausted: return the best states found so far
                // (the greedy incumbent guarantees at least one valid
                // configuration). Keeps adversarial instances bounded.
                return;
            }
            self.nodes_left -= 1;
            if self.free_energy_lower_bound(depth) > self.bound() {
                self.bound_prunes += 1;
                return;
            }
            if depth == self.n {
                let config = ChargeConfiguration::from_states(self.states.clone());
                if !config.is_configuration_stable(self.m) {
                    return;
                }
                let free = self.energy + self.mu * self.num_negative as f64;
                self.record(SimulatedState {
                    config,
                    electrostatic_energy: self.energy,
                    free_energy: free,
                });
                return;
            }
            let site = self.order[depth];
            // Branch 1: negative (viable only if the site's potential can
            // stay above μ−, i.e. is above it right now).
            if self.potentials[site] >= self.mu - EPS {
                self.states[site] = ChargeState::Negative;
                self.energy -= self.potentials[site];
                self.num_negative += 1;
                for j in 0..self.n {
                    if j != site {
                        self.potentials[j] -= self.m.interaction(site, j);
                    }
                }
                if self.viable(depth + 1) {
                    self.recurse(depth + 1);
                } else {
                    self.viability_prunes += 1;
                }
                for j in 0..self.n {
                    if j != site {
                        self.potentials[j] += self.m.interaction(site, j);
                    }
                }
                self.num_negative -= 1;
                self.energy += self.potentials[site];
            }
            // Branch 2: neutral (viable only if remaining sites can still
            // push the potential below μ−).
            if self.potentials[site] - self.remaining(site, depth + 1) <= self.mu + EPS {
                self.states[site] = ChargeState::Neutral;
                if self.viable(depth + 1) {
                    self.recurse(depth + 1);
                } else {
                    self.viability_prunes += 1;
                }
            }
            self.states[site] = ChargeState::Neutral;
        }
    }

    const NODE_BUDGET: u64 = 20_000_000;
    let mut search = Search {
        m,
        mu: params.mu_minus,
        order: &order,
        rem: &rem,
        n,
        states: vec![ChargeState::Neutral; n],
        potentials: match m.external_slice() {
            Some(ext) => ext.to_vec(),
            None => vec![0.0; n],
        },
        energy: 0.0,
        num_negative: 0,
        best: Vec::new(),
        k,
        nodes_left: NODE_BUDGET,
        bound_prunes: 0,
        viability_prunes: 0,
    };
    // Seed the incumbent with a greedy descent: a local minimum of the
    // free energy under single flips and hops is exactly a physically
    // valid configuration, giving the branch-and-bound a strong initial
    // bound that usually *is* the ground state.
    let incumbent = greedy_descent(m, params, n);
    search.record(SimulatedState {
        electrostatic_energy: incumbent.electrostatic_energy(m),
        free_energy: incumbent.free_energy(m),
        config: incumbent,
    });
    search.recurse(0);
    (
        search.best,
        NODE_BUDGET - search.nodes_left,
        search.bound_prunes + search.viability_prunes,
    )
}

/// Connected components of the (possibly cutoff) interaction graph.
fn connected_components(m: &InteractionMatrix) -> Vec<Vec<usize>> {
    let n = m.num_sites();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        component[start] = count;
        while let Some(i) = stack.pop() {
            for (j, c) in component.iter_mut().enumerate() {
                if *c == usize::MAX && m.interaction(i, j) > 0.0 {
                    *c = count;
                    stack.push(j);
                }
            }
        }
        count += 1;
    }
    let mut groups = vec![Vec::new(); count];
    for (i, &c) in component.iter().enumerate() {
        groups[c].push(i);
    }
    groups
}

/// Combines per-cluster k-best lists into global k-best states by
/// best-first enumeration of index tuples (free energies add across
/// clusters). Cluster counts are small (k per cluster), so a bounded
/// product is fine.
fn combine_clusters(
    layout: &SidbLayout,
    k: usize,
    components: &[Vec<usize>],
    per_cluster: &[Vec<SimulatedState>],
) -> Vec<SimulatedState> {
    let mut combos: Vec<(f64, Vec<usize>)> = vec![(
        per_cluster.iter().map(|c| c[0].free_energy).sum(),
        vec![0; per_cluster.len()],
    )];
    let mut results: Vec<SimulatedState> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    seen.insert(combos[0].1.clone());
    while results.len() < k && !combos.is_empty() {
        // Pop the lowest-energy combination.
        let best_idx = combos
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (free, choice) = combos.swap_remove(best_idx);
        // Materialize the combined configuration.
        let mut config = ChargeConfiguration::neutral(layout.num_sites());
        let mut energy = 0.0;
        for (ci, comp) in components.iter().enumerate() {
            let state = &per_cluster[ci][choice[ci]];
            energy += state.electrostatic_energy;
            for (local, &global) in comp.iter().enumerate() {
                config.set_state(global, state.config.state(local));
            }
        }
        results.push(SimulatedState {
            config,
            electrostatic_energy: energy,
            free_energy: free,
        });
        // Successors: advance one cluster's index.
        for ci in 0..per_cluster.len() {
            if choice[ci] + 1 < per_cluster[ci].len() {
                let mut next = choice.clone();
                next[ci] += 1;
                if seen.insert(next.clone()) {
                    let f = free - per_cluster[ci][choice[ci]].free_energy
                        + per_cluster[ci][next[ci]].free_energy;
                    combos.push((f, next));
                }
            }
        }
    }
    results
}

/// Greedy descent from the all-neutral configuration to a local minimum
/// of the grand-potential free energy (= a physically valid state).
fn greedy_descent(m: &InteractionMatrix, params: &PhysicalParams, n: usize) -> ChargeConfiguration {
    const EPS: f64 = 1e-12;
    let mut config = ChargeConfiguration::neutral(n);
    let mut potentials = match m.external_slice() {
        Some(ext) => ext.to_vec(),
        None => vec![0.0f64; n],
    };
    let mu = params.mu_minus;
    loop {
        let mut improved = false;
        for i in 0..n {
            let delta = match config.state(i) {
                ChargeState::Neutral => mu - potentials[i],
                ChargeState::Negative => potentials[i] - mu,
                ChargeState::Positive => unreachable!("two-state descent"),
            };
            if delta < -EPS {
                let dn = if config.state(i) == ChargeState::Neutral {
                    -1.0
                } else {
                    1.0
                };
                config.set_state(
                    i,
                    if dn < 0.0 {
                        ChargeState::Negative
                    } else {
                        ChargeState::Neutral
                    },
                );
                for (j, p) in potentials.iter_mut().enumerate() {
                    if j != i {
                        *p += dn * m.interaction(i, j);
                    }
                }
                improved = true;
            }
        }
        for i in 0..n {
            if config.state(i) != ChargeState::Negative {
                continue;
            }
            for j in 0..n {
                if config.state(j) != ChargeState::Neutral {
                    continue;
                }
                if potentials[i] - potentials[j] - m.interaction(i, j) < -EPS {
                    config.set_state(i, ChargeState::Neutral);
                    config.set_state(j, ChargeState::Negative);
                    for (t, p) in potentials.iter_mut().enumerate() {
                        if t != i {
                            *p += m.interaction(i, t);
                        }
                        if t != j {
                            *p -= m.interaction(j, t);
                        }
                    }
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return config;
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::exgs::exhaustive_low_energy;

    fn random_layout(seed: u64, n: usize) -> SidbLayout {
        let mut s = seed;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut layout = SidbLayout::new();
        while layout.num_sites() < n {
            let x = (rand() % 12) as i32;
            let y = (rand() % 12) as i32;
            let b = (rand() % 2) as u8;
            layout.add_site((x, y, b));
        }
        layout
    }

    #[test]
    fn agrees_with_gray_code_sweep_on_random_layouts() {
        let params = PhysicalParams::default();
        for seed in 1..12u64 {
            let layout = random_layout(seed * 7919, 8);
            let slow = exhaustive_low_energy(&layout, &params, 3);
            let fast = quick_exact_low_energy(&layout, &params, 3);
            assert_eq!(slow.len(), fast.len(), "seed {seed}");
            for (a, b) in slow.iter().zip(&fast) {
                assert!(
                    (a.free_energy - b.free_energy).abs() < 1e-9,
                    "seed {seed}: {} vs {}",
                    a.free_energy,
                    b.free_energy
                );
            }
        }
    }

    #[test]
    fn agrees_on_bdl_wire() {
        let params = PhysicalParams::default();
        let mut layout = SidbLayout::new();
        for k in 0..4 {
            layout.add_site((0, 4 * k, 0));
            layout.add_site((0, 4 * k + 1, 0));
        }
        layout.add_site((0, -3, 0));
        let slow = exhaustive_low_energy(&layout, &params, 1);
        let fast = quick_exact_low_energy(&layout, &params, 1);
        assert_eq!(slow[0].config, fast[0].config);
    }

    #[test]
    fn handles_single_site() {
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let gs = quick_exact_ground_state(&layout, &PhysicalParams::default()).expect("ok");
        assert_eq!(gs.state(0), ChargeState::Negative);
    }

    #[test]
    fn scales_to_gate_sized_layouts() {
        // 24 sites: a 12-pair chain — far beyond comfortable 2^24 sweeps,
        // instant with branch and bound.
        let params = PhysicalParams::default();
        let mut layout = SidbLayout::new();
        for k in 0..12 {
            layout.add_site((0, 4 * k, 0));
            layout.add_site((0, 4 * k + 1, 0));
        }
        let gs = quick_exact_ground_state(&layout, &params).expect("ok");
        let m = InteractionMatrix::new(&layout, &params);
        assert!(gs.is_physically_valid(&m));
        // Every pair holds at least one electron.
        for k in 0..12usize {
            let a = layout.index_of((0, 4 * k as i32, 0)).expect("site");
            let b = layout.index_of((0, 4 * k as i32 + 1, 0)).expect("site");
            assert!(
                gs.state(a) == ChargeState::Negative || gs.state(b) == ChargeState::Negative,
                "pair {k} lost its electron"
            );
        }
    }

    #[test]
    fn empty_layout() {
        assert!(quick_exact_ground_state(&SidbLayout::new(), &PhysicalParams::default()).is_none());
    }

    #[test]
    fn clustered_layouts_agree_across_thread_counts() {
        // A 2 meV cutoff decomposes three far-apart pairs into clusters;
        // the component partition must merge identically at any width.
        let params = PhysicalParams::default().with_cutoff(0.002);
        let mut layout = SidbLayout::new();
        for c in 0..3 {
            layout.add_site((40 * c, 0, 0));
            layout.add_site((40 * c + 2, 0, 0));
        }
        let serial = low_energy_core(&layout, &params, 4, 1, None);
        let wide = low_energy_core(&layout, &params, 4, 4, None);
        assert_eq!(serial.states, wide.states);
        assert!(!serial.states.is_empty());
        assert_eq!(serial.nodes, wide.nodes);
    }
}
