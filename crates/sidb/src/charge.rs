//! Charge configurations and their stability.
//!
//! A *charge configuration* assigns each SiDB of a layout a charge state.
//! A configuration is *physically valid* — i.e. a metastable state the
//! surface can actually settle into — when it satisfies
//!
//! * **population stability**: each site's charge state is consistent
//!   with its local potential relative to the transition levels, and
//! * **configuration stability**: no single electron hop to another site
//!   lowers the total energy.
//!
//! These are the validity criteria of the SiQAD physics engine the paper
//! simulates its gates with.

use crate::layout::SidbLayout;
use crate::model::PhysicalParams;

/// The charge state of a single SiDB (0, 1, or 2 excess electrons ↔
/// positive, neutral, negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChargeState {
    /// Two electrons: net charge −e.
    Negative,
    /// One electron: neutral.
    #[default]
    Neutral,
    /// Zero electrons: net charge +e.
    Positive,
}

impl ChargeState {
    /// Net charge in units of the elementary charge.
    pub const fn charge_number(self) -> i8 {
        match self {
            ChargeState::Negative => -1,
            ChargeState::Neutral => 0,
            ChargeState::Positive => 1,
        }
    }
}

impl core::fmt::Display for ChargeState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ChargeState::Negative => "−",
            ChargeState::Neutral => "0",
            ChargeState::Positive => "+",
        })
    }
}

/// Pre-computed pairwise interactions of a layout under fixed parameters.
///
/// Building this once and sharing it across configuration evaluations is
/// what makes exhaustive search and annealing affordable.
#[derive(Debug, Clone)]
pub struct InteractionMatrix {
    n: usize,
    /// Row-major `n × n`, diagonal zero, eV.
    v: Vec<f64>,
    /// Per-site external potential (eV), e.g. from surface defects.
    /// Empty on the pristine path — every engine gates its external
    /// arithmetic on [`InteractionMatrix::has_external`], so a pristine
    /// matrix executes bit-identical code to before the field existed.
    ext: Vec<f64>,
    params: PhysicalParams,
}

impl InteractionMatrix {
    /// Computes all pairwise screened-Coulomb interactions.
    pub fn new(layout: &SidbLayout, params: &PhysicalParams) -> Self {
        let n = layout.num_sites();
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut e = params.interaction_ev(layout.distance_angstrom(i, j));
                if e < params.interaction_cutoff_ev {
                    e = 0.0;
                }
                v[i * n + j] = e;
                v[j * n + i] = e;
            }
        }
        InteractionMatrix {
            n,
            v,
            ext: Vec::new(),
            params: *params,
        }
    }

    /// Attaches a per-site external potential (eV) — typically
    /// [`crate::defects::DefectMap::external_potentials`]. The energy
    /// model becomes `E = Σ_{i<j} v_ij·n_i·n_j + Σ_i ext_i·n_i` and the
    /// local potential `V_i = ext_i + Σ_j v_ij·n_j`; every engine and
    /// stability check honors the offsets. An all-zero vector is
    /// dropped, keeping the matrix on the pristine fast path.
    ///
    /// # Panics
    ///
    /// Panics if `ext.len()` differs from the number of sites.
    pub fn with_external(mut self, ext: Vec<f64>) -> Self {
        assert_eq!(ext.len(), self.n, "external potential length mismatch");
        if ext.iter().any(|&e| e != 0.0) {
            self.ext = ext;
        } else {
            self.ext.clear();
        }
        self
    }

    /// True when an external potential is attached.
    #[inline]
    pub fn has_external(&self) -> bool {
        !self.ext.is_empty()
    }

    /// The external potential at site `i`, eV (0 on the pristine path).
    #[inline]
    pub fn external(&self, i: usize) -> f64 {
        if self.ext.is_empty() {
            0.0
        } else {
            self.ext[i]
        }
    }

    /// The external potentials of all sites, or `None` on the pristine
    /// path.
    pub fn external_slice(&self) -> Option<&[f64]> {
        if self.ext.is_empty() {
            None
        } else {
            Some(&self.ext)
        }
    }

    /// Builds the matrix of `layout` by reusing every interaction whose
    /// two sites both appear in `base_layout` (whose matrix `base` is),
    /// computing only the pairs that involve new sites.
    ///
    /// Gate validation simulates the same body under `2^k` input
    /// patterns that differ only in a handful of perturber dots; sharing
    /// the body-to-body block across patterns removes the dominant
    /// O(n²) rebuild per pattern. The reused values are the stored ones,
    /// so the result is bit-identical to [`InteractionMatrix::new`].
    ///
    /// # Panics
    ///
    /// Panics if `base` was not built from `base_layout` with `params`,
    /// or carries an external potential (external offsets are per-site
    /// and do not transfer across layouts — re-attach them on the
    /// result with [`InteractionMatrix::with_external`]).
    pub fn extended(
        base: &InteractionMatrix,
        base_layout: &SidbLayout,
        layout: &SidbLayout,
        params: &PhysicalParams,
    ) -> Self {
        assert_eq!(base.n, base_layout.num_sites(), "base matrix mismatch");
        assert_eq!(base.params, *params, "base params mismatch");
        assert!(
            !base.has_external(),
            "extend pristine matrices only; re-attach external potentials on the result"
        );
        let n = layout.num_sites();
        let in_base: Vec<Option<usize>> = layout
            .sites()
            .iter()
            .map(|&s| base_layout.index_of(s))
            .collect();
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let e = match (in_base[i], in_base[j]) {
                    (Some(bi), Some(bj)) => base.interaction(bi, bj),
                    _ => {
                        let mut e = params.interaction_ev(layout.distance_angstrom(i, j));
                        if e < params.interaction_cutoff_ev {
                            e = 0.0;
                        }
                        e
                    }
                };
                v[i * n + j] = e;
                v[j * n + i] = e;
            }
        }
        InteractionMatrix {
            n,
            v,
            ext: Vec::new(),
            params: *params,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.n
    }

    /// The interaction energy between sites `i` and `j`, eV.
    #[inline]
    pub fn interaction(&self, i: usize, j: usize) -> f64 {
        self.v[i * self.n + j]
    }

    /// The physical parameters the matrix was built with.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }
}

/// A full assignment of charge states to the sites of a layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChargeConfiguration {
    states: Vec<ChargeState>,
}

impl ChargeConfiguration {
    /// The all-neutral configuration over `n` sites.
    pub fn neutral(n: usize) -> Self {
        ChargeConfiguration {
            states: vec![ChargeState::Neutral; n],
        }
    }

    /// Builds a configuration from explicit states.
    pub fn from_states(states: Vec<ChargeState>) -> Self {
        ChargeConfiguration { states }
    }

    /// In a two-state system, decodes bit `i` of `index` as site `i`'s
    /// state (1 = negative). Used by the exhaustive search.
    pub fn from_index(n: usize, index: u64) -> Self {
        ChargeConfiguration {
            states: (0..n)
                .map(|i| {
                    if (index >> i) & 1 == 1 {
                        ChargeState::Negative
                    } else {
                        ChargeState::Neutral
                    }
                })
                .collect(),
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the configuration covers no sites.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of site `i`.
    pub fn state(&self, i: usize) -> ChargeState {
        self.states[i]
    }

    /// Sets the state of site `i`.
    pub fn set_state(&mut self, i: usize, s: ChargeState) {
        self.states[i] = s;
    }

    /// All states as a slice.
    pub fn states(&self) -> &[ChargeState] {
        &self.states
    }

    /// Number of negatively charged sites.
    pub fn num_negative(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == ChargeState::Negative)
            .count()
    }

    /// The electrostatic energy `E = Σ_{i<j} v_ij·n_i·n_j` plus, when
    /// the matrix carries an external potential,
    /// `Σ_i ext_i·n_i` (the defect–site coupling), eV.
    pub fn electrostatic_energy(&self, m: &InteractionMatrix) -> f64 {
        let mut e = 0.0;
        for i in 0..self.states.len() {
            let ni = self.states[i].charge_number();
            if ni == 0 {
                continue;
            }
            for j in (i + 1)..self.states.len() {
                let nj = self.states[j].charge_number();
                if nj != 0 {
                    e += m.interaction(i, j) * (ni as f64) * (nj as f64);
                }
            }
        }
        if m.has_external() {
            for i in 0..self.states.len() {
                let ni = self.states[i].charge_number();
                if ni != 0 {
                    e += m.external(i) * ni as f64;
                }
            }
        }
        e
    }

    /// The grand-potential free energy `F = E − μ−·N⁻·(−1) − …`, i.e. the
    /// electrostatic energy plus `μ−` per negative site (and `−μ+` per
    /// positive site). Valid configurations with minimal `F` are the
    /// thermodynamic ground states.
    pub fn free_energy(&self, m: &InteractionMatrix) -> f64 {
        let params = m.params();
        let mut f = self.electrostatic_energy(m);
        for s in &self.states {
            match s {
                ChargeState::Negative => f += params.mu_minus,
                ChargeState::Positive => f -= params.mu_plus(),
                ChargeState::Neutral => {}
            }
        }
        f
    }

    /// The local potential `V_i = ext_i + Σ_{j≠i} v_ij·n_j` at site
    /// `i`, eV (`ext` is zero on the pristine path).
    pub fn local_potential(&self, m: &InteractionMatrix, i: usize) -> f64 {
        let mut v = if m.has_external() { m.external(i) } else { 0.0 };
        for j in 0..self.states.len() {
            if j != i {
                let nj = self.states[j].charge_number();
                if nj != 0 {
                    v += m.interaction(i, j) * nj as f64;
                }
            }
        }
        v
    }

    /// All local potentials at once (O(n²) instead of n × O(n)).
    pub fn local_potentials(&self, m: &InteractionMatrix) -> Vec<f64> {
        let n = self.states.len();
        let mut v = match m.external_slice() {
            Some(ext) => ext.to_vec(),
            None => vec![0.0; n],
        };
        for j in 0..n {
            let nj = self.states[j].charge_number();
            if nj == 0 {
                continue;
            }
            for (i, vi) in v.iter_mut().enumerate() {
                if i != j {
                    *vi += m.interaction(i, j) * nj as f64;
                }
            }
        }
        v
    }

    /// Population stability: every site's charge state must be consistent
    /// with its local potential and the transition levels:
    ///
    /// * negative ⇒ `V_i ≥ μ−` (removing the electron must not pay off),
    /// * neutral ⇒ `μ+ ≤ V_i ≤ μ−`,
    /// * positive ⇒ `V_i ≤ μ+` (three-state model only).
    pub fn is_population_stable(&self, m: &InteractionMatrix) -> bool {
        const EPS: f64 = 1e-9;
        let params = m.params();
        let potentials = self.local_potentials(m);
        self.states.iter().zip(&potentials).all(|(s, &v)| match s {
            ChargeState::Negative => v >= params.mu_minus - EPS,
            ChargeState::Neutral => {
                v <= params.mu_minus + EPS && (!params.three_state || v >= params.mu_plus() - EPS)
            }
            ChargeState::Positive => params.three_state && v <= params.mu_plus() + EPS,
        })
    }

    /// Configuration stability: no single electron hop from a negative
    /// site `i` to a non-negative site `j` may lower the energy
    /// (`ΔE = V_i − V_j − v_ij ≥ 0`).
    pub fn is_configuration_stable(&self, m: &InteractionMatrix) -> bool {
        const EPS: f64 = 1e-9;
        let potentials = self.local_potentials(m);
        for i in 0..self.states.len() {
            if self.states[i] != ChargeState::Negative {
                continue;
            }
            for j in 0..self.states.len() {
                if i == j || self.states[j] == ChargeState::Negative {
                    continue;
                }
                let delta = potentials[i] - potentials[j] - m.interaction(i, j);
                if delta < -EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Full physical validity: population **and** configuration stability.
    pub fn is_physically_valid(&self, m: &InteractionMatrix) -> bool {
        self.is_population_stable(m) && self.is_configuration_stable(m)
    }
}

impl core::fmt::Display for ChargeConfiguration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for s in &self.states {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_dot() -> (SidbLayout, InteractionMatrix) {
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let m = InteractionMatrix::new(&layout, &PhysicalParams::default());
        (layout, m)
    }

    fn pair(dx: i32) -> (SidbLayout, InteractionMatrix) {
        let layout = SidbLayout::from_sites([(0, 0, 0), (dx, 0, 0)]);
        let m = InteractionMatrix::new(&layout, &PhysicalParams::default());
        (layout, m)
    }

    #[test]
    fn isolated_dot_must_be_negative() {
        let (_, m) = single_dot();
        let neg = ChargeConfiguration::from_states(vec![ChargeState::Negative]);
        let neu = ChargeConfiguration::from_states(vec![ChargeState::Neutral]);
        assert!(neg.is_physically_valid(&m));
        assert!(!neu.is_physically_valid(&m));
    }

    #[test]
    fn close_pair_holds_one_electron() {
        // Two dots one lattice cell apart (3.84 Å): interaction ≫ |μ−|.
        let (_, m) = pair(1);
        let both = ChargeConfiguration::from_index(2, 0b11);
        let one = ChargeConfiguration::from_index(2, 0b01);
        let none = ChargeConfiguration::from_index(2, 0b00);
        assert!(!both.is_population_stable(&m));
        assert!(one.is_physically_valid(&m));
        assert!(!none.is_population_stable(&m));
    }

    #[test]
    fn far_pair_holds_two_electrons() {
        // 40 cells ≈ 15 nm apart: weakly interacting.
        let (_, m) = pair(40);
        let both = ChargeConfiguration::from_index(2, 0b11);
        assert!(both.is_physically_valid(&m));
        let one = ChargeConfiguration::from_index(2, 0b01);
        assert!(
            !one.is_population_stable(&m),
            "far neutral site must charge up"
        );
    }

    #[test]
    fn energies_match_hand_computation() {
        let (layout, m) = pair(10);
        let d = layout.distance_angstrom(0, 1);
        let v = PhysicalParams::default().interaction_ev(d);
        let both = ChargeConfiguration::from_index(2, 0b11);
        assert!((both.electrostatic_energy(&m) - v).abs() < 1e-12);
        let f = both.free_energy(&m);
        assert!((f - (v + 2.0 * (-0.32))).abs() < 1e-12);
    }

    #[test]
    fn local_potentials_agree_with_pointwise() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 1, 0), (9, 2, 1), (15, 0, 0)]);
        let m = InteractionMatrix::new(&layout, &PhysicalParams::default());
        let cfg = ChargeConfiguration::from_index(4, 0b1011);
        let all = cfg.local_potentials(&m);
        for (i, &v) in all.iter().enumerate() {
            assert!((v - cfg.local_potential(&m, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn hop_instability_is_detected() {
        // Three dots in a line; electron on the middle dot with a far
        // electron pushing it: hopping outward lowers energy.
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (30, 0, 0)]);
        let m = InteractionMatrix::new(&layout, &PhysicalParams::default());
        // Negative at sites 0 and 1 (adjacent) is population-unstable
        // anyway; craft a configuration-unstable case instead: electron at
        // site 1 (middle) and site 2 (far right); site 0 empty. Hopping
        // 1 → 0 moves the electron away from site 2 and lowers energy.
        let cfg = ChargeConfiguration::from_states(vec![
            ChargeState::Neutral,
            ChargeState::Negative,
            ChargeState::Negative,
        ]);
        let pots = cfg.local_potentials(&m);
        // Precondition of the scenario: V_1 < V_0 − v_01 means the test
        // setup really favours the hop.
        let delta = pots[1] - pots[0] - m.interaction(0, 1);
        if delta < 0.0 {
            assert!(!cfg.is_configuration_stable(&m));
        }
        // The mirror configuration (electron at 0) is hop-stable.
        let good = ChargeConfiguration::from_states(vec![
            ChargeState::Negative,
            ChargeState::Neutral,
            ChargeState::Negative,
        ]);
        assert!(good.is_configuration_stable(&m));
    }

    #[test]
    fn three_state_allows_positive_under_pressure() {
        let params = PhysicalParams::default().with_three_state();
        let layout = SidbLayout::from_sites([(0, 0, 0), (1, 0, 0), (0, 0, 1), (1, 0, 1)]);
        let m = InteractionMatrix::new(&layout, &params);
        // In the two-state model positives are never population-stable.
        let m2 = InteractionMatrix::new(&layout, &PhysicalParams::default());
        let with_pos = ChargeConfiguration::from_states(vec![
            ChargeState::Positive,
            ChargeState::Negative,
            ChargeState::Negative,
            ChargeState::Negative,
        ]);
        assert!(!with_pos.is_population_stable(&m2));
        // Under the three-state model the check at least runs the positive
        // branch (validity depends on the detailed potentials).
        let _ = with_pos.is_population_stable(&m);
    }

    #[test]
    fn extended_matrix_matches_fresh_construction() {
        let params = PhysicalParams::default();
        let base_layout = SidbLayout::from_sites([(0, 0, 0), (4, 1, 0), (9, 2, 1)]);
        let base = InteractionMatrix::new(&base_layout, &params);
        let mut layout = base_layout.clone();
        layout.add_site((0, -4, 0));
        layout.add_site((12, 5, 1));
        let fresh = InteractionMatrix::new(&layout, &params);
        let extended = InteractionMatrix::extended(&base, &base_layout, &layout, &params);
        let n = layout.num_sites();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    fresh.interaction(i, j).to_bits(),
                    extended.interaction(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn display_shows_states() {
        let cfg = ChargeConfiguration::from_states(vec![
            ChargeState::Negative,
            ChargeState::Neutral,
            ChargeState::Positive,
        ]);
        assert_eq!(cfg.to_string(), "−0+");
    }
}
