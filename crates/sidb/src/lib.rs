//! `sidb-sim` — physical simulation of silicon dangling bond (SiDB) logic.
//!
//! Re-implements the physics engine the paper relies on (SiQAD's
//! *SimAnneal* ground-state finder and the associated stability model of
//! Ng et al., TNANO 2020) from scratch:
//!
//! * [`layout`] — dot-accurate SiDB layouts on the H-Si(100)-2×1 surface,
//! * [`model`] — the screened-Coulomb (Thomas–Fermi) electrostatic model
//!   with the paper's parameters (`μ− = −0.32 eV`, `ε_r = 5.6`,
//!   `λ_TF = 5 nm`),
//! * [`charge`] — charge configurations, electrostatic energies,
//!   *population* and *configuration* stability,
//! * [`defects`] — surface defect maps (charged and structural species,
//!   seeded random surfaces) whose screened-Coulomb influence folds into
//!   the interaction matrix as an external potential,
//! * [`engine`] — the unified simulation entry point:
//!   [`engine::simulate_with`] dispatches to every engine behind one
//!   [`engine::SimParams`] builder, partitions the search across a
//!   worker pool, and reports [`engine::SimStats`],
//! * [`cache`] — a content-addressed simulation cache shared across
//!   gate-library validation, domain sweeps, and designer searches,
//! * [`exgs`] — exhaustive ground-state search (exact for gate-sized
//!   instances),
//! * [`quickexact`] — a branch-and-bound exact engine with
//!   physically-informed pruning,
//! * [`simanneal`] — a SimAnneal-style simulated-annealing ground-state
//!   finder for circuit-scale instances,
//! * [`bdl`] — binary-dot logic: I/O pairs, input perturbers (the paper's
//!   near/far refinement of Huff et al.'s encoding), and logic read-out,
//! * [`operational`] — truth-table validation of gate designs,
//! * [`opdomain`] — operational-domain sweeps over `(ε_r, λ_TF)` — the
//!   robustness analysis the paper's outlook calls for, behind one
//!   [`opdomain::DomainParams`] builder with an adaptive
//!   boundary-following sampler and a dense A/B reference.
//!
//! # Examples
//!
//! An isolated SiDB settles into the negative charge state:
//!
//! ```
//! use sidb_sim::engine::{simulate_with, SimParams};
//! use sidb_sim::layout::SidbLayout;
//! use sidb_sim::model::PhysicalParams;
//! use sidb_sim::charge::ChargeState;
//!
//! let mut layout = SidbLayout::new();
//! layout.add_site((0, 0, 0));
//! let result = simulate_with(&layout, &SimParams::new(PhysicalParams::default()));
//! let gs = result.ground_state().expect("a single dot always has a ground state");
//! assert_eq!(gs.config.state(0), ChargeState::Negative);
//! ```

pub mod bdl;
pub mod cache;
pub mod charge;
pub mod defects;
pub mod engine;
pub mod exgs;
pub mod layout;
pub mod model;
pub mod opdomain;
pub mod operational;
pub mod quickexact;
pub mod simanneal;
pub mod stability;

pub use cache::SimCache;
pub use charge::{ChargeConfiguration, ChargeState};
pub use defects::{Defect, DefectKind, DefectMap, SurfaceSpecError};
pub use engine::{simulate_on_surface, simulate_with, SimEngine, SimParams, SimResult, SimStats};
pub use layout::SidbLayout;
pub use model::PhysicalParams;
pub use opdomain::{DomainGrid, DomainParams, DomainSample, DomainStrategy, OperationalDomain};
