//! Operational (truth-table) validation of SiDB gate designs.
//!
//! A gate design is *operational* when, for every input pattern, the
//! simulated charge ground state of the gate (with input perturbers at
//! their near/far positions and output perturbers present) reproduces the
//! intended truth table on the output BDL pairs. This is the acceptance
//! criterion the paper applied to every tile of the Bestagon library.
//!
//! Validation fans the `2^k` input patterns out across the simulation
//! engine's worker pool and shares the gate body's interaction matrix
//! between them (patterns differ only in a few perturber dots, so the
//! dominant O(n²) matrix build happens once).
//!
//! Two check modes exist (see the crate-internal `CheckMode`): the
//! default *full* mode
//! always simulates every pattern, so verdicts *and* work counters are
//! identical at any thread count; the *refute-fast* mode evaluates
//! patterns serially in pattern order and stops at the first pattern
//! whose observed ground state contradicts the truth table — the
//! verdict is provably the same (operational requires *every* pattern
//! to pass, and full mode reports the lowest-numbered failing pattern),
//! only the work after the first refutation is skipped. The adaptive
//! operational-domain sweep runs thousands of point checks in regions
//! where the design is broken; refute-fast is what makes those points
//! cheap.

use crate::bdl::{InputPort, OutputPort};
use crate::charge::{ChargeConfiguration, InteractionMatrix};
use crate::defects::DefectMap;
use crate::engine::{self, SimParams, SimStats};
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;

/// Which ground-state engine validates a design (an alias of
/// [`crate::engine::SimEngine`], kept for source compatibility).
pub use crate::engine::SimEngine as Engine;

/// A complete, simulatable SiDB gate design.
#[derive(Debug, Clone)]
pub struct GateDesign {
    /// Human-readable gate name (e.g. `"OR"`).
    pub name: String,
    /// All SiDBs of the tile: logic canvas plus I/O wire stubs.
    pub body: SidbLayout,
    /// Input ports, LSB first (pattern bit `i` drives port `i`).
    pub inputs: Vec<InputPort>,
    /// Output ports.
    pub outputs: Vec<OutputPort>,
    /// Expected outputs per input pattern; row `p` corresponds to the
    /// pattern whose bit `i` is input `i`'s value.
    pub truth_table: Vec<Vec<bool>>,
}

/// How [`GateDesign::check_core`] treats a failing input pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CheckMode {
    /// Simulate every pattern, even after a failure. Work counters are
    /// a pure function of the design and parameters — this is the mode
    /// behind [`GateDesign::check_operational_with`] and the dense
    /// domain sweep.
    Full,
    /// Evaluate patterns serially in pattern order and stop at the
    /// first refutation. Same verdict, same reported failing pattern,
    /// strictly less work on non-operational designs.
    RefuteFast,
}

/// A verdict together with how many patterns were actually simulated
/// to reach it (all of them in [`CheckMode::Full`]; possibly fewer in
/// [`CheckMode::RefuteFast`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckOutcome {
    pub report: OperationalReport,
    pub patterns_simulated: u32,
}

/// The validation verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum OperationalStatus {
    /// All input patterns produce the expected outputs.
    Operational,
    /// At least one pattern failed.
    NonOperational {
        /// The first failing input pattern (bit `i` = input `i`).
        pattern: u32,
        /// What the outputs read as (`None` = ambiguous read-out).
        observed: Vec<Option<bool>>,
        /// The expected output values.
        expected: Vec<bool>,
    },
}

impl OperationalStatus {
    /// True if the design is fully operational.
    pub fn is_operational(&self) -> bool {
        matches!(self, OperationalStatus::Operational)
    }
}

/// A validation verdict together with the simulation work it took.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalReport {
    /// The verdict.
    pub status: OperationalStatus,
    /// Work counters summed over all simulated input patterns.
    pub stats: SimStats,
}

impl OperationalReport {
    /// True if the design is fully operational.
    pub fn is_operational(&self) -> bool {
        self.status.is_operational()
    }
}

/// The outcome of simulating one input pattern.
#[derive(Debug, Clone)]
pub struct PatternSimulation {
    /// The simulated layout (body + perturbers).
    pub layout: SidbLayout,
    /// The ground-state charge configuration.
    pub ground_state: ChargeConfiguration,
    /// The decoded output values.
    pub outputs: Vec<Option<bool>>,
}

/// The outcome of *evaluating* one input pattern of a candidate design:
/// either decoded outputs from a complete ground-state search, or an
/// honest record that the simulation could not finish (budget-truncated
/// sweep, or no physically valid state found) and the outputs are
/// therefore **unknown** — distinct from "simulated and read wrong".
///
/// Search-based designers score thousands of candidates under budgets;
/// conflating "unevaluated" with "wrong" makes a budget-starved search
/// discard designs it never actually measured.
#[derive(Debug, Clone)]
pub struct PatternEval {
    /// Decoded output values; meaningful only when [`Self::evaluated`].
    pub outputs: Vec<Option<bool>>,
    /// True when a complete search determined the ground state. False
    /// when the sweep was truncated by its budget or found no valid
    /// state — the pattern is *unknown*, not failed.
    pub evaluated: bool,
    /// Work counters of the simulation.
    pub stats: SimStats,
}

impl GateDesign {
    /// Number of input patterns (`2^inputs`).
    pub fn num_patterns(&self) -> u32 {
        1 << self.inputs.len()
    }

    /// The complete simulation layout for an input pattern: gate body plus
    /// the pattern's input perturbers and all output perturbers.
    pub fn layout_for_pattern(&self, pattern: u32) -> SidbLayout {
        let mut layout = self.body.clone();
        for (i, port) in self.inputs.iter().enumerate() {
            layout.add_site(port.perturber_for((pattern >> i) & 1 == 1));
        }
        for port in &self.outputs {
            if let Some(p) = port.perturber {
                layout.add_site(p);
            }
        }
        layout
    }

    /// Simulates one input pattern under the given parameters and
    /// decodes the outputs.
    ///
    /// Returns `None` when no ground state could be determined (empty
    /// design).
    pub fn simulate_pattern_with(
        &self,
        pattern: u32,
        sim: &SimParams,
    ) -> Option<PatternSimulation> {
        let layout = self.layout_for_pattern(pattern);
        let result = engine::simulate_with(&layout, sim);
        let ground_state = result.states.first().map(|s| s.config.clone())?;
        let outputs = self
            .outputs
            .iter()
            .map(|o| o.pair.read(&layout, &ground_state))
            .collect();
        Some(PatternSimulation {
            layout,
            ground_state,
            outputs,
        })
    }

    /// Evaluates one input pattern for a candidate design, surfacing
    /// budget truncation distinctly from a wrong read-out (see
    /// [`PatternEval`]). This is the scoring hook the automated gate
    /// designer uses.
    pub fn evaluate_pattern_with(&self, pattern: u32, sim: &SimParams) -> PatternEval {
        let layout = self.layout_for_pattern(pattern);
        let result = engine::simulate_with(&layout, sim);
        match (result.truncated, result.states.first()) {
            (false, Some(state)) => PatternEval {
                outputs: self
                    .outputs
                    .iter()
                    .map(|o| o.pair.read(&layout, &state.config))
                    .collect(),
                evaluated: true,
                stats: result.stats,
            },
            // A truncated spectrum's lowest state need not be the ground
            // state; report the pattern as unevaluated rather than
            // decoding a possibly-wrong read-out.
            _ => PatternEval {
                outputs: Vec::new(),
                evaluated: false,
                stats: result.stats,
            },
        }
    }

    /// Simulates one input pattern and decodes the outputs.
    ///
    /// Returns `None` when no ground state could be determined (empty
    /// design).
    #[deprecated(since = "0.6.0", note = "use `simulate_pattern_with(&SimParams)`")]
    pub fn simulate_pattern(
        &self,
        pattern: u32,
        params: &PhysicalParams,
        engine: Engine,
    ) -> Option<PatternSimulation> {
        self.simulate_pattern_with(pattern, &SimParams::new(*params).with_engine(engine))
    }

    /// Validates the design against its truth table, returning the
    /// verdict together with the summed simulation work counters.
    ///
    /// All `2^k` input patterns run across the engine's worker pool with
    /// a shared body interaction matrix; the reported failing pattern is
    /// always the lowest-numbered one, independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the truth table does not cover every input pattern.
    pub fn check_operational_with(&self, sim: &SimParams) -> OperationalReport {
        let report = self.check_core(sim);
        engine::emit_stats(&report.stats);
        report
    }

    /// Validates the design against its truth table *on a given
    /// surface*: every pattern layout couples to the surface's defects
    /// through external potentials folded into its interaction matrix,
    /// so the verdict reflects the gate as it would behave at this
    /// physical location. A pristine (empty) surface delegates to
    /// [`check_operational_with`](Self::check_operational_with) — the
    /// arithmetic is bit-identical and cache-eligible.
    ///
    /// # Panics
    ///
    /// Panics if the truth table does not cover every input pattern.
    pub fn check_operational_on(&self, sim: &SimParams, surface: &DefectMap) -> OperationalReport {
        if surface.is_empty() {
            return self.check_operational_with(sim);
        }
        let report = self.check_full(sim, Some(surface)).report;
        engine::emit_stats(&report.stats);
        report
    }

    /// [`check_operational_with`](Self::check_operational_with) without
    /// telemetry emission, for callers that aggregate several designs.
    pub(crate) fn check_core(&self, sim: &SimParams) -> OperationalReport {
        self.check_with_mode(sim, CheckMode::Full).report
    }

    /// The core checker behind both modes (see [`CheckMode`]).
    pub(crate) fn check_with_mode(&self, sim: &SimParams, mode: CheckMode) -> CheckOutcome {
        assert_eq!(
            self.truth_table.len() as u32,
            self.num_patterns(),
            "truth table must cover all input patterns"
        );
        if mode == CheckMode::RefuteFast {
            return self.check_refute_fast(sim);
        }
        self.check_full(sim, None)
    }

    /// [`CheckMode::Full`], optionally on a defective surface: every
    /// pattern simulated across the worker pool with a shared body
    /// matrix. `surface`, when given, is non-empty and contributes
    /// external potentials to each pattern's matrix.
    fn check_full(&self, sim: &SimParams, surface: Option<&DefectMap>) -> CheckOutcome {
        assert_eq!(
            self.truth_table.len() as u32,
            self.num_patterns(),
            "truth table must cover all input patterns"
        );
        let threads = sim.threads.unwrap_or_else(engine::default_sim_threads);
        // Patterns are the partition units; each unit simulates serially
        // so the pool width never changes any per-pattern arithmetic.
        let unit_sim = sim.clone().with_threads(1);
        let body_matrix = InteractionMatrix::new(&self.body, &sim.physical);
        let patterns = self.num_patterns() as usize;
        let run = engine::run_partitioned(patterns, threads, |p| {
            let layout = self.layout_for_pattern(p as u32);
            let mut matrix =
                InteractionMatrix::extended(&body_matrix, &self.body, &layout, &sim.physical);
            if let Some(map) = surface {
                matrix = matrix.with_external(map.external_potentials(&layout, &sim.physical));
            }
            let result = engine::simulate_with_matrix(&layout, &unit_sim, Some(&matrix));
            let ground_state = result
                .states
                .first()
                .map(|s| s.config.clone())
                .expect("gate bodies are non-empty");
            let outputs: Vec<Option<bool>> = self
                .outputs
                .iter()
                .map(|o| o.pair.read(&layout, &ground_state))
                .collect();
            (outputs, result.stats)
        });
        let mut stats = SimStats {
            recovered: run.recovered,
            ..SimStats::default()
        };
        let mut status = OperationalStatus::Operational;
        for (pattern, (outputs, pattern_stats)) in run.results.into_iter().enumerate() {
            stats.merge(&pattern_stats);
            if !status.is_operational() {
                continue;
            }
            let expected = &self.truth_table[pattern];
            let ok = outputs.len() == expected.len()
                && outputs
                    .iter()
                    .zip(expected)
                    .all(|(obs, exp)| *obs == Some(*exp));
            if !ok {
                status = OperationalStatus::NonOperational {
                    pattern: pattern as u32,
                    observed: outputs,
                    expected: expected.clone(),
                };
            }
        }
        CheckOutcome {
            report: OperationalReport { status, stats },
            patterns_simulated: self.num_patterns(),
        }
    }

    /// [`CheckMode::RefuteFast`]: serial pattern loop, early exit on
    /// the first refutation. Patterns run one after another, so each
    /// simulation keeps the caller's full thread budget (at
    /// `with_threads(1)` — how domain sweeps call it — the per-pattern
    /// arithmetic is identical to full mode's serial units).
    fn check_refute_fast(&self, sim: &SimParams) -> CheckOutcome {
        let body_matrix = InteractionMatrix::new(&self.body, &sim.physical);
        let mut stats = SimStats::default();
        let mut simulated = 0u32;
        let mut status = OperationalStatus::Operational;
        for pattern in 0..self.num_patterns() {
            let layout = self.layout_for_pattern(pattern);
            let matrix =
                InteractionMatrix::extended(&body_matrix, &self.body, &layout, &sim.physical);
            let result = engine::simulate_with_matrix(&layout, sim, Some(&matrix));
            simulated += 1;
            stats.merge(&result.stats);
            let ground_state = result
                .states
                .first()
                .map(|s| s.config.clone())
                .expect("gate bodies are non-empty");
            let outputs: Vec<Option<bool>> = self
                .outputs
                .iter()
                .map(|o| o.pair.read(&layout, &ground_state))
                .collect();
            let expected = &self.truth_table[pattern as usize];
            let ok = outputs.len() == expected.len()
                && outputs
                    .iter()
                    .zip(expected)
                    .all(|(obs, exp)| *obs == Some(*exp));
            if !ok {
                status = OperationalStatus::NonOperational {
                    pattern,
                    observed: outputs,
                    expected: expected.clone(),
                };
                break;
            }
        }
        CheckOutcome {
            report: OperationalReport { status, stats },
            patterns_simulated: simulated,
        }
    }

    /// Validates the design against its truth table.
    ///
    /// # Panics
    ///
    /// Panics if the truth table does not cover every input pattern.
    #[deprecated(since = "0.6.0", note = "use `check_operational_with(&SimParams)`")]
    pub fn check_operational(&self, params: &PhysicalParams, engine: Engine) -> OperationalStatus {
        self.check_operational_with(&SimParams::new(*params).with_engine(engine))
            .status
    }

    /// Translated copy of the whole design.
    pub fn translated(&self, dx: i32, dy: i32) -> GateDesign {
        GateDesign {
            name: self.name.clone(),
            body: self.body.translated(dx, dy),
            inputs: self.inputs.iter().map(|p| p.translated(dx, dy)).collect(),
            outputs: self.outputs.iter().map(|p| p.translated(dx, dy)).collect(),
            truth_table: self.truth_table.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdl::BdlPair;
    use crate::cache::SimCache;
    use crate::engine::SimEngine;
    use crate::simanneal::AnnealParams;

    /// A three-pair BDL wire in the validated geometry: vertical pairs
    /// `(0,y,0)/(0,y+1,0)` at a four-row pitch, input perturbers at the
    /// phantom upstream pair's dot positions, output perturber at the
    /// phantom downstream pair's location.
    fn wire_design() -> GateDesign {
        let body = SidbLayout::from_sites([
            (0, 0, 0),
            (0, 1, 0),
            (0, 4, 0),
            (0, 5, 0),
            (0, 8, 0),
            (0, 9, 0),
        ]);
        GateDesign {
            name: "WIRE-test".into(),
            body,
            inputs: vec![InputPort {
                pair: BdlPair::new((0, 0, 0), (0, 1, 0)),
                perturber_zero: (0, -4, 0).into(),
                perturber_one: (0, -3, 0).into(),
            }],
            outputs: vec![OutputPort {
                pair: BdlPair::new((0, 8, 0), (0, 9, 0)),
                perturber: Some((0, 12, 1).into()),
            }],
            truth_table: vec![vec![false], vec![true]],
        }
    }

    #[test]
    fn pattern_layouts_differ_only_in_perturbers() {
        let d = wire_design();
        let l0 = d.layout_for_pattern(0);
        let l1 = d.layout_for_pattern(1);
        assert_eq!(l0.num_sites(), d.body.num_sites() + 2);
        assert_eq!(l1.num_sites(), d.body.num_sites() + 2);
        assert!(l0.contains((0, -4, 0)) && !l0.contains((0, -3, 0)));
        assert!(l1.contains((0, -3, 0)) && !l1.contains((0, -4, 0)));
    }

    #[test]
    fn wire_design_is_operational() {
        let d = wire_design();
        let report = d.check_operational_with(
            &SimParams::new(PhysicalParams::default()).with_engine(SimEngine::Exhaustive),
        );
        assert!(report.is_operational());
        assert!(report.stats.visited > 0);
    }

    #[test]
    fn engines_agree_on_the_wire() {
        let d = wire_design();
        let params = PhysicalParams::default();
        for pattern in 0..2 {
            let a = d
                .simulate_pattern_with(
                    pattern,
                    &SimParams::new(params).with_engine(SimEngine::Exhaustive),
                )
                .expect("ok");
            let b = d
                .simulate_pattern_with(
                    pattern,
                    &SimParams::new(params).with_engine(SimEngine::Anneal(AnnealParams::default())),
                )
                .expect("ok");
            assert_eq!(a.outputs, b.outputs, "pattern {pattern}");
        }
    }

    #[test]
    fn verdicts_and_stats_are_thread_invariant() {
        let d = wire_design();
        let base = SimParams::new(PhysicalParams::default());
        let one = d.check_core(&base.clone().with_threads(1));
        let four = d.check_core(&base.clone().with_threads(4));
        assert_eq!(one, four);
    }

    #[test]
    fn cached_validation_visits_fewer_configurations() {
        let d = wire_design();
        let sim = SimParams::new(PhysicalParams::default()).with_cache(SimCache::new());
        let first = d.check_operational_with(&sim);
        let second = d.check_operational_with(&sim);
        assert_eq!(first.status, second.status);
        assert!(first.stats.visited > 0);
        assert_eq!(second.stats.visited, 0, "all patterns served from cache");
        assert_eq!(second.stats.cache_hits, u64::from(d.num_patterns()));
    }

    #[test]
    fn pattern_eval_surfaces_truncation_distinctly() {
        use fcn_budget::StepBudget;
        let d = wire_design();
        let full = d.evaluate_pattern_with(
            1,
            &SimParams::new(PhysicalParams::default()).with_engine(SimEngine::Exhaustive),
        );
        assert!(full.evaluated);
        assert_eq!(full.outputs, vec![Some(true)]);
        // A two-step budget truncates the sweep: the pattern must come
        // back as *unevaluated*, never as a (possibly wrong) read-out.
        let starved = d.evaluate_pattern_with(
            1,
            &SimParams::new(PhysicalParams::default())
                .with_engine(SimEngine::Exhaustive)
                .with_budget(StepBudget::unbounded().with_max_steps(2)),
        );
        assert!(!starved.evaluated);
        assert!(starved.outputs.is_empty());
        assert_eq!(starved.stats.truncated, 1);
    }

    #[test]
    #[should_panic(expected = "truth table must cover")]
    fn short_truth_table_panics() {
        let mut d = wire_design();
        d.truth_table.pop();
        let _ = d.check_operational_with(&SimParams::new(PhysicalParams::default()));
    }

    #[test]
    fn refute_fast_agrees_with_full_mode_on_an_operational_design() {
        let d = wire_design();
        let sim = SimParams::new(PhysicalParams::default());
        let full = d.check_with_mode(&sim, CheckMode::Full);
        let fast = d.check_with_mode(&sim, CheckMode::RefuteFast);
        assert_eq!(full.report.status, fast.report.status);
        assert!(fast.report.status == OperationalStatus::Operational);
        // No refutation exists, so refute-fast must simulate everything.
        assert_eq!(full.patterns_simulated, d.num_patterns());
        assert_eq!(fast.patterns_simulated, d.num_patterns());
    }

    #[test]
    fn refute_fast_stops_at_the_first_refutation() {
        // Inverting the truth table breaks the wire on pattern 0, so
        // refute-fast must stop there while full mode simulates both
        // patterns — and both must report the same failing pattern.
        let mut d = wire_design();
        d.truth_table = vec![vec![true], vec![false]];
        let sim = SimParams::new(PhysicalParams::default());
        let full = d.check_with_mode(&sim, CheckMode::Full);
        let fast = d.check_with_mode(&sim, CheckMode::RefuteFast);
        assert_eq!(full.report.status, fast.report.status);
        assert!(matches!(
            fast.report.status,
            OperationalStatus::NonOperational { pattern: 0, .. }
        ));
        assert_eq!(full.patterns_simulated, d.num_patterns());
        assert_eq!(fast.patterns_simulated, 1);
        assert!(fast.report.stats.visited < full.report.stats.visited);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        let d = wire_design();
        let params = PhysicalParams::default();
        assert!(d
            .check_operational(&params, Engine::Exhaustive)
            .is_operational());
        assert!(d.simulate_pattern(1, &params, Engine::QuickExact).is_some());
    }
}
