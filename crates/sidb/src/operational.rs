//! Operational (truth-table) validation of SiDB gate designs.
//!
//! A gate design is *operational* when, for every input pattern, the
//! simulated charge ground state of the gate (with input perturbers at
//! their near/far positions and output perturbers present) reproduces the
//! intended truth table on the output BDL pairs. This is the acceptance
//! criterion the paper applied to every tile of the Bestagon library.

use crate::bdl::{InputPort, OutputPort};
use crate::charge::ChargeConfiguration;
use crate::exgs::exhaustive_ground_state;
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use crate::quickexact::quick_exact_ground_state;
use crate::simanneal::{simulated_annealing, AnnealParams};

/// A complete, simulatable SiDB gate design.
#[derive(Debug, Clone)]
pub struct GateDesign {
    /// Human-readable gate name (e.g. `"OR"`).
    pub name: String,
    /// All SiDBs of the tile: logic canvas plus I/O wire stubs.
    pub body: SidbLayout,
    /// Input ports, LSB first (pattern bit `i` drives port `i`).
    pub inputs: Vec<InputPort>,
    /// Output ports.
    pub outputs: Vec<OutputPort>,
    /// Expected outputs per input pattern; row `p` corresponds to the
    /// pattern whose bit `i` is input `i`'s value.
    pub truth_table: Vec<Vec<bool>>,
}

/// Which ground-state engine validates the design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// Exhaustive search — exact, gate-sized instances only.
    Exhaustive,
    /// Simulated annealing with the given parameters.
    Anneal(AnnealParams),
    /// Branch-and-bound exact search (fast on BDL-structured layouts).
    QuickExact,
    /// QuickExact for exact results; the default choice.
    Auto,
}

/// The validation verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum OperationalStatus {
    /// All input patterns produce the expected outputs.
    Operational,
    /// At least one pattern failed.
    NonOperational {
        /// The first failing input pattern (bit `i` = input `i`).
        pattern: u32,
        /// What the outputs read as (`None` = ambiguous read-out).
        observed: Vec<Option<bool>>,
        /// The expected output values.
        expected: Vec<bool>,
    },
}

impl OperationalStatus {
    /// True if the design is fully operational.
    pub fn is_operational(&self) -> bool {
        matches!(self, OperationalStatus::Operational)
    }
}

/// The outcome of simulating one input pattern.
#[derive(Debug, Clone)]
pub struct PatternSimulation {
    /// The simulated layout (body + perturbers).
    pub layout: SidbLayout,
    /// The ground-state charge configuration.
    pub ground_state: ChargeConfiguration,
    /// The decoded output values.
    pub outputs: Vec<Option<bool>>,
}

impl GateDesign {
    /// Number of input patterns (`2^inputs`).
    pub fn num_patterns(&self) -> u32 {
        1 << self.inputs.len()
    }

    /// The complete simulation layout for an input pattern: gate body plus
    /// the pattern's input perturbers and all output perturbers.
    pub fn layout_for_pattern(&self, pattern: u32) -> SidbLayout {
        let mut layout = self.body.clone();
        for (i, port) in self.inputs.iter().enumerate() {
            layout.add_site(port.perturber_for((pattern >> i) & 1 == 1));
        }
        for port in &self.outputs {
            if let Some(p) = port.perturber {
                layout.add_site(p);
            }
        }
        layout
    }

    /// Simulates one input pattern and decodes the outputs.
    ///
    /// Returns `None` when no ground state could be determined (empty
    /// design).
    pub fn simulate_pattern(
        &self,
        pattern: u32,
        params: &PhysicalParams,
        engine: Engine,
    ) -> Option<PatternSimulation> {
        let layout = self.layout_for_pattern(pattern);
        let ground_state = match engine {
            Engine::Exhaustive => exhaustive_ground_state(&layout, params)?,
            Engine::Anneal(a) => simulated_annealing(&layout, params, &a)?.config,
            Engine::QuickExact | Engine::Auto => quick_exact_ground_state(&layout, params)?,
        };
        let outputs = self
            .outputs
            .iter()
            .map(|o| o.pair.read(&layout, &ground_state))
            .collect();
        Some(PatternSimulation {
            layout,
            ground_state,
            outputs,
        })
    }

    /// Validates the design against its truth table.
    ///
    /// # Panics
    ///
    /// Panics if the truth table does not cover every input pattern.
    pub fn check_operational(&self, params: &PhysicalParams, engine: Engine) -> OperationalStatus {
        assert_eq!(
            self.truth_table.len() as u32,
            self.num_patterns(),
            "truth table must cover all input patterns"
        );
        for pattern in 0..self.num_patterns() {
            let expected = &self.truth_table[pattern as usize];
            let sim = self
                .simulate_pattern(pattern, params, engine)
                .expect("gate bodies are non-empty");
            let ok = sim.outputs.len() == expected.len()
                && sim
                    .outputs
                    .iter()
                    .zip(expected)
                    .all(|(obs, exp)| *obs == Some(*exp));
            if !ok {
                return OperationalStatus::NonOperational {
                    pattern,
                    observed: sim.outputs,
                    expected: expected.clone(),
                };
            }
        }
        OperationalStatus::Operational
    }

    /// Translated copy of the whole design.
    pub fn translated(&self, dx: i32, dy: i32) -> GateDesign {
        GateDesign {
            name: self.name.clone(),
            body: self.body.translated(dx, dy),
            inputs: self.inputs.iter().map(|p| p.translated(dx, dy)).collect(),
            outputs: self.outputs.iter().map(|p| p.translated(dx, dy)).collect(),
            truth_table: self.truth_table.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdl::BdlPair;

    /// A three-pair BDL wire in the validated geometry: vertical pairs
    /// `(0,y,0)/(0,y+1,0)` at a four-row pitch, input perturbers at the
    /// phantom upstream pair's dot positions, output perturber at the
    /// phantom downstream pair's location.
    fn wire_design() -> GateDesign {
        let body = SidbLayout::from_sites([
            (0, 0, 0),
            (0, 1, 0),
            (0, 4, 0),
            (0, 5, 0),
            (0, 8, 0),
            (0, 9, 0),
        ]);
        GateDesign {
            name: "WIRE-test".into(),
            body,
            inputs: vec![InputPort {
                pair: BdlPair::new((0, 0, 0), (0, 1, 0)),
                perturber_zero: (0, -4, 0).into(),
                perturber_one: (0, -3, 0).into(),
            }],
            outputs: vec![OutputPort {
                pair: BdlPair::new((0, 8, 0), (0, 9, 0)),
                perturber: Some((0, 12, 1).into()),
            }],
            truth_table: vec![vec![false], vec![true]],
        }
    }

    #[test]
    fn pattern_layouts_differ_only_in_perturbers() {
        let d = wire_design();
        let l0 = d.layout_for_pattern(0);
        let l1 = d.layout_for_pattern(1);
        assert_eq!(l0.num_sites(), d.body.num_sites() + 2);
        assert_eq!(l1.num_sites(), d.body.num_sites() + 2);
        assert!(l0.contains((0, -4, 0)) && !l0.contains((0, -3, 0)));
        assert!(l1.contains((0, -3, 0)) && !l1.contains((0, -4, 0)));
    }

    #[test]
    fn wire_design_is_operational() {
        let d = wire_design();
        let params = PhysicalParams::default();
        assert!(d
            .check_operational(&params, Engine::Exhaustive)
            .is_operational());
    }

    #[test]
    fn engines_agree_on_the_wire() {
        let d = wire_design();
        let params = PhysicalParams::default();
        for pattern in 0..2 {
            let a = d
                .simulate_pattern(pattern, &params, Engine::Exhaustive)
                .expect("ok");
            let b = d
                .simulate_pattern(pattern, &params, Engine::Anneal(AnnealParams::default()))
                .expect("ok");
            assert_eq!(a.outputs, b.outputs, "pattern {pattern}");
        }
    }

    #[test]
    #[should_panic(expected = "truth table must cover")]
    fn short_truth_table_panics() {
        let mut d = wire_design();
        d.truth_table.pop();
        d.check_operational(&PhysicalParams::default(), Engine::Exhaustive);
    }
}
