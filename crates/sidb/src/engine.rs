//! The unified SiDB simulation engine: one entry point
//! ([`simulate_with`]) over every ground-state algorithm, with
//! charge-space partitioning across a worker pool, physically-informed
//! pruning, and an optional content-addressed result cache.
//!
//! # The `SimParams` API
//!
//! [`SimParams`] is a chainable builder mirroring `msat::SolveParams`:
//!
//! ```
//! use sidb_sim::engine::{simulate_with, SimEngine, SimParams};
//! use sidb_sim::layout::SidbLayout;
//! use sidb_sim::model::PhysicalParams;
//!
//! let layout = SidbLayout::from_sites([(0, 0, 0), (2, 0, 0)]);
//! let result = simulate_with(
//!     &layout,
//!     &SimParams::new(PhysicalParams::default())
//!         .with_engine(SimEngine::Exhaustive)
//!         .with_k(3)
//!         .with_threads(2),
//! );
//! assert_eq!(result.ground_state().expect("non-empty").config.num_negative(), 2);
//! ```
//!
//! # Determinism
//!
//! Results are bit-identical at any thread count. The exhaustive sweep
//! is split into contiguous Gray-code chunks whose *count* depends only
//! on the layout (never on the thread count), each chunk is initialized
//! canonically and swept with the same incremental arithmetic, and the
//! per-chunk k-best lists are merged under a total order (free energy,
//! then charge configuration) — so one thread and sixteen threads
//! perform the exact same floating-point operations and keep the exact
//! same states. Branch-and-bound and annealing runs are serial per
//! partition unit; the pool only distributes independent units (chunks,
//! interaction-graph components, input patterns, domain grid points)
//! and commits their results in index order.
//!
//! # Resilience
//!
//! The partition scheduler hosts the `sidb.partition` fault-injection
//! point: a worker panic leaves its unit's slot empty and the
//! coordinator recomputes it inline after the pool joins (degrading to
//! serial work, never corrupting a verdict), and an injected `exhaust`
//! stops parallel dispatch so the remaining units run serially.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::cache::SimCache;
use crate::charge::{ChargeConfiguration, ChargeState, InteractionMatrix};
use crate::exgs::{SimulatedState, MAX_EXHAUSTIVE_SITES, MAX_THREE_STATE_SITES};
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use crate::simanneal::AnnealParams;
use fcn_budget::StepBudget;

/// Which ground-state algorithm a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEngine {
    /// Exhaustive Gray-code sweep — exact, gate-sized instances only.
    Exhaustive,
    /// Simulated annealing with the given parameters.
    Anneal(AnnealParams),
    /// Branch-and-bound exact search (fast on BDL-structured layouts).
    QuickExact,
    /// QuickExact for exact results; the default choice.
    Auto,
}

/// Parameters of one simulation, built by chaining.
///
/// Mirrors `msat::SolveParams`: construct with [`SimParams::new`] (or
/// `Default`), then chain `with_*` calls. The struct is
/// `#[non_exhaustive]` so fields can be added without breaking callers.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct SimParams {
    /// The electrostatic model parameters.
    pub physical: PhysicalParams,
    /// The ground-state algorithm.
    pub engine: SimEngine,
    /// How many lowest-free-energy states to keep (`1` = ground state).
    pub k: usize,
    /// Worker-pool width; `None` defers to [`default_sim_threads`].
    pub threads: Option<usize>,
    /// Step/wall-clock budget. Bounded sweeps run serially so the
    /// legacy truncation semantics (step counting, deadline polling)
    /// are preserved exactly.
    pub budget: StepBudget,
    /// Use the three-state (negative/neutral/positive) exhaustive
    /// model instead of `engine`.
    pub three_state: bool,
    /// Content-addressed result cache shared across simulations.
    pub cache: Option<SimCache>,
}

impl SimParams {
    /// Simulation of the given physical model with the default engine
    /// ([`SimEngine::Auto`]), `k = 1`, default threads, no budget, and
    /// no cache.
    pub fn new(physical: PhysicalParams) -> Self {
        SimParams {
            physical,
            engine: SimEngine::Auto,
            k: 1,
            threads: None,
            budget: StepBudget::unbounded(),
            three_state: false,
            cache: None,
        }
    }

    /// Selects the ground-state algorithm.
    #[must_use]
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Keeps the `k` lowest-free-energy states instead of just the
    /// ground state.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Pins the worker pool to `threads` workers (`1` = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Bounds the sweep by a step/wall-clock budget.
    #[must_use]
    pub fn with_budget(mut self, budget: StepBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Switches to the exhaustive three-state model (the `engine`
    /// selection is ignored; complexity is `3^n`, so `n ≤ 16`).
    #[must_use]
    pub fn with_three_state(mut self) -> Self {
        self.three_state = true;
        self
    }

    /// Shares results through `cache`. Only unbounded runs are cached
    /// (a truncated spectrum depends on the wall clock).
    #[must_use]
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams::new(PhysicalParams::default())
    }
}

/// Work counters of one (or several merged) simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Charge configurations visited (sweep steps, branch-and-bound
    /// nodes, or annealing proposals, by engine).
    pub visited: u64,
    /// Configurations skipped by physically-informed pruning
    /// (fixed-negative preassignment, potential bounds, viability).
    pub pruned: u64,
    /// Simulations answered from the cache.
    pub cache_hits: u64,
    /// Simulations that went to a cache but had to compute.
    pub cache_misses: u64,
    /// Sweeps that stopped early on a budget.
    pub truncated: u64,
    /// Partition units recomputed serially after a worker fault.
    pub recovered: u64,
}

impl SimStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &SimStats) {
        self.visited = self.visited.saturating_add(other.visited);
        self.pruned = self.pruned.saturating_add(other.pruned);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.truncated = self.truncated.saturating_add(other.truncated);
        self.recovered = self.recovered.saturating_add(other.recovered);
    }
}

/// What a simulation produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// The lowest-free-energy physically valid configurations found,
    /// sorted ascending by free energy (ties by charge configuration).
    /// Exact when `truncated` is false.
    pub states: Vec<SimulatedState>,
    /// Whether the search stopped early on a budget; when true,
    /// `states` covers only what was visited.
    pub truncated: bool,
    /// Work counters.
    pub stats: SimStats,
}

impl SimResult {
    /// The ground state, when one was found.
    pub fn ground_state(&self) -> Option<&SimulatedState> {
        self.states.first()
    }
}

/// The default worker-pool width: the `SIM_THREADS` environment
/// variable if set (minimum 1), else the machine's available
/// parallelism. Mirrors `fcn_pnr::default_num_threads` / `PNR_THREADS`.
pub fn default_sim_threads() -> usize {
    if let Ok(v) = std::env::var("SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Simulates a layout under the given parameters — the single entry
/// point behind the deprecated per-engine free functions.
///
/// # Panics
///
/// Panics under the engines' legacy preconditions: the exhaustive
/// engines on more than [`MAX_EXHAUSTIVE_SITES`] free sites (or
/// [`MAX_THREE_STATE_SITES`] sites in the three-state model), and the
/// two-state engines when `physical.three_state` is set.
pub fn simulate_with(layout: &SidbLayout, params: &SimParams) -> SimResult {
    let result = simulate_with_matrix(layout, params, None);
    emit_stats(&result.stats);
    result
}

/// Simulates a layout on a defective surface: the map's screened
/// external potentials are folded into the interaction matrix (see
/// [`crate::defects::DefectMap::external_potentials`]) and the selected
/// engine runs unchanged on top. An empty map delegates to
/// [`simulate_with`] and is bit-identical to the pristine path.
///
/// Defect-aware runs bypass the [`crate::cache::SimCache`]: cache keys
/// are translation-invariant, while a surface pins layouts to absolute
/// positions.
///
/// # Panics
///
/// Panics under the same engine preconditions as [`simulate_with`].
pub fn simulate_on_surface(
    layout: &SidbLayout,
    params: &SimParams,
    surface: &crate::defects::DefectMap,
) -> SimResult {
    if surface.is_empty() {
        return simulate_with(layout, params);
    }
    let matrix = InteractionMatrix::new(layout, &params.physical)
        .with_external(surface.external_potentials(layout, &params.physical));
    let result = simulate_with_matrix(layout, params, Some(&matrix));
    emit_stats(&result.stats);
    result
}

/// [`simulate_with`] with an optional precomputed interaction matrix
/// (shared across the input patterns of `GateDesign` validation) and no
/// telemetry emission — callers that merge several runs emit once.
pub(crate) fn simulate_with_matrix(
    layout: &SidbLayout,
    params: &SimParams,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    // External potentials (surface defects) are absolute-position
    // facts, but cache keys are translation-invariant — defect-aware
    // runs must not share entries with pristine ones, so they bypass
    // the cache entirely.
    let cacheable = params.budget.is_unbounded()
        && params.cache.is_some()
        && matrix.is_none_or(|m| !m.has_external());
    if cacheable {
        let cache = params.cache.as_ref().expect("checked");
        let key = crate::cache::SimKey::for_simulation(layout, params);
        if let Some((states, truncated)) = cache.lookup(&key) {
            fcn_telemetry::histogram("sidb.cache_lookup", 1);
            return SimResult {
                states,
                truncated,
                stats: SimStats {
                    cache_hits: 1,
                    ..SimStats::default()
                },
            };
        }
        fcn_telemetry::histogram("sidb.cache_lookup", 0);
        let mut result = simulate_core(layout, params, matrix);
        result.stats.cache_misses = 1;
        cache.store(key, &result.states, result.truncated);
        return result;
    }
    simulate_core(layout, params, matrix)
}

/// Records a run's counters into the ambient telemetry collector,
/// plus the `sidb.visited` histogram sample that lets reports show the
/// *distribution* of per-simulation sweep sizes, not just the total.
pub(crate) fn emit_stats(stats: &SimStats) {
    for (name, value) in [
        ("sidb.visited", stats.visited),
        ("sidb.pruned", stats.pruned),
        ("sidb.cache_hits", stats.cache_hits),
        ("sidb.cache_misses", stats.cache_misses),
        ("sidb.truncated", stats.truncated),
        ("sidb.recovered", stats.recovered),
    ] {
        if value > 0 {
            fcn_telemetry::counter(name, value);
        }
    }
    if stats.visited > 0 {
        fcn_telemetry::histogram("sidb.visited", stats.visited);
    }
}

/// Engine dispatch, no cache and no telemetry.
fn simulate_core(
    layout: &SidbLayout,
    params: &SimParams,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    let threads = params.threads.unwrap_or_else(default_sim_threads);
    if params.three_state {
        return run_three_state(layout, &params.physical, params.k, matrix);
    }
    match params.engine {
        SimEngine::Exhaustive => run_exhaustive(
            layout,
            &params.physical,
            params.k,
            &params.budget,
            threads,
            matrix,
        ),
        SimEngine::QuickExact | SimEngine::Auto => {
            run_quick_exact(layout, &params.physical, params.k, threads, matrix)
        }
        SimEngine::Anneal(anneal) => run_anneal(layout, &params.physical, &anneal, matrix),
    }
}

// ---------------------------------------------------------------------
// Canonical state ordering.

/// The total order the k-best lists maintain: ascending free energy,
/// ties broken by the charge configuration itself. A *total* order is
/// what makes the chunked sweep's merge independent of the partition —
/// the k smallest states are the same set in the same order no matter
/// how the visit sequence was split.
pub(crate) fn cmp_states(a: &SimulatedState, b: &SimulatedState) -> std::cmp::Ordering {
    a.free_energy
        .partial_cmp(&b.free_energy)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| {
            a.config
                .states()
                .iter()
                .map(|s| s.charge_number())
                .cmp(b.config.states().iter().map(|s| s.charge_number()))
        })
}

/// Inserts into a sorted k-best list, keeping at most `k` entries.
pub(crate) fn insert_state(best: &mut Vec<SimulatedState>, state: SimulatedState, k: usize) {
    let pos = match best.binary_search_by(|e| cmp_states(e, &state)) {
        Ok(p) | Err(p) => p,
    };
    best.insert(pos, state);
    best.truncate(k);
}

// ---------------------------------------------------------------------
// The partition worker pool.

/// The outcome of a partitioned run.
pub(crate) struct PoolRun<T> {
    /// Per-unit results in unit-index order.
    pub results: Vec<T>,
    /// Units recomputed serially after a worker fault.
    pub recovered: u64,
}

/// Runs `units` independent work items across `threads` workers and
/// returns their results in index order.
///
/// `work` must be a pure function of the unit index — that is what
/// makes the merged result independent of scheduling. Hosts the
/// `sidb.partition` fault point (see the module docs).
///
/// When the coordinator has an ambient telemetry collector and there is
/// more than one unit, each unit runs under a scoped child
/// [`fcn_telemetry::Collector`] with a `sim.unit:<idx>` span — worker
/// threads cannot see the coordinator's thread-local collector — and
/// the snapshots are adopted in index order after the pool joins. The
/// merged report (spans, histograms, trace events) is therefore
/// independent of both the thread count and the scheduling; only the
/// recorded wall times vary. Single-unit runs skip the wrapper: they
/// execute inline under the ambient collector at any width.
pub(crate) fn run_partitioned<T, F>(units: usize, threads: usize, work: F) -> PoolRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let instrument = units > 1 && fcn_telemetry::current().is_some();
    if !instrument {
        return run_partitioned_raw(units, threads, work);
    }
    let run = run_partitioned_raw(units, threads, |idx| {
        let child = Arc::new(fcn_telemetry::Collector::new("sim.pool"));
        let value = fcn_telemetry::with_collector(&child, || {
            let _unit = fcn_telemetry::span(format!("sim.unit:{idx}"));
            work(idx)
        });
        child.finish();
        (value, child.report())
    });
    let mut results = Vec::with_capacity(units);
    for (value, report) in run.results {
        fcn_telemetry::adopt_report(&report);
        results.push(value);
    }
    PoolRun {
        results,
        recovered: run.recovered,
    }
}

/// The scheduling core of [`run_partitioned`], telemetry-agnostic.
fn run_partitioned_raw<T, F>(units: usize, threads: usize, work: F) -> PoolRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if units == 0 {
        return PoolRun {
            results: Vec::new(),
            recovered: 0,
        };
    }
    if threads <= 1 || units == 1 {
        let mut recovered = 0;
        let results = (0..units)
            .map(|idx| {
                if catch_unwind(AssertUnwindSafe(|| {
                    fcn_budget::fault::check("sidb.partition")
                }))
                .is_err()
                {
                    recovered += 1;
                }
                work(idx)
            })
            .collect();
        return PoolRun { results, recovered };
    }

    let cursor = Mutex::new(0usize);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..units).map(|_| None).collect());
    let fault_plan = fcn_budget::fault::current();
    let workers = threads.min(units);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            // Named threads label the tracks in exported Perfetto
            // traces (`TELEMETRY_TRACE`).
            let spawned = std::thread::Builder::new()
                .name(format!("sim-worker-{worker}"))
                .spawn_scoped(scope, || {
                    let _fault_scope = fault_plan.clone().map(fcn_budget::fault::install);
                    loop {
                        let idx = {
                            let mut next = cursor.lock().expect("cursor lock");
                            if *next >= units {
                                break;
                            }
                            let idx = *next;
                            *next += 1;
                            idx
                        };
                        match catch_unwind(AssertUnwindSafe(|| {
                            fcn_budget::fault::check("sidb.partition")
                        })) {
                            // Injected panic: leave the slot empty; the
                            // coordinator recomputes it after the join.
                            Err(_) => continue,
                            // Injected exhaustion: stop parallel dispatch;
                            // the coordinator finishes serially.
                            Ok(Some(fcn_budget::fault::Fault::Exhaust)) => {
                                *cursor.lock().expect("cursor lock") = units;
                                continue;
                            }
                            Ok(_) => {}
                        }
                        if let Ok(value) = catch_unwind(AssertUnwindSafe(|| work(idx))) {
                            slots.lock().expect("slot lock")[idx] = Some(value);
                        }
                    }
                });
            spawned.expect("spawn sim worker");
        }
    });
    let mut recovered = 0;
    let results = slots
        .into_inner()
        .expect("slot lock")
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.unwrap_or_else(|| {
                // A faulted or panicked unit: recompute on the
                // coordinator. A genuine (non-injected) panic repeats
                // here and surfaces to the caller's unwind boundary.
                recovered += 1;
                work(idx)
            })
        })
        .collect();
    PoolRun { results, recovered }
}

// ---------------------------------------------------------------------
// Exhaustive Gray-code sweep (ExGS), chunk-partitioned.

/// Free sites below this count sweep as a single chunk, which keeps the
/// incremental floating-point arithmetic bitwise identical to the
/// historical serial engine on small instances.
const PAR_MIN_FREE_SITES: usize = 14;
/// Chunk count (as a power of two) for large sweeps. Layout-dependent
/// only — never a function of the thread count.
const PAR_CHUNK_BITS: u32 = 4;

/// How often the bounded Gray-code sweep polls the wall-clock deadline.
const DEADLINE_POLL_INTERVAL: u64 = 4096;

/// `2^n`, saturating.
fn pow2_saturating(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        1u64 << n
    }
}

/// Splits the sites into exponent-bearing free sites and sites that are
/// negative in *every* population-stable configuration: if even the
/// all-negative surroundings leave `V_i ≥ μ−`, a neutral state at `i`
/// can never be stable (the same pruning idea as SiQAD/fiction's exact
/// engines use). Perturbers and other isolated dots fall out of the
/// exponential search this way.
fn partition_sites(m: &InteractionMatrix, mu: f64) -> (Vec<usize>, Vec<bool>) {
    let n = m.num_sites();
    let mut free_sites: Vec<usize> = Vec::new();
    let mut fixed_negative = vec![false; n];
    for (i, fixed) in fixed_negative.iter_mut().enumerate() {
        let mut lower_bound: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| -m.interaction(i, j))
            .sum();
        if m.has_external() {
            lower_bound += m.external(i);
        }
        if lower_bound >= mu - 1e-9 {
            *fixed = true;
        } else {
            free_sites.push(i);
        }
    }
    (free_sites, fixed_negative)
}

/// Incremental sweep state of one chunk.
struct SweepState {
    config: ChargeConfiguration,
    potentials: Vec<f64>,
    energy: f64,
    num_negative: usize,
}

/// The canonical state at Gray-code step `step`: the fixed-negative
/// background (built in site order, exactly as the historical seed
/// loop), then one incremental toggle per set bit of `gray(step)` in
/// ascending free-site order. For `step == 0` this *is* the historical
/// seed, bit for bit.
fn seed_at(
    m: &InteractionMatrix,
    free_sites: &[usize],
    fixed_negative: &[bool],
    step: u64,
) -> SweepState {
    let n = m.num_sites();
    let mut config = ChargeConfiguration::neutral(n);
    // External potentials seed the running local potentials, so every
    // incremental toggle (`ΔE = Δn·V_i`) accounts the defect coupling
    // automatically; the fixed-negative background adds its own
    // `ext_i·n_i = −ext_i` terms below.
    let mut potentials = match m.external_slice() {
        Some(ext) => ext.to_vec(),
        None => vec![0.0f64; n],
    };
    let mut energy = 0.0f64;
    let mut num_negative = 0usize;
    for (i, &fixed) in fixed_negative.iter().enumerate() {
        if fixed {
            config.set_state(i, ChargeState::Negative);
            num_negative += 1;
        }
    }
    for (i, &fixed) in fixed_negative.iter().enumerate() {
        if !fixed {
            continue;
        }
        for (j, p) in potentials.iter_mut().enumerate() {
            if j != i {
                *p -= m.interaction(i, j);
            }
        }
        energy += (0..i)
            .filter(|&j| fixed_negative[j])
            .map(|j| m.interaction(i, j))
            .sum::<f64>();
        if m.has_external() {
            energy -= m.external(i);
        }
    }
    let mut state = SweepState {
        config,
        potentials,
        energy,
        num_negative,
    };
    let gray = step ^ (step >> 1);
    for (t, &site) in free_sites.iter().enumerate() {
        if (gray >> t) & 1 == 1 {
            toggle(m, &mut state, site);
        }
    }
    state
}

/// One Gray-code toggle, with the incremental update order of the
/// historical sweep (`ΔE = Δn_i · V_i` before the potentials move).
fn toggle(m: &InteractionMatrix, s: &mut SweepState, site: usize) {
    let (new_state, delta) = match s.config.state(site) {
        ChargeState::Neutral => (ChargeState::Negative, -1.0),
        ChargeState::Negative => (ChargeState::Neutral, 1.0),
        ChargeState::Positive => unreachable!("two-state sweep"),
    };
    s.energy += delta * s.potentials[site];
    s.num_negative = if new_state == ChargeState::Negative {
        s.num_negative + 1
    } else {
        s.num_negative - 1
    };
    s.config.set_state(site, new_state);
    for (j, p) in s.potentials.iter_mut().enumerate() {
        if j != site {
            *p += delta * m.interaction(site, j);
        }
    }
}

/// Considers the current configuration for the k-best list: population
/// stability from the maintained potentials, configuration stability
/// from the matrix.
fn consider(
    m: &InteractionMatrix,
    mu: f64,
    s: &SweepState,
    best: &mut Vec<SimulatedState>,
    k: usize,
    valid: &mut u64,
) {
    const EPS: f64 = 1e-9;
    let stable = s
        .config
        .states()
        .iter()
        .zip(&s.potentials)
        .all(|(state, &v)| match state {
            ChargeState::Negative => v >= mu - EPS,
            ChargeState::Neutral => v <= mu + EPS,
            ChargeState::Positive => false,
        });
    if !stable || !s.config.is_configuration_stable(m) {
        return;
    }
    *valid += 1;
    let free = s.energy + mu * s.num_negative as f64;
    insert_state(
        best,
        SimulatedState {
            config: s.config.clone(),
            electrostatic_energy: s.energy,
            free_energy: free,
        },
        k,
    );
}

/// Sweeps the Gray-code steps `[lo, hi)` of the free-site space and
/// returns the chunk's k-best list plus its valid-state count.
fn sweep_chunk(
    m: &InteractionMatrix,
    mu: f64,
    free_sites: &[usize],
    fixed_negative: &[bool],
    k: usize,
    lo: u64,
    hi: u64,
) -> (Vec<SimulatedState>, u64) {
    let mut state = seed_at(m, free_sites, fixed_negative, lo);
    let mut best = Vec::new();
    let mut valid = 0u64;
    consider(m, mu, &state, &mut best, k, &mut valid);
    for step in (lo + 1)..hi {
        let site = free_sites[step.trailing_zeros() as usize];
        toggle(m, &mut state, site);
        consider(m, mu, &state, &mut best, k, &mut valid);
    }
    (best, valid)
}

/// The exhaustive engine: fixed-negative preassignment, then a chunked
/// Gray-code sweep over the free sites. Bounded runs (and runs with a
/// fault plan armed) take the historical serial path so step counting,
/// deadline polling, and the `sidb.sweep` fault point behave exactly as
/// before.
pub(crate) fn run_exhaustive(
    layout: &SidbLayout,
    physical: &PhysicalParams,
    k: usize,
    budget: &StepBudget,
    threads: usize,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    assert!(
        !physical.three_state,
        "exhaustive search implements the two-state model"
    );
    let n = layout.num_sites();
    if n == 0 || k == 0 {
        return SimResult::default();
    }
    let owned;
    let m = match matrix {
        Some(m) => m,
        None => {
            owned = InteractionMatrix::new(layout, physical);
            &owned
        }
    };
    let mu = physical.mu_minus;
    let (free_sites, fixed_negative) = partition_sites(m, mu);
    let n_free = free_sites.len();
    assert!(
        n_free <= MAX_EXHAUSTIVE_SITES,
        "exhaustive search supports at most {MAX_EXHAUSTIVE_SITES} free sites"
    );
    let mut stats = SimStats {
        pruned: pow2_saturating(n).saturating_sub(pow2_saturating(n_free)),
        ..SimStats::default()
    };

    // Budget checks are strictly opt-in: with no limits configured and
    // no fault plan armed, the chunked sweep below performs the exact
    // arithmetic of the unbounded engine.
    let bounded = !budget.is_unbounded() || fcn_budget::fault::armed();
    if bounded {
        return run_exhaustive_bounded(m, mu, &free_sites, &fixed_negative, k, budget, stats);
    }

    let total = 1u64 << n_free;
    let chunks = if n_free >= PAR_MIN_FREE_SITES {
        1u64 << PAR_CHUNK_BITS
    } else {
        1
    };
    stats.visited = total;
    if chunks == 1 {
        let (best, _valid) = sweep_chunk(m, mu, &free_sites, &fixed_negative, k, 0, total);
        return SimResult {
            states: best,
            truncated: false,
            stats,
        };
    }
    let per = total / chunks;
    let run = run_partitioned(chunks as usize, threads, |c| {
        let lo = c as u64 * per;
        sweep_chunk(m, mu, &free_sites, &fixed_negative, k, lo, lo + per)
    });
    stats.recovered = run.recovered;
    let mut all: Vec<SimulatedState> = run.results.into_iter().flat_map(|(best, _)| best).collect();
    all.sort_by(cmp_states);
    all.truncate(k);
    SimResult {
        states: all,
        truncated: false,
        stats,
    }
}

/// The historical bounded serial sweep: visits at most
/// `budget.max_steps` configurations, polls the deadline every
/// [`DEADLINE_POLL_INTERVAL`] steps, and hosts the `sidb.sweep` fault
/// point (an injected `exhaust` truncates the sweep when any limit is
/// configured; an injected `panic` fires here).
fn run_exhaustive_bounded(
    m: &InteractionMatrix,
    mu: f64,
    free_sites: &[usize],
    fixed_negative: &[bool],
    k: usize,
    budget: &StepBudget,
    mut stats: SimStats,
) -> SimResult {
    let n_free = free_sites.len();
    let mut state = seed_at(m, free_sites, fixed_negative, 0);
    let mut best = Vec::new();
    let mut valid = 0u64;
    let mut truncated = false;
    let mut steps_taken = 1u64; // the seed configuration counts
    consider(m, mu, &state, &mut best, k, &mut valid);
    for step in 1u64..(1u64 << n_free) {
        if matches!(
            fcn_budget::fault::check("sidb.sweep"),
            Some(fcn_budget::fault::Fault::Exhaust)
        ) && !budget.is_unbounded()
        {
            truncated = true;
            break;
        }
        if budget.max_steps.is_some_and(|max| step >= max) {
            truncated = true;
            break;
        }
        if step % DEADLINE_POLL_INTERVAL == 0 && budget.deadline.expired() {
            truncated = true;
            break;
        }
        steps_taken += 1;
        let site = free_sites[step.trailing_zeros() as usize];
        toggle(m, &mut state, site);
        consider(m, mu, &state, &mut best, k, &mut valid);
    }
    stats.visited = steps_taken;
    stats.truncated = truncated as u64;
    SimResult {
        states: best,
        truncated,
        stats,
    }
}

// ---------------------------------------------------------------------
// Branch-and-bound (QuickExact) dispatch.

fn run_quick_exact(
    layout: &SidbLayout,
    physical: &PhysicalParams,
    k: usize,
    threads: usize,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    let run = crate::quickexact::low_energy_core(layout, physical, k, threads, matrix);
    SimResult {
        states: run.states,
        truncated: false,
        stats: SimStats {
            visited: run.nodes,
            pruned: run.prunes,
            recovered: run.recovered,
            ..SimStats::default()
        },
    }
}

// ---------------------------------------------------------------------
// Three-state exhaustive model.

fn run_three_state(
    layout: &SidbLayout,
    physical: &PhysicalParams,
    k: usize,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    let n = layout.num_sites();
    assert!(
        n <= MAX_THREE_STATE_SITES,
        "three-state exhaustive search supports at most {MAX_THREE_STATE_SITES} sites"
    );
    if n == 0 || k == 0 {
        return SimResult::default();
    }
    let physical = PhysicalParams {
        three_state: true,
        ..*physical
    };
    let mut m = InteractionMatrix::new(layout, &physical);
    // The three-state matrix is rebuilt with transition levels enabled,
    // so only the external potentials carry over from the caller's
    // matrix; interactions are recomputed.
    if let Some(src) = matrix {
        if let Some(ext) = src.external_slice() {
            if src.num_sites() == n {
                m = m.with_external(ext.to_vec());
            }
        }
    }
    let mut best: Vec<SimulatedState> = Vec::new();
    let mut config = ChargeConfiguration::neutral(n);
    let mut visited = 0u64;
    enumerate_three_state(&m, &mut config, 0, k, &mut best, &mut visited);
    SimResult {
        states: best,
        truncated: false,
        stats: SimStats {
            visited,
            ..SimStats::default()
        },
    }
}

fn enumerate_three_state(
    m: &InteractionMatrix,
    config: &mut ChargeConfiguration,
    depth: usize,
    k: usize,
    best: &mut Vec<SimulatedState>,
    visited: &mut u64,
) {
    if depth == config.len() {
        *visited += 1;
        if config.is_physically_valid(m) {
            let energy = config.electrostatic_energy(m);
            let free = config.free_energy(m);
            insert_state(
                best,
                SimulatedState {
                    config: config.clone(),
                    electrostatic_energy: energy,
                    free_energy: free,
                },
                k,
            );
        }
        return;
    }
    for state in [
        ChargeState::Negative,
        ChargeState::Neutral,
        ChargeState::Positive,
    ] {
        config.set_state(depth, state);
        enumerate_three_state(m, config, depth + 1, k, best, visited);
    }
    config.set_state(depth, ChargeState::Neutral);
}

// ---------------------------------------------------------------------
// Simulated annealing.

fn run_anneal(
    layout: &SidbLayout,
    physical: &PhysicalParams,
    anneal: &AnnealParams,
    matrix: Option<&InteractionMatrix>,
) -> SimResult {
    let n = layout.num_sites();
    let states: Vec<SimulatedState> =
        crate::simanneal::anneal_core(layout, physical, anneal, matrix)
            .into_iter()
            .collect();
    SimResult {
        truncated: false,
        stats: SimStats {
            visited: (anneal.instances.max(1) * anneal.sweeps * n) as u64,
            ..SimStats::default()
        },
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(pairs: i32) -> SidbLayout {
        let mut l = SidbLayout::new();
        for p in 0..pairs {
            l.add_site((0, 4 * p, 0));
            l.add_site((0, 4 * p + 1, 0));
        }
        l
    }

    #[test]
    fn thread_counts_agree_bitwise_on_chunked_sweeps() {
        // 9 pairs = 18 free sites: the sweep splits into 16 chunks.
        let layout = chain(9);
        let physical = PhysicalParams::default();
        let base = SimParams::new(physical)
            .with_engine(SimEngine::Exhaustive)
            .with_k(4);
        let one = simulate_with(&layout, &base.clone().with_threads(1));
        let four = simulate_with(&layout, &base.clone().with_threads(4));
        assert_eq!(one, four);
        assert_eq!(one.stats.visited, 1 << 18);
        assert!(!one.states.is_empty());
        for (a, b) in one.states.iter().zip(&four.states) {
            assert_eq!(a.free_energy.to_bits(), b.free_energy.to_bits());
        }
    }

    #[test]
    fn engines_agree_through_the_unified_entry() {
        // 12 free sites: large enough that branch-and-bound pruning
        // visits strictly fewer nodes than the 2^12 exhaustive sweep.
        let layout = chain(6);
        let physical = PhysicalParams::default();
        let ex = simulate_with(
            &layout,
            &SimParams::new(physical)
                .with_engine(SimEngine::Exhaustive)
                .with_k(3),
        );
        let qe = simulate_with(
            &layout,
            &SimParams::new(physical)
                .with_engine(SimEngine::QuickExact)
                .with_k(3),
        );
        assert_eq!(ex.states.len(), qe.states.len());
        for (a, b) in ex.states.iter().zip(&qe.states) {
            assert!((a.free_energy - b.free_energy).abs() < 1e-9);
            assert_eq!(a.config, b.config);
        }
        assert!(qe.stats.visited < ex.stats.visited || ex.stats.visited <= 2);
    }

    #[test]
    fn cache_hits_skip_the_search() {
        let layout = chain(3);
        let physical = PhysicalParams::default();
        let cache = SimCache::new();
        let params = SimParams::new(physical)
            .with_engine(SimEngine::QuickExact)
            .with_cache(cache.clone());
        let miss = simulate_with(&layout, &params);
        assert_eq!(miss.stats.cache_misses, 1);
        assert!(miss.stats.visited > 0);
        let hit = simulate_with(&layout, &params);
        assert_eq!(hit.stats.cache_hits, 1);
        assert_eq!(hit.stats.visited, 0);
        assert_eq!(hit.states, miss.states);
        // A translated copy of the layout is the same cache entry.
        let translated =
            SidbLayout::from_sites(layout.sites().iter().map(|s| (s.x + 7, s.y - 3, s.b)));
        let hit2 = simulate_with(&translated, &params);
        assert_eq!(hit2.stats.cache_hits, 1);
        assert_eq!(hit2.states.len(), miss.states.len());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bounded_budget_truncates_exactly_like_the_legacy_sweep() {
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = SimParams::new(PhysicalParams::default())
            .with_engine(SimEngine::Exhaustive)
            .with_k(3)
            .with_budget(StepBudget::unbounded().with_max_steps(4));
        let r = simulate_with(&layout, &params);
        assert!(r.truncated);
        assert_eq!(r.stats.visited, 4);
        assert_eq!(r.stats.truncated, 1);
    }

    #[test]
    fn injected_partition_panic_recovers_serially() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let layout = chain(9); // 18 free sites → 16 chunks through the pool
        let physical = PhysicalParams::default();
        let clean = simulate_with(
            &layout,
            &SimParams::new(physical)
                .with_engine(SimEngine::Exhaustive)
                .with_threads(4),
        );
        let plan = std::sync::Arc::new(FaultPlan::single("sidb.partition", Fault::Panic));
        let _scope = install(plan.clone());
        // A fault plan is armed, so the engine takes the bounded serial
        // path unless the budget stays unbounded... which it is; armed
        // faults force the serial sweep, where the partition point does
        // not fire. Exercise the pool directly instead.
        let run = run_partitioned(4, 4, |i| i * i);
        assert_eq!(run.results, vec![0, 1, 4, 9]);
        assert_eq!(run.recovered, 4);
        assert!(plan.hits("sidb.partition") >= 4);
        drop(_scope);
        let again = simulate_with(
            &layout,
            &SimParams::new(physical)
                .with_engine(SimEngine::Exhaustive)
                .with_threads(4),
        );
        assert_eq!(clean, again);
    }

    #[test]
    fn injected_partition_exhaust_degrades_to_serial() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let plan = std::sync::Arc::new(FaultPlan::single("sidb.partition", Fault::Exhaust));
        let _scope = install(plan.clone());
        let run = run_partitioned(8, 4, |i| i + 1);
        assert_eq!(run.results, (1..=8).collect::<Vec<_>>());
        assert!(plan.hits("sidb.partition") >= 1);
    }

    #[test]
    fn three_state_matches_two_state_on_sparse_layouts() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 0, 0), (8, 1, 0), (2, 3, 1)]);
        let physical = PhysicalParams::default();
        let two = simulate_with(
            &layout,
            &SimParams::new(physical).with_engine(SimEngine::Exhaustive),
        );
        let three = simulate_with(&layout, &SimParams::new(physical).with_three_state());
        assert_eq!(
            two.ground_state().expect("ok").config.states(),
            three.ground_state().expect("ok").config.states()
        );
        assert_eq!(three.stats.visited, 3u64.pow(4));
    }
}
