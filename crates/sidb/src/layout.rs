//! Dot-accurate SiDB layouts.

use fcn_coords::LatticeCoord;

/// A set of SiDB sites on the H-Si(100)-2×1 surface.
///
/// Sites are kept sorted and de-duplicated; indices into the layout are
/// stable once all sites are added and are used by
/// [`crate::charge::ChargeConfiguration`].
///
/// # Examples
///
/// ```
/// use sidb_sim::layout::SidbLayout;
///
/// let mut layout = SidbLayout::new();
/// layout.add_site((0, 0, 0));
/// layout.add_site((2, 0, 0));
/// layout.add_site((0, 0, 0)); // duplicates are ignored
/// assert_eq!(layout.num_sites(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SidbLayout {
    sites: Vec<LatticeCoord>,
}

impl SidbLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a layout from an iterator of sites.
    pub fn from_sites<I, C>(sites: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<LatticeCoord>,
    {
        let mut layout = Self::new();
        for s in sites {
            layout.add_site(s);
        }
        layout
    }

    /// Adds a site; duplicates are ignored. Returns the site's index.
    pub fn add_site(&mut self, site: impl Into<LatticeCoord>) -> usize {
        let site = site.into();
        match self.sites.binary_search(&site) {
            Ok(i) => i,
            Err(i) => {
                self.sites.insert(i, site);
                i
            }
        }
    }

    /// Merges all sites of `other` into this layout.
    pub fn merge(&mut self, other: &SidbLayout) {
        for &s in &other.sites {
            self.add_site(s);
        }
    }

    /// The sites in sorted order.
    pub fn sites(&self) -> &[LatticeCoord] {
        &self.sites
    }

    /// Number of SiDBs.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// True if the layout has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The index of a site, if present.
    pub fn index_of(&self, site: impl Into<LatticeCoord>) -> Option<usize> {
        self.sites.binary_search(&site.into()).ok()
    }

    /// True if the site exists in the layout.
    pub fn contains(&self, site: impl Into<LatticeCoord>) -> bool {
        self.index_of(site).is_some()
    }

    /// A copy translated by whole lattice cells.
    pub fn translated(&self, dx: i32, dy: i32) -> SidbLayout {
        SidbLayout::from_sites(self.sites.iter().map(|s| s.translated(dx, dy)))
    }

    /// A copy mirrored horizontally around lattice column `axis_x`.
    pub fn mirrored_x(&self, axis_x: i32) -> SidbLayout {
        SidbLayout::from_sites(self.sites.iter().map(|s| s.mirrored_x(axis_x)))
    }

    /// Bounding box `((min_x, min_y_row), (max_x, max_y_row))` in lattice
    /// cells, or `None` for an empty layout. `b`-offsets are ignored.
    pub fn bounding_box(&self) -> Option<((i32, i32), (i32, i32))> {
        if self.sites.is_empty() {
            return None;
        }
        let min_x = self.sites.iter().map(|s| s.x).min().expect("non-empty");
        let max_x = self.sites.iter().map(|s| s.x).max().expect("non-empty");
        let min_y = self.sites.iter().map(|s| s.y).min().expect("non-empty");
        let max_y = self.sites.iter().map(|s| s.y).max().expect("non-empty");
        Some(((min_x, min_y), (max_x, max_y)))
    }

    /// Physical bounding-box area in nm² (distance between extreme dot
    /// centers), or 0 for layouts with fewer than two sites.
    pub fn bounding_area_nm2(&self) -> f64 {
        let positions: Vec<(f64, f64)> = self.sites.iter().map(|s| s.position_nm()).collect();
        if positions.len() < 2 {
            return 0.0;
        }
        let min_x = positions.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max_x = positions
            .iter()
            .map(|p| p.0)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = positions.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let max_y = positions
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        (max_x - min_x) * (max_y - min_y)
    }

    /// Pairwise distance in ångström between sites `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn distance_angstrom(&self, i: usize, j: usize) -> f64 {
        self.sites[i].distance_angstrom(self.sites[j])
    }
}

impl FromIterator<LatticeCoord> for SidbLayout {
    fn from_iter<I: IntoIterator<Item = LatticeCoord>>(iter: I) -> Self {
        Self::from_sites(iter)
    }
}

impl Extend<LatticeCoord> for SidbLayout {
    fn extend<I: IntoIterator<Item = LatticeCoord>>(&mut self, iter: I) {
        for s in iter {
            self.add_site(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_sorted_and_unique() {
        let layout = SidbLayout::from_sites([(3, 0, 0), (1, 0, 0), (3, 0, 0), (2, 1, 1)]);
        assert_eq!(layout.num_sites(), 3);
        let xs: Vec<i32> = layout.sites().iter().map(|s| s.x).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(xs, sorted);
    }

    #[test]
    fn index_of_finds_sites() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (5, 2, 1)]);
        assert!(layout.contains((5, 2, 1)));
        assert!(!layout.contains((5, 2, 0)));
        assert_eq!(layout.index_of((0, 0, 0)), Some(0));
    }

    #[test]
    fn translation_preserves_distances() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 1, 1)]);
        let moved = layout.translated(7, -2);
        assert!((layout.distance_angstrom(0, 1) - moved.distance_angstrom(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn mirror_preserves_distance_multiset() {
        // Mirroring re-sorts the site list, so compare the sorted pairwise
        // distance multiset instead of index-aligned distances.
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 1, 1), (5, 0, 0)]);
        let mirrored = layout.mirrored_x(10);
        let dists = |l: &SidbLayout| {
            let mut d = Vec::new();
            for i in 0..l.num_sites() {
                for j in (i + 1)..l.num_sites() {
                    d.push(l.distance_angstrom(i, j));
                }
            }
            d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            d
        };
        for (a, b) in dists(&layout).iter().zip(dists(&mirrored)) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bounding_box_and_area() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (10, 5, 0)]);
        assert_eq!(layout.bounding_box(), Some(((0, 0), (10, 5))));
        // 10 cells * 0.384 nm by 5 rows * 0.768 nm.
        let area = layout.bounding_area_nm2();
        assert!((area - 3.84 * 3.84).abs() < 1e-9);
    }

    #[test]
    fn merge_unions_sites() {
        let mut a = SidbLayout::from_sites([(0, 0, 0)]);
        let b = SidbLayout::from_sites([(0, 0, 0), (1, 1, 0)]);
        a.merge(&b);
        assert_eq!(a.num_sites(), 2);
    }

    #[test]
    fn empty_layout_behaviour() {
        let layout = SidbLayout::new();
        assert!(layout.is_empty());
        assert_eq!(layout.bounding_box(), None);
        assert_eq!(layout.bounding_area_nm2(), 0.0);
    }
}
