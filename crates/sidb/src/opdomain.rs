//! Operational-domain analysis.
//!
//! The paper's outlook (Section 6) calls for "a streamlined operational
//! domain evaluation framework" — mapping the region of physical-
//! parameter space in which a gate design works, instead of a single
//! yes/no at nominal parameters. This module provides exactly that: a
//! sweep over `(ε_r, λ_TF)` that validates the design at every grid
//! point with the exact ground-state engine.
//!
//! The *operational domain* is a standard robustness metric in the SiDB
//! literature; fabricated devices experience parameter variation, so a
//! larger domain means a more manufacturable gate.
//!
//! # Sampling strategies
//!
//! Two strategies sit behind one API ([`DomainParams::with_strategy`]):
//!
//! * [`DomainStrategy::Dense`] simulates every grid point with the full
//!   pattern check — the legacy behavior and the A/B validation
//!   reference. Work counters are a pure function of the design and
//!   the grid.
//! * [`DomainStrategy::Adaptive`] (the default) spends simulations
//!   where the verdict can change. Starting from the window corners it
//!   recursively bisects the grid: a cell whose simulated corners
//!   *disagree* straddles the domain boundary and is split at its
//!   index midpoints (a contour-following refinement); a cell whose
//!   corners agree is split too while it is large, but once it is small
//!   (spans ≤ 2 grid steps) its interior is *inferred* from the
//!   agreeing corners instead of simulated. Per-point checks run in
//!   refute-fast mode (stop at the first truth-table refutation), so
//!   points deep in the non-operational region cost a single pattern
//!   simulation. Each sample records its provenance
//!   ([`DomainSample::provenance`]), so the saving is honest: inferred
//!   points are labelled, never passed off as simulated.
//!
//! Refinement proceeds in waves; each wave is dispatched over the
//! engine's partitioned worker pool in grid-index order, and every
//! scheduling decision is a pure function of previously simulated
//! verdicts — the sampled domain is therefore bit-identical at any
//! `OPDOMAIN_THREADS` width. Deadlines ([`DomainParams::with_budget`])
//! are honored between waves: an expired budget stops the sweep, marks
//! the remaining points [`SampleStatus::Unknown`], and records an
//! honest [`DomainDegradation`] instead of silently returning a
//! partial map as complete. The `opdomain.point` fault-injection point
//! exercises worker-loss (recompute) and point-skip (degradation)
//! paths deterministically.
//!
//! With [`DomainParams::with_cache`] repeated sweeps of the same design
//! (e.g. an adaptive sweep A/B-checked against a dense one) share
//! ground states through the content-addressed [`SimCache`]. Cache keys
//! include `ε_r` and `λ_TF`, so distinct grid points never alias.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::cache::SimCache;
use crate::engine::{self, SimParams, SimStats};
use crate::model::PhysicalParams;
use crate::operational::{CheckMode, Engine, GateDesign};
use fcn_budget::StepBudget;

/// The sweep grid for an operational-domain analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainGrid {
    /// Inclusive range of relative permittivity values.
    pub epsilon_r: (f64, f64),
    /// Inclusive range of Thomas–Fermi screening lengths, nm.
    pub lambda_tf_nm: (f64, f64),
    /// Number of samples per axis.
    pub steps: usize,
}

impl Default for DomainGrid {
    /// The commonly studied window around the experimentally calibrated
    /// point (ε_r = 5.6, λ_TF = 5 nm).
    fn default() -> Self {
        DomainGrid {
            epsilon_r: (4.0, 7.0),
            lambda_tf_nm: (3.5, 6.5),
            steps: 7,
        }
    }
}

impl DomainGrid {
    /// The parameter values along one axis.
    fn axis(range: (f64, f64), steps: usize) -> Vec<f64> {
        if steps <= 1 {
            return (0..steps).map(|_| range.0).collect();
        }
        (0..steps)
            .map(|i| range.0 + (range.1 - range.0) * i as f64 / (steps - 1) as f64)
            .collect()
    }

    /// All `(ε_r, λ_TF)` grid points, row-major in ε_r.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let eps = Self::axis(self.epsilon_r, self.steps);
        let lam = Self::axis(self.lambda_tf_nm, self.steps);
        eps.iter()
            .flat_map(|&e| lam.iter().map(move |&l| (e, l)))
            .collect()
    }

    /// Index (row-major in ε_r) of the grid point nearest to the given
    /// parameter pair, or `None` for an empty grid.
    pub fn nearest_index(&self, epsilon_r: f64, lambda_tf_nm: f64) -> Option<usize> {
        if self.steps == 0 {
            return None;
        }
        let axis_pos = |range: (f64, f64), v: f64| -> usize {
            if self.steps <= 1 || range.1 <= range.0 {
                return 0;
            }
            let t = (v - range.0) / (range.1 - range.0) * (self.steps - 1) as f64;
            (t.round().max(0.0) as usize).min(self.steps - 1)
        };
        Some(
            axis_pos(self.epsilon_r, epsilon_r) * self.steps
                + axis_pos(self.lambda_tf_nm, lambda_tf_nm),
        )
    }
}

/// How a domain sweep chooses which grid points to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainStrategy {
    /// Simulate every grid point, full pattern check per point. The
    /// legacy behavior and the validation reference for A/B runs.
    Dense,
    /// Boundary-following bisection with interior inference and
    /// refute-fast per-point checks (see the module docs). Same
    /// per-point verdicts, a fraction of the simulations.
    Adaptive,
}

impl DomainStrategy {
    fn from_env() -> Option<DomainStrategy> {
        match std::env::var("OPDOMAIN_STRATEGY").ok()?.trim() {
            "dense" => Some(DomainStrategy::Dense),
            "adaptive" => Some(DomainStrategy::Adaptive),
            _ => None,
        }
    }
}

/// The default domain-sweep pool width: the `OPDOMAIN_THREADS`
/// environment variable if set (minimum 1), else
/// [`engine::default_sim_threads`] (which reads `SIM_THREADS`).
pub fn default_opdomain_threads() -> usize {
    if let Ok(v) = std::env::var("OPDOMAIN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    engine::default_sim_threads()
}

/// Parameters of one operational-domain sweep, built by chaining.
///
/// Mirrors [`SimParams`] / `FlowOptions` / `DesignerOptions`: construct
/// with [`DomainParams::new`] (or `Default`), then chain `with_*`
/// calls. `#[non_exhaustive]` so fields can be added without breaking
/// callers.
///
/// # Examples
///
/// ```
/// use sidb_sim::engine::{SimEngine, SimParams};
/// use sidb_sim::model::PhysicalParams;
/// use sidb_sim::opdomain::{DomainGrid, DomainParams, DomainStrategy};
///
/// let params = DomainParams::new(
///     SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact),
/// )
/// .with_grid(DomainGrid { steps: 5, ..Default::default() })
/// .with_strategy(DomainStrategy::Adaptive)
/// .with_threads(2);
/// assert_eq!(params.grid.steps, 5);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct DomainParams {
    /// Simulation parameters for the non-swept quantities (μ−, engine,
    /// cache, model flags). The grid overrides `ε_r` and `λ_TF` per
    /// sample.
    pub sim: SimParams,
    /// The sweep window and resolution.
    pub grid: DomainGrid,
    /// Sampling strategy; `None` defers to the `OPDOMAIN_STRATEGY`
    /// environment variable (`dense` / `adaptive`), then to
    /// [`DomainStrategy::Adaptive`].
    pub strategy: Option<DomainStrategy>,
    /// Worker-pool width for the per-point checks; `None` defers to
    /// [`default_opdomain_threads`].
    pub threads: Option<usize>,
    /// Sweep budget: the deadline is honored between refinement waves,
    /// `max_steps` caps the number of *simulated grid points*. An
    /// exhausted budget degrades honestly (see [`DomainDegradation`]).
    pub budget: StepBudget,
    /// The nominal physical-parameter point `(ε_r, λ_TF)` that
    /// [`OperationalDomain::nominal_operational`] reports on.
    pub nominal: (f64, f64),
}

impl DomainParams {
    /// A sweep of the default window with the given simulation
    /// parameters, environment-default strategy and threads, no
    /// budget, and the experimentally calibrated nominal point
    /// (ε_r = 5.6, λ_TF = 5 nm).
    pub fn new(sim: SimParams) -> Self {
        DomainParams {
            sim,
            grid: DomainGrid::default(),
            strategy: None,
            threads: None,
            budget: StepBudget::unbounded(),
            nominal: (5.6, 5.0),
        }
    }

    /// Sets the sweep window and resolution.
    #[must_use]
    pub fn with_grid(mut self, grid: DomainGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Pins the sampling strategy (overrides `OPDOMAIN_STRATEGY`).
    #[must_use]
    pub fn with_strategy(mut self, strategy: DomainStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Pins the worker-pool width (`1` = serial; overrides
    /// `OPDOMAIN_THREADS`).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Bounds the sweep by a wall-clock deadline and/or a cap on
    /// simulated grid points.
    #[must_use]
    pub fn with_budget(mut self, budget: StepBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Shares ground states through `cache` (forwarded to the
    /// per-point simulations).
    #[must_use]
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.sim = self.sim.with_cache(cache);
        self
    }

    /// Sets the nominal `(ε_r, λ_TF)` point reported by
    /// [`OperationalDomain::nominal_operational`].
    #[must_use]
    pub fn with_nominal(mut self, epsilon_r: f64, lambda_tf_nm: f64) -> Self {
        self.nominal = (epsilon_r, lambda_tf_nm);
        self
    }

    /// The strategy after environment-variable resolution.
    pub fn effective_strategy(&self) -> DomainStrategy {
        self.strategy
            .or_else(DomainStrategy::from_env)
            .unwrap_or(DomainStrategy::Adaptive)
    }

    /// The pool width after environment-variable resolution.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_opdomain_threads)
    }
}

impl Default for DomainParams {
    fn default() -> Self {
        DomainParams::new(SimParams::default())
    }
}

/// The verdict at one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStatus {
    /// The design reproduces its truth table at this point.
    Operational,
    /// At least one input pattern fails at this point.
    NonOperational,
    /// The point was never decided (budget-skipped or faulted).
    Unknown,
}

/// How a sample's verdict was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The ground states were simulated at this point.
    Simulated,
    /// The verdict was inferred from agreeing simulated neighbors
    /// enclosing the point (adaptive strategy only).
    Inferred,
    /// The point was skipped (deadline, step budget, or injected
    /// fault); its status is [`SampleStatus::Unknown`].
    Skipped,
}

/// One grid point of a domain sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSample {
    /// Relative permittivity at this point.
    pub epsilon_r: f64,
    /// Thomas–Fermi screening length at this point, nm.
    pub lambda_tf_nm: f64,
    /// The verdict.
    pub status: SampleStatus,
    /// Whether the verdict was simulated, inferred, or skipped.
    pub provenance: Provenance,
}

impl DomainSample {
    /// True if the design is operational at this point.
    pub fn is_operational(&self) -> bool {
        self.status == SampleStatus::Operational
    }
}

/// Work counters of one domain sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Grid points in the sweep window.
    pub points: u64,
    /// Points whose verdict was simulated.
    pub simulated: u64,
    /// Points whose verdict was inferred from enclosing neighbors.
    pub inferred: u64,
    /// Points skipped by a budget or an injected fault.
    pub skipped: u64,
    /// Ground-state simulations issued (per-pattern; the unit the
    /// adaptive-vs-dense saving is measured in).
    pub pattern_sims: u64,
    /// Refinement waves dispatched over the worker pool.
    pub rounds: u64,
    /// Summed simulation work counters.
    pub sim: SimStats,
}

/// What cut a domain sweep short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainTrigger {
    /// The wall-clock deadline expired between waves.
    Deadline,
    /// The simulated-point cap (`StepBudget::max_steps`) was reached.
    Budget,
    /// An injected `opdomain.point` fault skipped a grid point.
    Fault,
}

/// An honest record that a sweep did not fully decide its grid.
///
/// Mirrors the designer's `DesignDegradation`: the sweep still returns
/// a usable (partial) domain, but the caller can see that — and why —
/// some points are [`SampleStatus::Unknown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDegradation {
    /// What stopped the sweep.
    pub trigger: DomainTrigger,
    /// Human-readable context (remaining points, fault position, …).
    pub detail: String,
}

/// The result of an operational-domain sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalDomain {
    /// The grid that was swept.
    pub grid: DomainGrid,
    /// The nominal `(ε_r, λ_TF)` point this sweep reports on.
    pub nominal: (f64, f64),
    /// Per grid point samples, row-major in ε_r.
    pub samples: Vec<DomainSample>,
    /// Work counters.
    pub stats: DomainStats,
    /// Set when the sweep was cut short (see [`DomainDegradation`]).
    pub degradation: Option<DomainDegradation>,
}

impl OperationalDomain {
    /// Fraction of grid points at which the design is operational.
    /// Unknown points count against the coverage — a degraded sweep
    /// never inflates the metric.
    pub fn coverage(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.is_operational()).count() as f64
            / self.samples.len() as f64
    }

    /// Whether the grid point closest to the nominal parameters is
    /// operational — `None` when that point was never decided (empty
    /// grid, budget-skipped, or faulted), rather than a misleading
    /// `false`.
    pub fn nominal_operational(&self) -> Option<bool> {
        let (ne, nl) = self.nominal;
        let sample = self.samples.iter().min_by(|a, b| {
            let da = (a.epsilon_r - ne).powi(2) + (a.lambda_tf_nm - nl).powi(2);
            let db = (b.epsilon_r - ne).powi(2) + (b.lambda_tf_nm - nl).powi(2);
            da.partial_cmp(&db).expect("finite")
        })?;
        match sample.status {
            SampleStatus::Operational => Some(true),
            SampleStatus::NonOperational => Some(false),
            SampleStatus::Unknown => None,
        }
    }

    /// The sample nearest to the given parameter pair.
    pub fn sample_at(&self, epsilon_r: f64, lambda_tf_nm: f64) -> Option<&DomainSample> {
        let idx = self.grid.nearest_index(epsilon_r, lambda_tf_nm)?;
        // Samples are produced row-major, but render defensively: look
        // the point up through the grid, not through the ordering.
        self.samples
            .iter()
            .find(|s| self.grid.nearest_index(s.epsilon_r, s.lambda_tf_nm) == Some(idx))
    }

    /// A textual map of the domain: rows are ε_r values (ascending),
    /// `■` marks operational points, `·` non-operational ones, and `?`
    /// points a degraded sweep never decided.
    ///
    /// Samples are located through the grid (nearest index), not
    /// through their ordering, so maps render correctly for any sample
    /// order a strategy might produce.
    pub fn render_ascii(&self) -> String {
        let n = self.grid.steps;
        let mut cells: Vec<Option<SampleStatus>> = vec![None; n * n];
        for s in &self.samples {
            if let Some(idx) = self.grid.nearest_index(s.epsilon_r, s.lambda_tf_nm) {
                cells[idx] = Some(s.status);
            }
        }
        let eps = DomainGrid::axis(self.grid.epsilon_r, n);
        let mut out = String::new();
        for (row, &e) in eps.iter().enumerate() {
            out.push_str(&format!("ε_r {e:>5.2} | "));
            for cell in cells.iter().skip(row * n).take(n) {
                out.push(match cell {
                    Some(SampleStatus::Operational) => '■',
                    Some(SampleStatus::NonOperational) => '·',
                    Some(SampleStatus::Unknown) | None => '?',
                });
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "          λ_TF {:.1} … {:.1} nm →\n",
            self.grid.lambda_tf_nm.0, self.grid.lambda_tf_nm.1
        ));
        out
    }
}

impl GateDesign {
    /// Sweeps the operational domain of this design.
    ///
    /// See the [module docs](self) for the sampling strategies. The
    /// sampled domain is bit-identical at any
    /// [`DomainParams::with_threads`] width; only budget-degraded
    /// sweeps (which depend on the wall clock) may differ between
    /// runs, and those carry an explicit [`DomainDegradation`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sidb_sim::engine::{SimEngine, SimParams};
    /// use sidb_sim::opdomain::{DomainGrid, DomainParams};
    /// use sidb_sim::operational::GateDesign;
    /// use sidb_sim::bdl::{BdlPair, InputPort, OutputPort};
    /// use sidb_sim::layout::SidbLayout;
    /// use sidb_sim::model::PhysicalParams;
    ///
    /// // A three-pair BDL wire.
    /// let design = GateDesign {
    ///     name: "wire".into(),
    ///     body: SidbLayout::from_sites([(0,0,0),(0,1,0),(0,4,0),(0,5,0),(0,8,0),(0,9,0)]),
    ///     inputs: vec![InputPort {
    ///         pair: BdlPair::new((0,0,0),(0,1,0)),
    ///         perturber_zero: (0,-4,0).into(),
    ///         perturber_one: (0,-3,0).into(),
    ///     }],
    ///     outputs: vec![OutputPort {
    ///         pair: BdlPair::new((0,8,0),(0,9,0)),
    ///         perturber: Some((0,12,1).into()),
    ///     }],
    ///     truth_table: vec![vec![false], vec![true]],
    /// };
    /// let params = DomainParams::new(
    ///     SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact),
    /// )
    /// .with_grid(DomainGrid { steps: 3, ..Default::default() });
    /// let domain = design.operational_domain(&params);
    /// assert_eq!(domain.samples.len(), 9);
    /// assert_eq!(domain.stats.simulated + domain.stats.inferred, 9);
    /// ```
    pub fn operational_domain(&self, params: &DomainParams) -> OperationalDomain {
        let _sweep_span = fcn_telemetry::span("opdomain.sweep");
        let strategy = params.effective_strategy();
        let n = params.grid.steps;
        let mut sweep = Sweep {
            design: self,
            sim: params.sim.clone(),
            mode: match strategy {
                DomainStrategy::Dense => CheckMode::Full,
                DomainStrategy::Adaptive => CheckMode::RefuteFast,
            },
            grid: params.grid,
            eps: DomainGrid::axis(params.grid.epsilon_r, n),
            lam: DomainGrid::axis(params.grid.lambda_tf_nm, n),
            threads: params.effective_threads(),
            budget: params.budget,
            decided: vec![None; n * n],
            stats: DomainStats::default(),
            degradation: None,
        };
        match strategy {
            DomainStrategy::Dense => sweep.run_dense(),
            DomainStrategy::Adaptive => sweep.run_adaptive(),
        }
        sweep.finalize(params.nominal)
    }
}

// ---------------------------------------------------------------------
// Sweep internals.

/// Cells whose corners agree and span at most this many grid steps per
/// axis have their interior inferred instead of simulated. Span 2 is
/// the conservative setting: a cell infers at most the five points
/// between its corners, and any disagreement anywhere in its
/// neighborhood triggers full bisection down to single points.
const INFER_SPAN: usize = 2;

/// What checking one grid point produced.
enum PointOutcome {
    /// The point was simulated.
    Checked {
        operational: bool,
        stats: SimStats,
        pattern_sims: u64,
    },
    /// An injected `opdomain.point` panic unwound the check; the
    /// coordinator recomputes the point (mirroring `run_partitioned`).
    Faulted,
    /// An injected `opdomain.point` exhaustion skipped the point.
    Skipped,
}

/// Simulates one grid point, hosting the `opdomain.point` fault.
fn check_point(
    design: &GateDesign,
    sim: &SimParams,
    mode: CheckMode,
    eps: f64,
    lam: f64,
) -> PointOutcome {
    if fcn_budget::fault::armed() {
        match catch_unwind(AssertUnwindSafe(|| {
            fcn_budget::fault::check("opdomain.point")
        })) {
            Err(_) => return PointOutcome::Faulted,
            Ok(Some(fcn_budget::fault::Fault::Exhaust)) => return PointOutcome::Skipped,
            Ok(_) => {}
        }
    }
    check_point_unchecked(design, sim, mode, eps, lam)
}

/// [`check_point`] without the fault check — the coordinator's
/// recompute path, like `run_partitioned`'s.
fn check_point_unchecked(
    design: &GateDesign,
    sim: &SimParams,
    mode: CheckMode,
    eps: f64,
    lam: f64,
) -> PointOutcome {
    let point_sim = SimParams {
        physical: PhysicalParams {
            epsilon_r: eps,
            lambda_tf_nm: lam,
            ..sim.physical
        },
        ..sim.clone()
    }
    .with_threads(1);
    let outcome = design.check_with_mode(&point_sim, mode);
    PointOutcome::Checked {
        operational: outcome.report.is_operational(),
        stats: outcome.report.stats,
        pattern_sims: u64::from(outcome.patterns_simulated),
    }
}

/// An index rectangle of the grid, refined by bisection.
struct Cell {
    e0: usize,
    e1: usize,
    l0: usize,
    l1: usize,
}

/// What processing a cell did.
enum CellAction {
    /// A corner is still waiting on a simulation wave.
    Waiting,
    /// The cell was resolved (interior inferred, or nothing to do).
    Done,
    /// The cell was bisected into the given children.
    Subdivided(Vec<Cell>),
}

/// The mutable state of one sweep.
struct Sweep<'a> {
    design: &'a GateDesign,
    sim: SimParams,
    mode: CheckMode,
    grid: DomainGrid,
    eps: Vec<f64>,
    lam: Vec<f64>,
    threads: usize,
    budget: StepBudget,
    /// Per grid point: the decided status and provenance, `None` while
    /// undecided.
    decided: Vec<Option<(SampleStatus, Provenance)>>,
    stats: DomainStats,
    degradation: Option<DomainDegradation>,
}

impl Sweep<'_> {
    fn n(&self) -> usize {
        self.grid.steps
    }

    /// Checks the wave budget; records the degradation on first
    /// exhaustion. Called before dispatching a wave, never after the
    /// final one — a completed sweep is never marked degraded.
    fn out_of_budget(&mut self, undecided: usize) -> bool {
        if self.budget.deadline.expired() {
            if self.degradation.is_none() {
                self.degradation = Some(DomainDegradation {
                    trigger: DomainTrigger::Deadline,
                    detail: format!("deadline expired with {undecided} grid points undecided"),
                });
            }
            return true;
        }
        if let Some(max) = self.budget.max_steps {
            if self.stats.simulated >= max {
                if self.degradation.is_none() {
                    self.degradation = Some(DomainDegradation {
                        trigger: DomainTrigger::Budget,
                        detail: format!(
                            "simulated-point cap {max} reached with {undecided} grid points undecided"
                        ),
                    });
                }
                return true;
            }
        }
        false
    }

    fn undecided(&self) -> usize {
        self.decided.iter().filter(|d| d.is_none()).count()
    }

    /// Dispatches one wave of point simulations over the worker pool
    /// (grid-index order) and records the outcomes.
    fn run_wave(&mut self, points: &[usize]) {
        if points.is_empty() {
            return;
        }
        let n = self.n();
        let design = self.design;
        let sim = &self.sim;
        let mode = self.mode;
        let eps = &self.eps;
        let lam = &self.lam;
        let run = engine::run_partitioned(points.len(), self.threads, |i| {
            let idx = points[i];
            check_point(design, sim, mode, eps[idx / n], lam[idx % n])
        });
        fcn_telemetry::histogram("opdomain.round_points", points.len() as u64);
        self.stats.rounds += 1;
        self.stats.sim.recovered += run.recovered;
        for (i, outcome) in run.results.into_iter().enumerate() {
            let idx = points[i];
            let outcome = match outcome {
                PointOutcome::Faulted => {
                    // The injected panic unwound the point check:
                    // recompute on the coordinator, without re-arming
                    // the fault (mirrors `run_partitioned`'s recovery).
                    self.stats.sim.recovered += 1;
                    check_point_unchecked(
                        self.design,
                        &self.sim,
                        self.mode,
                        self.eps[idx / n],
                        self.lam[idx % n],
                    )
                }
                other => other,
            };
            match outcome {
                PointOutcome::Checked {
                    operational,
                    stats,
                    pattern_sims,
                } => {
                    self.stats.sim.merge(&stats);
                    self.stats.pattern_sims += pattern_sims;
                    self.stats.simulated += 1;
                    let status = if operational {
                        SampleStatus::Operational
                    } else {
                        SampleStatus::NonOperational
                    };
                    self.decided[idx] = Some((status, Provenance::Simulated));
                }
                PointOutcome::Skipped => {
                    self.stats.skipped += 1;
                    self.decided[idx] = Some((SampleStatus::Unknown, Provenance::Skipped));
                    if self.degradation.is_none() {
                        self.degradation = Some(DomainDegradation {
                            trigger: DomainTrigger::Fault,
                            detail: format!(
                                "injected opdomain.point fault skipped grid point {idx}"
                            ),
                        });
                    }
                }
                PointOutcome::Faulted => unreachable!("faulted points are recomputed above"),
            }
        }
    }

    /// Dense strategy: every point simulated, one wave per ε_r row (the
    /// deadline checkpoints between rows).
    fn run_dense(&mut self) {
        let n = self.n();
        for row in 0..n {
            if self.out_of_budget(self.undecided()) {
                break;
            }
            let points: Vec<usize> = (row * n..(row + 1) * n).collect();
            self.run_wave(&points);
        }
    }

    /// Adaptive strategy: recursive bisection from the window corners
    /// (see the module docs).
    fn run_adaptive(&mut self) {
        let n = self.n();
        if n == 0 {
            return;
        }
        if n == 1 {
            if !self.out_of_budget(1) {
                self.run_wave(&[0]);
            }
            return;
        }
        let mut scheduled = vec![false; n * n];
        let mut pending: Vec<usize> = Vec::new();
        for idx in [0, n - 1, (n - 1) * n, n * n - 1] {
            if !scheduled[idx] {
                scheduled[idx] = true;
                pending.push(idx);
            }
        }
        let mut cells = vec![Cell {
            e0: 0,
            e1: n - 1,
            l0: 0,
            l1: n - 1,
        }];
        loop {
            if pending.is_empty() {
                break;
            }
            if self.out_of_budget(self.undecided()) {
                break;
            }
            let mut wave = std::mem::take(&mut pending);
            wave.sort_unstable();
            self.run_wave(&wave);
            // Process the cell queue to a fixed point: inference can
            // decide a point another cell was waiting on, so passes
            // repeat (in deterministic order) until nothing changes.
            loop {
                let mut progressed = false;
                let mut waiting = Vec::new();
                let mut queue: VecDeque<Cell> = std::mem::take(&mut cells).into();
                while let Some(cell) = queue.pop_front() {
                    match self.process_cell(&cell, &mut scheduled, &mut pending) {
                        CellAction::Waiting => waiting.push(cell),
                        CellAction::Done => progressed = true,
                        CellAction::Subdivided(children) => {
                            progressed = true;
                            for child in children {
                                queue.push_back(child);
                            }
                        }
                    }
                }
                cells = waiting;
                if !progressed {
                    break;
                }
            }
        }
    }

    /// Resolves one cell: infer an agreeing small cell's interior,
    /// bisect anything else that still has undecided points.
    fn process_cell(
        &mut self,
        cell: &Cell,
        scheduled: &mut [bool],
        pending: &mut Vec<usize>,
    ) -> CellAction {
        let n = self.n();
        let idx = |e: usize, l: usize| e * n + l;
        let corner_indices = [
            idx(cell.e0, cell.l0),
            idx(cell.e0, cell.l1),
            idx(cell.e1, cell.l0),
            idx(cell.e1, cell.l1),
        ];
        let mut corners = [SampleStatus::Unknown; 4];
        for (slot, &c) in corners.iter_mut().zip(&corner_indices) {
            match self.decided[c] {
                Some((status, _)) => *slot = status,
                None => return CellAction::Waiting,
            }
        }
        let espan = cell.e1 - cell.e0;
        let lspan = cell.l1 - cell.l0;
        let agree = corners[0] != SampleStatus::Unknown && corners.iter().all(|s| *s == corners[0]);
        if agree && espan <= INFER_SPAN && lspan <= INFER_SPAN {
            for e in cell.e0..=cell.e1 {
                for l in cell.l0..=cell.l1 {
                    let i = idx(e, l);
                    if self.decided[i].is_none() && !scheduled[i] {
                        self.decided[i] = Some((corners[0], Provenance::Inferred));
                        self.stats.inferred += 1;
                    }
                }
            }
            return CellAction::Done;
        }
        if espan <= 1 && lspan <= 1 {
            return CellAction::Done;
        }
        // Bisect: probe the midpoint sub-lattice, recurse on the
        // children. Probes already decided (or scheduled) are free.
        let es: Vec<usize> = if espan > 1 {
            vec![cell.e0, cell.e0 + espan / 2, cell.e1]
        } else {
            vec![cell.e0, cell.e1]
        };
        let ls: Vec<usize> = if lspan > 1 {
            vec![cell.l0, cell.l0 + lspan / 2, cell.l1]
        } else {
            vec![cell.l0, cell.l1]
        };
        for &e in &es {
            for &l in &ls {
                let i = idx(e, l);
                if self.decided[i].is_none() && !scheduled[i] {
                    scheduled[i] = true;
                    pending.push(i);
                }
            }
        }
        let mut children = Vec::new();
        for we in es.windows(2) {
            for wl in ls.windows(2) {
                children.push(Cell {
                    e0: we[0],
                    e1: we[1],
                    l0: wl[0],
                    l1: wl[1],
                });
            }
        }
        CellAction::Subdivided(children)
    }

    /// Assembles the row-major sample list and emits telemetry.
    fn finalize(mut self, nominal: (f64, f64)) -> OperationalDomain {
        let n = self.n();
        let mut samples = Vec::with_capacity(n * n);
        for e in 0..n {
            for l in 0..n {
                let (status, provenance) = match self.decided[e * n + l] {
                    Some(decided) => decided,
                    None => {
                        self.stats.skipped += 1;
                        (SampleStatus::Unknown, Provenance::Skipped)
                    }
                };
                samples.push(DomainSample {
                    epsilon_r: self.eps[e],
                    lambda_tf_nm: self.lam[l],
                    status,
                    provenance,
                });
            }
        }
        self.stats.points = (n * n) as u64;
        for (name, value) in [
            ("opdomain.points", self.stats.points),
            ("opdomain.simulated", self.stats.simulated),
            ("opdomain.inferred", self.stats.inferred),
            ("opdomain.skipped", self.stats.skipped),
            ("opdomain.pattern_sims", self.stats.pattern_sims),
            ("opdomain.rounds", self.stats.rounds),
            ("opdomain.degraded", u64::from(self.degradation.is_some())),
        ] {
            if value > 0 {
                fcn_telemetry::counter(name, value);
            }
        }
        engine::emit_stats(&self.stats.sim);
        OperationalDomain {
            grid: self.grid,
            nominal,
            samples,
            stats: self.stats,
            degradation: self.degradation,
        }
    }
}

// ---------------------------------------------------------------------
// Deprecated entry points.

/// Sweeps the operational domain of a design with the dense strategy.
///
/// `sim.physical` supplies the non-swept parameters (μ−, model flags);
/// the grid overrides ε_r and λ_TF per sample.
#[deprecated(
    since = "0.8.0",
    note = "use `GateDesign::operational_domain(&DomainParams)`"
)]
pub fn operational_domain_with(
    design: &GateDesign,
    grid: DomainGrid,
    sim: &SimParams,
) -> OperationalDomain {
    let mut params = DomainParams::new(sim.clone())
        .with_grid(grid)
        .with_strategy(DomainStrategy::Dense);
    if let Some(threads) = sim.threads {
        params = params.with_threads(threads);
    }
    design.operational_domain(&params)
}

/// Sweeps the operational domain of a design with the dense strategy.
///
/// `base` supplies the non-swept parameters (μ−, model flags); the grid
/// overrides ε_r and λ_TF per sample.
#[deprecated(
    since = "0.6.0",
    note = "use `GateDesign::operational_domain(&DomainParams)`"
)]
pub fn operational_domain(
    design: &GateDesign,
    base: &PhysicalParams,
    grid: DomainGrid,
    engine: Engine,
) -> OperationalDomain {
    #[allow(deprecated)]
    operational_domain_with(design, grid, &SimParams::new(*base).with_engine(engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdl::{BdlPair, InputPort, OutputPort};
    use crate::layout::SidbLayout;
    use fcn_budget::Deadline;

    fn wire() -> GateDesign {
        GateDesign {
            name: "wire".into(),
            body: SidbLayout::from_sites([
                (0, 0, 0),
                (0, 1, 0),
                (0, 4, 0),
                (0, 5, 0),
                (0, 8, 0),
                (0, 9, 0),
            ]),
            inputs: vec![InputPort {
                pair: BdlPair::new((0, 0, 0), (0, 1, 0)),
                perturber_zero: (0, -4, 0).into(),
                perturber_one: (0, -3, 0).into(),
            }],
            outputs: vec![OutputPort {
                pair: BdlPair::new((0, 8, 0), (0, 9, 0)),
                perturber: Some((0, 12, 1).into()),
            }],
            truth_table: vec![vec![false], vec![true]],
        }
    }

    fn params() -> DomainParams {
        DomainParams::new(SimParams::new(PhysicalParams::default()).with_engine(Engine::QuickExact))
            .with_grid(DomainGrid {
                steps: 3,
                ..Default::default()
            })
    }

    #[test]
    fn grid_points_cover_axes() {
        let grid = DomainGrid {
            epsilon_r: (4.0, 6.0),
            lambda_tf_nm: (4.0, 6.0),
            steps: 3,
        };
        let pts = grid.points();
        assert_eq!(pts.len(), 9);
        assert!(pts.contains(&(4.0, 4.0)));
        assert!(pts.contains(&(6.0, 6.0)));
        assert!(pts.contains(&(5.0, 5.0)));
    }

    #[test]
    fn nearest_index_snaps_to_the_grid() {
        let grid = DomainGrid {
            epsilon_r: (4.0, 6.0),
            lambda_tf_nm: (4.0, 6.0),
            steps: 3,
        };
        assert_eq!(grid.nearest_index(4.0, 4.0), Some(0));
        assert_eq!(grid.nearest_index(6.0, 6.0), Some(8));
        assert_eq!(grid.nearest_index(5.1, 4.9), Some(4));
        assert_eq!(grid.nearest_index(-100.0, 100.0), Some(2));
        assert_eq!(
            DomainGrid { steps: 0, ..grid }.nearest_index(5.0, 5.0),
            None
        );
    }

    #[test]
    fn builder_chains_configure_the_sweep() {
        let p = params()
            .with_strategy(DomainStrategy::Dense)
            .with_threads(2)
            .with_nominal(4.1, 6.2);
        assert_eq!(p.effective_strategy(), DomainStrategy::Dense);
        assert_eq!(p.effective_threads(), 2);
        assert_eq!(p.nominal, (4.1, 6.2));
    }

    #[test]
    fn wire_domain_includes_the_nominal_point() {
        let domain = wire().operational_domain(&params());
        assert_eq!(domain.nominal_operational(), Some(true));
        assert!(domain.coverage() > 0.0);
    }

    #[test]
    fn adaptive_matches_dense_on_a_boundary_window() {
        // The default window straddles the fixture wire's domain
        // boundary, so the adaptive sweep bisects down to every point.
        let design = wire();
        let dense = design.operational_domain(&params().with_strategy(DomainStrategy::Dense));
        let adaptive = design.operational_domain(&params().with_strategy(DomainStrategy::Adaptive));
        assert_eq!(dense.stats.simulated, 9);
        assert_eq!(adaptive.stats.simulated + adaptive.stats.inferred, 9);
        for (d, a) in dense.samples.iter().zip(&adaptive.samples) {
            assert_eq!(
                d.status, a.status,
                "at ({}, {})",
                d.epsilon_r, d.lambda_tf_nm
            );
            assert_eq!(d.provenance, Provenance::Simulated);
        }
    }

    #[test]
    fn adaptive_infers_the_interior_of_a_uniform_window() {
        // ε_r ≤ 5.5 keeps the fixture wire operational across the
        // whole λ_TF range: the adaptive sweep simulates only the four
        // window corners and infers the rest.
        let design = wire();
        let grid = DomainGrid {
            epsilon_r: (4.0, 5.5),
            lambda_tf_nm: (3.5, 6.5),
            steps: 3,
        };
        let dense = design.operational_domain(
            &params()
                .with_grid(grid)
                .with_strategy(DomainStrategy::Dense),
        );
        let adaptive = design.operational_domain(
            &params()
                .with_grid(grid)
                .with_strategy(DomainStrategy::Adaptive),
        );
        assert_eq!(dense.stats.simulated, 9);
        assert_eq!(adaptive.stats.simulated, 4);
        assert_eq!(adaptive.stats.inferred, 5);
        assert!(adaptive.stats.pattern_sims < dense.stats.pattern_sims);
        for (d, a) in dense.samples.iter().zip(&adaptive.samples) {
            assert_eq!(
                d.status, a.status,
                "at ({}, {})",
                d.epsilon_r, d.lambda_tf_nm
            );
        }
        assert!(adaptive
            .samples
            .iter()
            .any(|s| s.provenance == Provenance::Inferred));
    }

    #[test]
    fn domain_samples_are_thread_invariant() {
        for strategy in [DomainStrategy::Dense, DomainStrategy::Adaptive] {
            let one = wire().operational_domain(&params().with_strategy(strategy).with_threads(1));
            let four = wire().operational_domain(&params().with_strategy(strategy).with_threads(4));
            assert_eq!(one.samples, four.samples);
            assert_eq!(one.stats, four.stats);
        }
    }

    #[test]
    fn ascii_map_has_one_row_per_epsilon() {
        let domain = wire().operational_domain(&params().with_grid(DomainGrid {
            steps: 4,
            ..Default::default()
        }));
        let map = domain.render_ascii();
        assert_eq!(map.lines().count(), 5); // 4 ε_r rows + axis caption
        assert!(!map.contains('?'));
    }

    #[test]
    fn single_step_grid_degenerates_gracefully() {
        let domain = wire().operational_domain(&params().with_grid(DomainGrid {
            steps: 1,
            ..Default::default()
        }));
        assert_eq!(domain.samples.len(), 1);
        assert_eq!(domain.stats.simulated, 1);
    }

    #[test]
    fn expired_deadline_degrades_honestly() {
        let domain = wire().operational_domain(
            &params().with_budget(StepBudget::unbounded().with_deadline(Deadline::after_ms(0))),
        );
        let degradation = domain.degradation.as_ref().expect("degraded");
        assert_eq!(degradation.trigger, DomainTrigger::Deadline);
        assert!(domain
            .samples
            .iter()
            .all(|s| s.status == SampleStatus::Unknown && s.provenance == Provenance::Skipped));
        assert_eq!(domain.nominal_operational(), None);
        assert_eq!(domain.coverage(), 0.0);
        assert!(domain.render_ascii().contains('?'));
    }

    #[test]
    fn point_cap_degrades_honestly() {
        let domain = wire()
            .operational_domain(&params().with_budget(StepBudget::unbounded().with_max_steps(4)));
        let degradation = domain.degradation.as_ref().expect("degraded");
        assert_eq!(degradation.trigger, DomainTrigger::Budget);
        assert_eq!(domain.stats.simulated, 4);
        assert!(domain.stats.skipped > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_runs_the_dense_strategy() {
        let grid = DomainGrid {
            steps: 3,
            ..Default::default()
        };
        let sim = SimParams::new(PhysicalParams::default()).with_engine(Engine::QuickExact);
        let domain = operational_domain_with(&wire(), grid, &sim);
        assert_eq!(domain.samples.len(), 9);
        assert!(domain
            .samples
            .iter()
            .all(|s| s.provenance == Provenance::Simulated));
    }
}
