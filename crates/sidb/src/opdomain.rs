//! Operational-domain analysis.
//!
//! The paper's outlook (Section 6) calls for "a streamlined operational
//! domain evaluation framework" — mapping the region of physical-
//! parameter space in which a gate design works, instead of a single
//! yes/no at nominal parameters. This module provides exactly that: a
//! grid sweep over `(ε_r, λ_TF)` (optionally `μ−`) that validates the
//! design at every grid point with the exact ground-state engine.
//!
//! The *operational domain* is a standard robustness metric in the SiDB
//! literature; fabricated devices experience parameter variation, so a
//! larger domain means a more manufacturable gate.

use crate::engine::{self, SimParams, SimStats};
use crate::model::PhysicalParams;
use crate::operational::{Engine, GateDesign};

/// The sweep grid for an operational-domain analysis.
#[derive(Debug, Clone, Copy)]
pub struct DomainGrid {
    /// Inclusive range of relative permittivity values.
    pub epsilon_r: (f64, f64),
    /// Inclusive range of Thomas–Fermi screening lengths, nm.
    pub lambda_tf_nm: (f64, f64),
    /// Number of samples per axis.
    pub steps: usize,
}

impl Default for DomainGrid {
    /// The commonly studied window around the experimentally calibrated
    /// point (ε_r = 5.6, λ_TF = 5 nm).
    fn default() -> Self {
        DomainGrid {
            epsilon_r: (4.0, 7.0),
            lambda_tf_nm: (3.5, 6.5),
            steps: 7,
        }
    }
}

impl DomainGrid {
    /// The parameter values along one axis.
    fn axis(range: (f64, f64), steps: usize) -> Vec<f64> {
        if steps <= 1 {
            return vec![range.0];
        }
        (0..steps)
            .map(|i| range.0 + (range.1 - range.0) * i as f64 / (steps - 1) as f64)
            .collect()
    }

    /// All `(ε_r, λ_TF)` grid points, row-major in ε_r.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let eps = Self::axis(self.epsilon_r, self.steps);
        let lam = Self::axis(self.lambda_tf_nm, self.steps);
        eps.iter()
            .flat_map(|&e| lam.iter().map(move |&l| (e, l)))
            .collect()
    }
}

/// The result of an operational-domain sweep.
#[derive(Debug, Clone)]
pub struct OperationalDomain {
    /// The grid that was swept.
    pub grid: DomainGrid,
    /// Per grid point: `(ε_r, λ_TF, operational)`.
    pub samples: Vec<(f64, f64, bool)>,
}

impl OperationalDomain {
    /// Fraction of grid points at which the design is operational.
    pub fn coverage(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|(_, _, ok)| *ok).count() as f64 / self.samples.len() as f64
    }

    /// True if the nominal point (closest grid point to ε_r = 5.6,
    /// λ_TF = 5 nm) is operational.
    pub fn nominal_operational(&self) -> bool {
        self.samples
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - 5.6).powi(2) + (a.1 - 5.0).powi(2);
                let db = (b.0 - 5.6).powi(2) + (b.1 - 5.0).powi(2);
                da.partial_cmp(&db).expect("finite")
            })
            .map(|s| s.2)
            .unwrap_or(false)
    }

    /// A textual map of the domain: rows are ε_r values (ascending), `■`
    /// marks operational points.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let lam_steps = self.grid.steps;
        for (i, chunk) in self.samples.chunks(lam_steps).enumerate() {
            let eps = chunk.first().map(|c| c.0).unwrap_or(0.0);
            out.push_str(&format!("ε_r {eps:>5.2} | "));
            for &(_, _, ok) in chunk {
                out.push(if ok { '■' } else { '·' });
            }
            out.push('\n');
            let _ = i;
        }
        out.push_str(&format!(
            "          λ_TF {:.1} … {:.1} nm →\n",
            self.grid.lambda_tf_nm.0, self.grid.lambda_tf_nm.1
        ));
        out
    }
}

/// Sweeps the operational domain of a design.
///
/// `sim.physical` supplies the non-swept parameters (μ−, model flags);
/// the grid overrides ε_r and λ_TF per sample. Grid points are the
/// partition units of the engine's worker pool (each point validates
/// serially inside its unit), so the sampled domain is identical at any
/// thread count. With `sim.cache` set, repeated sweeps of the same
/// design are answered from the cache.
///
/// # Examples
///
/// ```
/// use sidb_sim::engine::{SimEngine, SimParams};
/// use sidb_sim::opdomain::{operational_domain_with, DomainGrid};
/// use sidb_sim::operational::GateDesign;
/// use sidb_sim::bdl::{BdlPair, InputPort, OutputPort};
/// use sidb_sim::layout::SidbLayout;
/// use sidb_sim::model::PhysicalParams;
///
/// // A three-pair BDL wire.
/// let design = GateDesign {
///     name: "wire".into(),
///     body: SidbLayout::from_sites([(0,0,0),(0,1,0),(0,4,0),(0,5,0),(0,8,0),(0,9,0)]),
///     inputs: vec![InputPort {
///         pair: BdlPair::new((0,0,0),(0,1,0)),
///         perturber_zero: (0,-4,0).into(),
///         perturber_one: (0,-3,0).into(),
///     }],
///     outputs: vec![OutputPort {
///         pair: BdlPair::new((0,8,0),(0,9,0)),
///         perturber: Some((0,12,1).into()),
///     }],
///     truth_table: vec![vec![false], vec![true]],
/// };
/// let grid = DomainGrid { steps: 3, ..Default::default() };
/// let sim = SimParams::new(PhysicalParams::default()).with_engine(SimEngine::QuickExact);
/// let domain = operational_domain_with(&design, grid, &sim);
/// assert_eq!(domain.samples.len(), 9);
/// ```
pub fn operational_domain_with(
    design: &GateDesign,
    grid: DomainGrid,
    sim: &SimParams,
) -> OperationalDomain {
    let points = grid.points();
    let threads = sim.threads.unwrap_or_else(engine::default_sim_threads);
    let run = engine::run_partitioned(points.len(), threads, |i| {
        let (eps, lam) = points[i];
        let point_sim = SimParams {
            physical: PhysicalParams {
                epsilon_r: eps,
                lambda_tf_nm: lam,
                ..sim.physical
            },
            ..sim.clone()
        }
        .with_threads(1);
        let report = design.check_core(&point_sim);
        (eps, lam, report.is_operational(), report.stats)
    });
    let mut stats = SimStats {
        recovered: run.recovered,
        ..SimStats::default()
    };
    let samples = run
        .results
        .into_iter()
        .map(|(eps, lam, ok, point_stats)| {
            stats.merge(&point_stats);
            (eps, lam, ok)
        })
        .collect();
    engine::emit_stats(&stats);
    OperationalDomain { grid, samples }
}

/// Sweeps the operational domain of a design.
///
/// `base` supplies the non-swept parameters (μ−, model flags); the grid
/// overrides ε_r and λ_TF per sample.
#[deprecated(since = "0.6.0", note = "use `operational_domain_with(&SimParams)`")]
pub fn operational_domain(
    design: &GateDesign,
    base: &PhysicalParams,
    grid: DomainGrid,
    engine: Engine,
) -> OperationalDomain {
    operational_domain_with(design, grid, &SimParams::new(*base).with_engine(engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdl::{BdlPair, InputPort, OutputPort};
    use crate::layout::SidbLayout;

    fn wire() -> GateDesign {
        GateDesign {
            name: "wire".into(),
            body: SidbLayout::from_sites([
                (0, 0, 0),
                (0, 1, 0),
                (0, 4, 0),
                (0, 5, 0),
                (0, 8, 0),
                (0, 9, 0),
            ]),
            inputs: vec![InputPort {
                pair: BdlPair::new((0, 0, 0), (0, 1, 0)),
                perturber_zero: (0, -4, 0).into(),
                perturber_one: (0, -3, 0).into(),
            }],
            outputs: vec![OutputPort {
                pair: BdlPair::new((0, 8, 0), (0, 9, 0)),
                perturber: Some((0, 12, 1).into()),
            }],
            truth_table: vec![vec![false], vec![true]],
        }
    }

    #[test]
    fn grid_points_cover_axes() {
        let grid = DomainGrid {
            epsilon_r: (4.0, 6.0),
            lambda_tf_nm: (4.0, 6.0),
            steps: 3,
        };
        let pts = grid.points();
        assert_eq!(pts.len(), 9);
        assert!(pts.contains(&(4.0, 4.0)));
        assert!(pts.contains(&(6.0, 6.0)));
        assert!(pts.contains(&(5.0, 5.0)));
    }

    fn sim() -> SimParams {
        SimParams::new(PhysicalParams::default()).with_engine(Engine::QuickExact)
    }

    #[test]
    fn wire_domain_includes_the_nominal_point() {
        let grid = DomainGrid {
            steps: 3,
            ..Default::default()
        };
        let domain = operational_domain_with(&wire(), grid, &sim());
        assert!(domain.nominal_operational());
        assert!(domain.coverage() > 0.0);
    }

    #[test]
    fn coverage_is_a_fraction() {
        let grid = DomainGrid {
            steps: 3,
            ..Default::default()
        };
        let domain = operational_domain_with(&wire(), grid, &sim());
        assert!((0.0..=1.0).contains(&domain.coverage()));
    }

    #[test]
    fn ascii_map_has_one_row_per_epsilon() {
        let grid = DomainGrid {
            steps: 4,
            ..Default::default()
        };
        let domain = operational_domain_with(&wire(), grid, &sim());
        let map = domain.render_ascii();
        assert_eq!(map.lines().count(), 5); // 4 ε_r rows + axis caption
    }

    #[test]
    fn domain_samples_are_thread_invariant() {
        let grid = DomainGrid {
            steps: 3,
            ..Default::default()
        };
        let one = operational_domain_with(&wire(), grid, &sim().with_threads(1));
        let four = operational_domain_with(&wire(), grid, &sim().with_threads(4));
        assert_eq!(one.samples, four.samples);
    }

    #[test]
    fn single_step_grid_degenerates_gracefully() {
        let grid = DomainGrid {
            steps: 1,
            ..Default::default()
        };
        let domain = operational_domain_with(&wire(), grid, &sim());
        assert_eq!(domain.samples.len(), 1);
    }
}
