//! A SimAnneal-style simulated-annealing ground-state finder.
//!
//! SiQAD's *SimAnneal* engine explores the charge-configuration space
//! with Metropolis dynamics. This re-implementation runs several
//! independent annealing instances with a geometric temperature schedule
//! and two move types — single-site charge flips and electron hops —
//! followed by a greedy descent.
//!
//! The greedy-descent finish guarantees physical validity: a
//! configuration from which no single flip lowers the free energy is
//! population-stable, and one from which no hop lowers the energy is
//! configuration-stable; a local minimum under both move types is
//! therefore exactly a *physically valid* state.

use crate::charge::{ChargeConfiguration, ChargeState, InteractionMatrix};
use crate::exgs::SimulatedState;
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the annealer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Number of independent annealing instances; the best result wins.
    pub instances: usize,
    /// Metropolis sweeps per instance (each sweep attempts one move per
    /// site).
    pub sweeps: usize,
    /// Initial temperature in eV (k_B·T units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied after every sweep.
    pub cooling: f64,
    /// RNG seed, for reproducible simulations.
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            instances: 24,
            sweeps: 300,
            initial_temperature: 0.25,
            cooling: 0.975,
            seed: 0x5eed_cafe,
        }
    }
}

/// Internal annealing state with incrementally maintained potentials.
struct Anneal<'a> {
    m: &'a InteractionMatrix,
    params: &'a PhysicalParams,
    config: ChargeConfiguration,
    potentials: Vec<f64>,
    free_energy: f64,
}

impl<'a> Anneal<'a> {
    fn new(
        m: &'a InteractionMatrix,
        params: &'a PhysicalParams,
        config: ChargeConfiguration,
    ) -> Self {
        let potentials = config.local_potentials(m);
        let free_energy = config.free_energy(m);
        Anneal {
            m,
            params,
            config,
            potentials,
            free_energy,
        }
    }

    /// Free-energy change of flipping site `i`.
    fn flip_delta(&self, i: usize) -> f64 {
        match self.config.state(i) {
            ChargeState::Neutral => self.params.mu_minus - self.potentials[i],
            ChargeState::Negative => self.potentials[i] - self.params.mu_minus,
            ChargeState::Positive => unreachable!("two-state annealer"),
        }
    }

    fn apply_flip(&mut self, i: usize) {
        let (new_state, delta_n) = match self.config.state(i) {
            ChargeState::Neutral => (ChargeState::Negative, -1.0),
            ChargeState::Negative => (ChargeState::Neutral, 1.0),
            ChargeState::Positive => unreachable!("two-state annealer"),
        };
        self.free_energy += self.flip_delta(i);
        self.config.set_state(i, new_state);
        for j in 0..self.potentials.len() {
            if j != i {
                self.potentials[j] += delta_n * self.m.interaction(i, j);
            }
        }
    }

    /// Energy change of hopping an electron from negative `i` to neutral
    /// `j` (`ΔE = V_i − V_j − v_ij`; free energy changes identically).
    fn hop_delta(&self, i: usize, j: usize) -> f64 {
        self.potentials[i] - self.potentials[j] - self.m.interaction(i, j)
    }

    fn apply_hop(&mut self, i: usize, j: usize) {
        debug_assert_eq!(self.config.state(i), ChargeState::Negative);
        debug_assert_eq!(self.config.state(j), ChargeState::Neutral);
        self.free_energy += self.hop_delta(i, j);
        self.config.set_state(i, ChargeState::Neutral);
        self.config.set_state(j, ChargeState::Negative);
        for k in 0..self.potentials.len() {
            if k != i {
                self.potentials[k] += self.m.interaction(i, k);
            }
            if k != j {
                self.potentials[k] -= self.m.interaction(j, k);
            }
        }
    }

    /// Greedy descent to the nearest local minimum (= valid state).
    fn descend(&mut self) {
        const EPS: f64 = 1e-12;
        loop {
            let n = self.config.len();
            let mut improved = false;
            for i in 0..n {
                if self.flip_delta(i) < -EPS {
                    self.apply_flip(i);
                    improved = true;
                }
            }
            for i in 0..n {
                if self.config.state(i) != ChargeState::Negative {
                    continue;
                }
                for j in 0..n {
                    if self.config.state(j) == ChargeState::Neutral && self.hop_delta(i, j) < -EPS {
                        self.apply_hop(i, j);
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                return;
            }
        }
    }
}

/// Runs simulated annealing; returns the best physically valid state
/// found, or `None` for an empty layout.
///
/// # Panics
///
/// Panics if `params.three_state` is set; like the paper's gate
/// simulations, the annealer works in the negative/neutral system.
///
/// # Examples
///
/// ```
/// use sidb_sim::engine::{simulate_with, SimEngine, SimParams};
/// use sidb_sim::layout::SidbLayout;
/// use sidb_sim::model::PhysicalParams;
/// use sidb_sim::simanneal::AnnealParams;
///
/// let layout = SidbLayout::from_sites([(0, 0, 0), (20, 0, 0)]);
/// let result = simulate_with(
///     &layout,
///     &SimParams::new(PhysicalParams::default())
///         .with_engine(SimEngine::Anneal(AnnealParams::default())),
/// );
/// assert_eq!(result.ground_state().expect("non-empty").config.num_negative(), 2);
/// ```
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::Anneal`"
)]
pub fn simulated_annealing(
    layout: &SidbLayout,
    params: &PhysicalParams,
    anneal: &AnnealParams,
) -> Option<SimulatedState> {
    crate::engine::simulate_with(
        layout,
        &crate::engine::SimParams::new(*params)
            .with_engine(crate::engine::SimEngine::Anneal(*anneal)),
    )
    .states
    .pop()
}

/// The annealing core (for [`crate::engine`]): the best physically
/// valid state over `anneal.instances` independent Metropolis runs.
/// `matrix`, when given, must belong to `layout` under `params`.
pub(crate) fn anneal_core(
    layout: &SidbLayout,
    params: &PhysicalParams,
    anneal: &AnnealParams,
    matrix: Option<&InteractionMatrix>,
) -> Option<SimulatedState> {
    assert!(
        !params.three_state,
        "the annealer implements the two-state model"
    );
    let n = layout.num_sites();
    if n == 0 {
        return None;
    }
    let owned;
    let m = match matrix {
        Some(m) if m.num_sites() == n => m,
        _ => {
            owned = InteractionMatrix::new(layout, params);
            &owned
        }
    };
    let mut rng = StdRng::seed_from_u64(anneal.seed);
    let mut best: Option<SimulatedState> = None;
    let mut accepted: u64 = 0;

    for _ in 0..anneal.instances.max(1) {
        // Random initial population.
        let mut config = ChargeConfiguration::neutral(n);
        for i in 0..n {
            if rng.gen_bool(0.5) {
                config.set_state(i, ChargeState::Negative);
            }
        }
        let mut state = Anneal::new(m, params, config);
        let mut temperature = anneal.initial_temperature;
        for _ in 0..anneal.sweeps {
            for _ in 0..n {
                // Random move: 50% flip, 50% hop (when possible).
                if rng.gen_bool(0.5) {
                    let i = rng.gen_range(0..n);
                    let delta = state.flip_delta(i);
                    if delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().min(1.0)) {
                        state.apply_flip(i);
                        accepted += 1;
                    }
                } else {
                    let negs: Vec<usize> = (0..n)
                        .filter(|&i| state.config.state(i) == ChargeState::Negative)
                        .collect();
                    let neus: Vec<usize> = (0..n)
                        .filter(|&i| state.config.state(i) == ChargeState::Neutral)
                        .collect();
                    if negs.is_empty() || neus.is_empty() {
                        continue;
                    }
                    let i = negs[rng.gen_range(0..negs.len())];
                    let j = neus[rng.gen_range(0..neus.len())];
                    let delta = state.hop_delta(i, j);
                    if delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().min(1.0)) {
                        state.apply_hop(i, j);
                        accepted += 1;
                    }
                }
            }
            temperature *= anneal.cooling;
        }
        state.descend();
        debug_assert!(state.config.is_physically_valid(m));
        let candidate = SimulatedState {
            electrostatic_energy: state.config.electrostatic_energy(m),
            free_energy: state.free_energy,
            config: state.config,
        };
        if best
            .as_ref()
            .map(|b| candidate.free_energy < b.free_energy - 1e-12)
            .unwrap_or(true)
        {
            best = Some(candidate);
        }
    }
    let _ = accepted;
    best
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::exgs::exhaustive_low_energy;

    #[test]
    fn annealer_matches_exhaustive_on_small_layouts() {
        let layouts = [
            SidbLayout::from_sites([(0, 0, 0), (2, 0, 0), (6, 0, 0), (8, 0, 0)]),
            SidbLayout::from_sites([(0, 0, 0), (4, 1, 1), (9, 2, 0), (1, 3, 0), (12, 0, 0)]),
            SidbLayout::from_sites([
                (0, 0, 0),
                (3, 0, 1),
                (6, 1, 0),
                (9, 1, 1),
                (12, 2, 0),
                (15, 2, 1),
            ]),
        ];
        let params = PhysicalParams::default();
        for layout in layouts {
            let exact = exhaustive_low_energy(&layout, &params, 1);
            let annealed =
                simulated_annealing(&layout, &params, &AnnealParams::default()).expect("non-empty");
            assert!(
                (annealed.free_energy - exact[0].free_energy).abs() < 1e-6,
                "annealer {} vs exact {}",
                annealed.free_energy,
                exact[0].free_energy
            );
        }
    }

    #[test]
    fn result_is_always_physically_valid() {
        let layout = SidbLayout::from_sites([
            (0, 0, 0),
            (2, 0, 0),
            (7, 1, 0),
            (9, 1, 0),
            (4, 2, 1),
            (14, 0, 0),
            (16, 0, 0),
        ]);
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        let s = simulated_annealing(
            &layout,
            &params,
            &AnnealParams {
                instances: 5,
                ..Default::default()
            },
        )
        .expect("non-empty");
        assert!(s.config.is_physically_valid(&m));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (8, 1, 0), (11, 1, 0)]);
        let params = PhysicalParams::default();
        let a = simulated_annealing(&layout, &params, &AnnealParams::default()).expect("ok");
        let b = simulated_annealing(&layout, &params, &AnnealParams::default()).expect("ok");
        assert_eq!(a.config, b.config);
    }

    #[test]
    fn empty_layout_yields_none() {
        assert!(simulated_annealing(
            &SidbLayout::new(),
            &PhysicalParams::default(),
            &AnnealParams::default()
        )
        .is_none());
    }
}
