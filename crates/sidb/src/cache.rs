//! A content-addressed simulation cache.
//!
//! Gate-library validation, operational-domain sweeps, and designer
//! search all re-simulate the same few dozen layouts over and over —
//! the same tile body under the same input pattern appears once per
//! library validation, once per domain grid point, and hundreds of
//! times during a designer search. [`SimCache`] memoizes
//! [`crate::engine::simulate_with`] results behind a key that
//! canonicalizes the layout (translation-invariant site list) together
//! with every physical and engine parameter that can change the answer.
//!
//! Only *unbounded* runs are cached: a truncated spectrum depends on
//! the wall clock and step budget, so budget-bounded sweeps always
//! recompute.
//!
//! The cache hosts the `sidb.cache` fault-injection point: any injected
//! fault (a poisoned store, a panic mid-lookup) makes the cache behave
//! as absent — lookups miss and stores are skipped — so a broken cache
//! costs time, never correctness.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::engine::{SimEngine, SimParams};
use crate::exgs::SimulatedState;
use crate::layout::SidbLayout;

/// The engine-selection part of a cache key. `Auto` resolves to the
/// engine it dispatches to, so `Auto` and an explicit [`SimEngine::QuickExact`]
/// share entries; annealing keys carry the full `AnnealParams` (bits of
/// the floats) because the result depends on them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum EngineKey {
    Exhaustive,
    QuickExact,
    Anneal {
        instances: usize,
        sweeps: usize,
        temperature_bits: u64,
        cooling_bits: u64,
        seed: u64,
    },
    ThreeState,
}

/// What identifies a simulation result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Sites translated so the minimal `x`/`y` is zero — simulation is
    /// translation-invariant, so translated copies share an entry.
    sites: Vec<(i32, i32, u8)>,
    /// `PhysicalParams` as exact bit patterns.
    physical_bits: [u64; 4],
    three_state: bool,
    engine: EngineKey,
    k: usize,
}

impl SimKey {
    /// The key identifying `simulate_with(layout, params)`.
    pub(crate) fn for_simulation(layout: &SidbLayout, params: &SimParams) -> SimKey {
        let (min_x, min_y) = layout
            .sites()
            .iter()
            .fold((i32::MAX, i32::MAX), |(x, y), s| (x.min(s.x), y.min(s.y)));
        let sites = layout
            .sites()
            .iter()
            .map(|s| {
                if layout.is_empty() {
                    (s.x, s.y, s.b)
                } else {
                    (s.x - min_x, s.y - min_y, s.b)
                }
            })
            .collect();
        let p = &params.physical;
        let engine = if params.three_state {
            EngineKey::ThreeState
        } else {
            match params.engine {
                SimEngine::Exhaustive => EngineKey::Exhaustive,
                SimEngine::QuickExact | SimEngine::Auto => EngineKey::QuickExact,
                SimEngine::Anneal(a) => EngineKey::Anneal {
                    instances: a.instances,
                    sweeps: a.sweeps,
                    temperature_bits: a.initial_temperature.to_bits(),
                    cooling_bits: a.cooling.to_bits(),
                    seed: a.seed,
                },
            }
        };
        SimKey {
            sites,
            physical_bits: [
                p.mu_minus.to_bits(),
                p.epsilon_r.to_bits(),
                p.lambda_tf_nm.to_bits(),
                p.interaction_cutoff_ev.to_bits(),
            ],
            three_state: params.three_state || p.three_state,
            engine,
            k: params.k,
        }
    }
}

/// A stored spectrum.
#[derive(Debug, Clone)]
struct Stored {
    states: Vec<SimulatedState>,
    truncated: bool,
}

/// A shareable content-addressed store of simulation results.
///
/// Cloning is cheap (an `Arc`); clones share the same store, so one
/// cache can serve a whole gate-library validation or designer search.
#[derive(Debug, Clone, Default)]
pub struct SimCache {
    store: Arc<Mutex<HashMap<SimKey, Stored>>>,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Reads the `SIM_CACHE` environment knob: `Some(cache)` unless the
    /// variable is set to `0`, `false`, `off`, or `no`. Caching is on
    /// by default.
    pub fn from_env() -> Option<SimCache> {
        match std::env::var("SIM_CACHE") {
            Ok(v)
                if matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "false" | "off" | "no"
                ) =>
            {
                None
            }
            _ => Some(SimCache::new()),
        }
    }

    /// Number of cached spectra.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Looks up a stored spectrum. `None` on a miss or when the
    /// `sidb.cache` fault point reports the cache unavailable.
    pub(crate) fn lookup(&self, key: &SimKey) -> Option<(Vec<SimulatedState>, bool)> {
        if !Self::available() {
            return None;
        }
        self.lock()
            .get(key)
            .map(|s| (s.states.clone(), s.truncated))
    }

    /// Stores a spectrum (skipped when the fault point reports the
    /// cache unavailable).
    pub(crate) fn store(&self, key: SimKey, states: &[SimulatedState], truncated: bool) {
        if !Self::available() {
            return;
        }
        self.lock().insert(
            key,
            Stored {
                states: states.to_vec(),
                truncated,
            },
        );
    }

    /// Evaluates the `sidb.cache` fault point: any injected fault
    /// (panic, exhaust, …) makes the cache act absent for this access.
    fn available() -> bool {
        matches!(
            catch_unwind(AssertUnwindSafe(|| fcn_budget::fault::check("sidb.cache"))),
            Ok(None)
        )
    }

    /// The store, recovering from lock poisoning (a panicked holder
    /// cannot corrupt the map — writes are single `insert` calls).
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<SimKey, Stored>> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PhysicalParams;

    fn params() -> SimParams {
        SimParams::new(PhysicalParams::default())
    }

    #[test]
    fn translated_layouts_share_a_key() {
        let a = SidbLayout::from_sites([(0, 0, 0), (3, 1, 1)]);
        let b = a.translated(11, -4);
        assert_eq!(
            SimKey::for_simulation(&a, &params()),
            SimKey::for_simulation(&b, &params())
        );
    }

    #[test]
    fn physical_params_change_the_key() {
        let l = SidbLayout::from_sites([(0, 0, 0), (3, 1, 1)]);
        let base = SimKey::for_simulation(&l, &params());
        let shifted = SimKey::for_simulation(
            &l,
            &SimParams::new(PhysicalParams::default().with_mu_minus(-0.28)),
        );
        assert_ne!(base, shifted);
        let more = SimKey::for_simulation(&l, &params().with_k(3));
        assert_ne!(base, more);
    }

    #[test]
    fn auto_and_quickexact_share_a_key() {
        let l = SidbLayout::from_sites([(0, 0, 0), (3, 1, 1)]);
        assert_eq!(
            SimKey::for_simulation(&l, &params()),
            SimKey::for_simulation(&l, &params().with_engine(SimEngine::QuickExact))
        );
        assert_ne!(
            SimKey::for_simulation(&l, &params()),
            SimKey::for_simulation(&l, &params().with_engine(SimEngine::Exhaustive))
        );
    }

    #[test]
    fn injected_cache_fault_disables_the_store() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let cache = SimCache::new();
        let l = SidbLayout::from_sites([(0, 0, 0)]);
        let key = SimKey::for_simulation(&l, &params());
        cache.store(key.clone(), &[], false);
        assert_eq!(cache.len(), 1);
        let plan = Arc::new(FaultPlan::single("sidb.cache", Fault::Panic));
        let _scope = install(plan.clone());
        assert!(cache.lookup(&key).is_none(), "faulted lookup must miss");
        cache.store(key.clone(), &[], true);
        drop(_scope);
        assert!(plan.hits("sidb.cache") >= 2);
        // The original entry is intact and visible again.
        let (states, truncated) = cache.lookup(&key).expect("entry survived");
        assert!(states.is_empty());
        assert!(!truncated);
    }
}
