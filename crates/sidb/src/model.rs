//! The electrostatic model of SiDB charge systems.
//!
//! SiDBs interact through a screened Coulomb potential (Thomas–Fermi
//! screening by bulk carriers):
//!
//! ```text
//! v(d) = (e² / 4πε₀ε_r) · exp(−d/λ_TF) / d      [eV, d in Å]
//! ```
//!
//! A site's charge state is governed by its *local potential* `V_i =
//! Σ_j v_ij·n_j` relative to the charge-transition levels `μ−` (0/−) and
//! `μ+` (+/0). The defaults reproduce the simulation setups of the paper's
//! Figure 5 (`μ− = −0.32 eV`, `ε_r = 5.6`, `λ_TF = 5 nm`); Figure 1c uses
//! `μ− = −0.28 eV` via [`PhysicalParams::with_mu_minus`].

/// Coulomb constant times elementary charge squared, in eV·Å.
pub const COULOMB_EV_ANGSTROM: f64 = 14.399645;

/// Separation of the `(+/0)` and `(0/−)` charge-transition levels
/// (intra-dot Coulomb repulsion), in eV. Only relevant in three-state
/// simulations.
pub const TRANSITION_LEVEL_SEPARATION_EV: f64 = 0.59;

/// Physical parameters of an SiDB simulation.
///
/// # Examples
///
/// ```
/// use sidb_sim::model::PhysicalParams;
///
/// let fig5 = PhysicalParams::default();
/// assert_eq!(fig5.mu_minus, -0.32);
/// let fig1c = PhysicalParams::default().with_mu_minus(-0.28);
/// assert_eq!(fig1c.mu_minus, -0.28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParams {
    /// The `(0/−)` charge-transition level relative to the Fermi level, eV.
    pub mu_minus: f64,
    /// Relative permittivity of the silicon environment.
    pub epsilon_r: f64,
    /// Thomas–Fermi screening length, nm.
    pub lambda_tf_nm: f64,
    /// Whether positive charge states are modelled. The paper's
    /// configurations never populate them, so the default is the faster
    /// two-state model.
    pub three_state: bool,
    /// Interactions below this energy (eV) are treated as zero. `0.0`
    /// keeps the full screened-Coulomb model; a small cutoff (1–2 meV)
    /// decomposes far-apart sub-structures into independent clusters,
    /// which the exact engines exploit. A documented approximation in the
    /// spirit of SiQAD's simulation-domain truncation.
    pub interaction_cutoff_ev: f64,
}

impl Default for PhysicalParams {
    /// The paper's Figure 5 setup: `μ− = −0.32 eV`, `ε_r = 5.6`,
    /// `λ_TF = 5 nm`, two-state.
    fn default() -> Self {
        PhysicalParams {
            mu_minus: -0.32,
            epsilon_r: 5.6,
            lambda_tf_nm: 5.0,
            three_state: false,
            interaction_cutoff_ev: 0.0,
        }
    }
}

impl PhysicalParams {
    /// Returns a copy with a different `μ−`.
    pub fn with_mu_minus(mut self, mu_minus: f64) -> Self {
        self.mu_minus = mu_minus;
        self
    }

    /// Returns a copy with the three-state model enabled.
    pub fn with_three_state(mut self) -> Self {
        self.three_state = true;
        self
    }

    /// Returns a copy with an interaction cutoff (eV).
    pub fn with_cutoff(mut self, cutoff_ev: f64) -> Self {
        self.interaction_cutoff_ev = cutoff_ev;
        self
    }

    /// The `(+/0)` transition level, eV.
    pub fn mu_plus(&self) -> f64 {
        self.mu_minus - TRANSITION_LEVEL_SEPARATION_EV
    }

    /// The screened Coulomb interaction energy of two elementary charges
    /// at distance `d` ångström, in eV.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not strictly positive — two SiDBs cannot share a
    /// lattice site.
    pub fn interaction_ev(&self, d_angstrom: f64) -> f64 {
        assert!(d_angstrom > 0.0, "sites must be distinct");
        let lambda = self.lambda_tf_nm * 10.0;
        COULOMB_EV_ANGSTROM / self.epsilon_r * (-d_angstrom / lambda).exp() / d_angstrom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_decreases_with_distance() {
        let p = PhysicalParams::default();
        let mut prev = f64::INFINITY;
        for d in [2.25, 3.84, 7.68, 20.0, 100.0] {
            let v = p.interaction_ev(d);
            assert!(v > 0.0 && v < prev);
            prev = v;
        }
    }

    #[test]
    fn screening_suppresses_long_range() {
        let p = PhysicalParams::default();
        // At 5 nm (one screening length) the bare Coulomb value is reduced
        // by a factor e.
        let bare = COULOMB_EV_ANGSTROM / p.epsilon_r / 50.0;
        let screened = p.interaction_ev(50.0);
        assert!((screened - bare / core::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn dimer_neighbours_interact_strongly() {
        // Two dots of one dimer pair (2.25 Å) repel with more than 1 eV —
        // far above |μ−|, which is why a BDL pair holds only one electron.
        let p = PhysicalParams::default();
        assert!(p.interaction_ev(2.25) > 1.0);
    }

    #[test]
    fn mu_plus_sits_below_mu_minus() {
        let p = PhysicalParams::default();
        assert!(p.mu_plus() < p.mu_minus);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn zero_distance_panics() {
        PhysicalParams::default().interaction_ev(0.0);
    }
}
