//! Binary-dot logic (BDL) I/O.
//!
//! BDL encodes a bit in the position of the single shared electron of a
//! pair of closely spaced SiDBs (paper Figure 1a). The input encoding
//! follows the paper's refinement of Huff et al.: an input *perturber* —
//! a single negatively charged SiDB — is present for **both** logic
//! values, but at a *closer* location for logic 1 and a *farther* one for
//! logic 0, emulating the Coulombic pressure of an upstream BDL wire in
//! either state.

use crate::charge::{ChargeConfiguration, ChargeState};
use crate::layout::SidbLayout;
use fcn_coords::LatticeCoord;

/// A BDL pair: two dots sharing one electron.
///
/// The electron resting on [`BdlPair::one_dot`] encodes logic 1, on
/// [`BdlPair::zero_dot`] logic 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BdlPair {
    /// The dot whose occupation encodes logic 0.
    pub zero_dot: LatticeCoord,
    /// The dot whose occupation encodes logic 1.
    pub one_dot: LatticeCoord,
}

impl BdlPair {
    /// Creates a pair from the logic-0 and logic-1 dot positions.
    pub fn new(zero_dot: impl Into<LatticeCoord>, one_dot: impl Into<LatticeCoord>) -> Self {
        BdlPair {
            zero_dot: zero_dot.into(),
            one_dot: one_dot.into(),
        }
    }

    /// Both dots, logic-0 dot first.
    pub fn dots(&self) -> [LatticeCoord; 2] {
        [self.zero_dot, self.one_dot]
    }

    /// Translated copy.
    pub fn translated(&self, dx: i32, dy: i32) -> BdlPair {
        BdlPair {
            zero_dot: self.zero_dot.translated(dx, dy),
            one_dot: self.one_dot.translated(dx, dy),
        }
    }

    /// Horizontally mirrored copy.
    pub fn mirrored_x(&self, axis_x: i32) -> BdlPair {
        BdlPair {
            zero_dot: self.zero_dot.mirrored_x(axis_x),
            one_dot: self.one_dot.mirrored_x(axis_x),
        }
    }

    /// Reads the pair's logic state from a charge configuration.
    ///
    /// Returns `None` when the read-out is ambiguous (both or neither dot
    /// negative, or a dot missing from the layout) — an ambiguous output
    /// means the gate is non-operational for that input pattern.
    pub fn read(&self, layout: &SidbLayout, config: &ChargeConfiguration) -> Option<bool> {
        let zero_idx = layout.index_of(self.zero_dot)?;
        let one_idx = layout.index_of(self.one_dot)?;
        let zero_neg = config.state(zero_idx) == ChargeState::Negative;
        let one_neg = config.state(one_idx) == ChargeState::Negative;
        match (zero_neg, one_neg) {
            (true, false) => Some(false),
            (false, true) => Some(true),
            _ => None,
        }
    }
}

/// An input port: the first BDL pair of an input wire together with the
/// two alternative perturber locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputPort {
    /// The input pair (part of the gate body).
    pub pair: BdlPair,
    /// Perturber position emulating an upstream wire at logic 0 (farther).
    pub perturber_zero: LatticeCoord,
    /// Perturber position emulating an upstream wire at logic 1 (closer).
    pub perturber_one: LatticeCoord,
}

impl InputPort {
    /// The perturber position for a given logic value.
    pub fn perturber_for(&self, value: bool) -> LatticeCoord {
        if value {
            self.perturber_one
        } else {
            self.perturber_zero
        }
    }

    /// Translated copy.
    pub fn translated(&self, dx: i32, dy: i32) -> InputPort {
        InputPort {
            pair: self.pair.translated(dx, dy),
            perturber_zero: self.perturber_zero.translated(dx, dy),
            perturber_one: self.perturber_one.translated(dx, dy),
        }
    }

    /// Horizontally mirrored copy.
    pub fn mirrored_x(&self, axis_x: i32) -> InputPort {
        InputPort {
            pair: self.pair.mirrored_x(axis_x),
            perturber_zero: self.perturber_zero.mirrored_x(axis_x),
            perturber_one: self.perturber_one.mirrored_x(axis_x),
        }
    }
}

/// An output port: the last BDL pair of an output wire plus the output
/// perturber that emulates the presence of a downstream wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutputPort {
    /// The output pair (part of the gate body).
    pub pair: BdlPair,
    /// The downstream perturber (always present during simulation).
    pub perturber: Option<LatticeCoord>,
}

impl OutputPort {
    /// Translated copy.
    pub fn translated(&self, dx: i32, dy: i32) -> OutputPort {
        OutputPort {
            pair: self.pair.translated(dx, dy),
            perturber: self.perturber.map(|p| p.translated(dx, dy)),
        }
    }

    /// Horizontally mirrored copy.
    pub fn mirrored_x(&self, axis_x: i32) -> OutputPort {
        OutputPort {
            pair: self.pair.mirrored_x(axis_x),
            perturber: self.perturber.map(|p| p.mirrored_x(axis_x)),
        }
    }
}

/// Detects BDL pairs in a plain layout by pairing dots whose distance is
/// below `threshold_angstrom` (nearest-neighbor, greedy). Useful when
/// importing third-party designs without port annotations.
pub fn detect_bdl_pairs(layout: &SidbLayout, threshold_angstrom: f64) -> Vec<(usize, usize)> {
    let n = layout.num_sites();
    let mut used = vec![false; n];
    let mut pairs = Vec::new();
    // Collect candidate pairs by increasing distance.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = layout.distance_angstrom(i, j);
            if d <= threshold_angstrom {
                candidates.push((i, j, d));
            }
        }
    }
    candidates.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(core::cmp::Ordering::Equal));
    for (i, j, _) in candidates {
        if !used[i] && !used[j] {
            used[i] = true;
            used[j] = true;
            pairs.push((i, j));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_decodes_electron_position() {
        let pair = BdlPair::new((0, 0, 0), (0, 1, 0));
        let layout = SidbLayout::from_sites([(0, 0, 0), (0, 1, 0)]);
        let mut cfg = ChargeConfiguration::neutral(2);
        cfg.set_state(
            layout.index_of((0, 1, 0)).expect("present"),
            ChargeState::Negative,
        );
        assert_eq!(pair.read(&layout, &cfg), Some(true));
        let mut cfg0 = ChargeConfiguration::neutral(2);
        cfg0.set_state(
            layout.index_of((0, 0, 0)).expect("present"),
            ChargeState::Negative,
        );
        assert_eq!(pair.read(&layout, &cfg0), Some(false));
    }

    #[test]
    fn ambiguous_read_is_none() {
        let pair = BdlPair::new((0, 0, 0), (0, 1, 0));
        let layout = SidbLayout::from_sites([(0, 0, 0), (0, 1, 0)]);
        let none = ChargeConfiguration::neutral(2);
        assert_eq!(pair.read(&layout, &none), None);
        let mut both = ChargeConfiguration::neutral(2);
        both.set_state(0, ChargeState::Negative);
        both.set_state(1, ChargeState::Negative);
        assert_eq!(pair.read(&layout, &both), None);
    }

    #[test]
    fn missing_dot_reads_none() {
        let pair = BdlPair::new((0, 0, 0), (5, 5, 0));
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let cfg = ChargeConfiguration::neutral(1);
        assert_eq!(pair.read(&layout, &cfg), None);
    }

    #[test]
    fn perturber_selection() {
        let port = InputPort {
            pair: BdlPair::new((0, 2, 0), (0, 3, 0)),
            perturber_zero: LatticeCoord::new(0, 0, 0),
            perturber_one: LatticeCoord::new(0, 1, 0),
        };
        assert_eq!(port.perturber_for(false), LatticeCoord::new(0, 0, 0));
        assert_eq!(port.perturber_for(true), LatticeCoord::new(0, 1, 0));
    }

    #[test]
    fn transforms_compose() {
        let port = InputPort {
            pair: BdlPair::new((1, 2, 0), (1, 3, 0)),
            perturber_zero: LatticeCoord::new(1, 0, 0),
            perturber_one: LatticeCoord::new(1, 1, 0),
        };
        let back = port.translated(4, 2).translated(-4, -2);
        assert_eq!(back, port);
        assert_eq!(port.mirrored_x(5).mirrored_x(5), port);
    }

    #[test]
    fn pair_detection_pairs_nearest_dots() {
        // Two obvious pairs far apart.
        let layout = SidbLayout::from_sites([(0, 0, 0), (2, 0, 0), (20, 0, 0), (22, 0, 0)]);
        let pairs = detect_bdl_pairs(&layout, 10.0);
        assert_eq!(pairs.len(), 2);
        for (i, j) in pairs {
            assert!(layout.distance_angstrom(i, j) < 10.0);
        }
    }
}
