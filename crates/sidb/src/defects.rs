//! Surface defects on H-Si(100)-2×1 and their electrostatic influence.
//!
//! Real hydrogen-passivated silicon surfaces are not pristine: scanning
//! probes routinely find atomic defects — stray dangling-bond pairs,
//! missing arsenic dimers, siloxane rings, charged vacancies — that
//! perturb or outright kill SiDB gates fabricated on top of them (the
//! defect catalog follows SiQAD, arXiv 1808.04916; the design-automation
//! consequences follow "Atomic Defect-Aware Physical Design of SiDB
//! Logic", arXiv 2311.12042).
//!
//! The model here is deliberately simple and fully deterministic:
//!
//! * every defect has a lattice position and a [`DefectKind`];
//! * a *charged* kind contributes a screened-Coulomb term
//!   `q_d · v(dist)` to the **external potential** at every SiDB site,
//!   which [`crate::charge::InteractionMatrix::with_external`] folds
//!   into every engine's energy bookkeeping;
//! * every kind additionally has a structural *exclusion radius* inside
//!   which fabrication is considered impossible — a site this close to
//!   a defect marks the hosting tile as unusable for placement.
//!
//! [`DefectMap::random`] draws a seeded surface by per-site Bernoulli
//! trials hashed from `(seed, x, y, b)` with a SplitMix64 finalizer, so
//! the map depends only on the seed — never on iteration order, thread
//! count, or platform.

use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use fcn_coords::siqad::{hex_tile_origin, HEX_ROW_PITCH_ROWS, HEX_TILE_WIDTH_CELLS, SIQAD_LATTICE};
use fcn_coords::LatticeCoord;

/// A catalogued atomic defect species of the H-Si(100)-2×1 surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// A missing/substituted arsenic dimer: an ionized donor, net `+1`.
    ArsenicDimer,
    /// A stray unpassivated dangling-bond pair holding one electron,
    /// net `−1` — electrostatically it acts like a fixed BDL charge.
    DbPair,
    /// A siloxane ring: charge-neutral but structurally disruptive.
    Siloxane,
    /// A charged single vacancy, net `−1`.
    ChargedVacancy,
}

impl DefectKind {
    /// All catalogued kinds, in a fixed order (used by the random
    /// generator and the spec parser).
    pub const ALL: [DefectKind; 4] = [
        DefectKind::ArsenicDimer,
        DefectKind::DbPair,
        DefectKind::Siloxane,
        DefectKind::ChargedVacancy,
    ];

    /// Net charge in units of the elementary charge. Charged kinds
    /// perturb SiDB sites electrostatically; neutral kinds only exclude.
    pub const fn charge_number(self) -> i8 {
        match self {
            DefectKind::ArsenicDimer => 1,
            DefectKind::DbPair => -1,
            DefectKind::Siloxane => 0,
            DefectKind::ChargedVacancy => -1,
        }
    }

    /// Structural exclusion radius in ångström: no SiDB can function
    /// this close to the defect, regardless of electrostatics.
    pub const fn exclusion_radius_angstrom(self) -> f64 {
        match self {
            DefectKind::ArsenicDimer => 3.84,
            DefectKind::DbPair => 7.68,
            DefectKind::Siloxane => 5.0,
            DefectKind::ChargedVacancy => 3.84,
        }
    }

    /// The spec/file token naming this kind.
    pub const fn label(self) -> &'static str {
        match self {
            DefectKind::ArsenicDimer => "arsenic_dimer",
            DefectKind::DbPair => "db_pair",
            DefectKind::Siloxane => "siloxane",
            DefectKind::ChargedVacancy => "charged_vacancy",
        }
    }

    /// Parses a spec/file token.
    pub fn from_label(s: &str) -> Option<DefectKind> {
        DefectKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl core::fmt::Display for DefectKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One defect: a species at a lattice position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Defect {
    /// Where the defect sits, in SiQAD lattice coordinates.
    pub position: LatticeCoord,
    /// What it is.
    pub kind: DefectKind,
}

/// A charged or coincident defect closer than this is clamped to this
/// distance when evaluating its potential, so a defect sitting exactly
/// on a site produces a huge-but-finite perturbation instead of a
/// division by zero (the exclusion radius already rules such sites out
/// for placement).
pub const MIN_DEFECT_DISTANCE_ANGSTROM: f64 = 1.0;

/// Width of the canonical random-surface region, in lattice cells
/// (8 Bestagon tile columns — wider than every Table 1 layout).
pub const DEFAULT_REGION_WIDTH_CELLS: i32 = 8 * HEX_TILE_WIDTH_CELLS;

/// Height of the canonical random-surface region, in dimer rows
/// (15 Bestagon tile rows — taller than every Table 1 layout).
pub const DEFAULT_REGION_HEIGHT_ROWS: i32 = 15 * HEX_ROW_PITCH_ROWS;

/// A typed error of the surface-defect spec/file parsers. Malformed
/// input is always reported through this type — the parsers never
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurfaceSpecError {
    /// The `seed` half of a `seed:density` spec did not parse as `u64`.
    BadSeed(String),
    /// The `density` half did not parse as a probability in `[0, 1]`.
    BadDensity(String),
    /// An unknown defect-kind token.
    BadKind(String),
    /// A malformed line of a defect-map file.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The spec named a file that could not be read.
    Io(String),
}

impl core::fmt::Display for SurfaceSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SurfaceSpecError::BadSeed(s) => write!(f, "bad surface seed '{s}' (expected u64)"),
            SurfaceSpecError::BadDensity(s) => {
                write!(f, "bad defect density '{s}' (expected 0 ≤ p ≤ 1)")
            }
            SurfaceSpecError::BadKind(s) => write!(f, "unknown defect kind '{s}'"),
            SurfaceSpecError::BadLine { line, reason } => {
                write!(f, "defect file line {line}: {reason}")
            }
            SurfaceSpecError::Io(s) => write!(f, "cannot read defect file: {s}"),
        }
    }
}

impl std::error::Error for SurfaceSpecError {}

/// A scanned (or synthesized) map of surface defects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectMap {
    defects: Vec<Defect>,
}

/// SplitMix64 finalizer over a site key: the per-site randomness source
/// of [`DefectMap::random`]. Depending only on `(seed, x, y, b)` makes
/// the generated surface independent of iteration order and thread
/// width by construction.
fn site_hash(seed: u64, x: i32, y: i32, b: u8) -> u64 {
    let mut z = seed
        ^ ((x as u32 as u64) << 33)
        ^ ((y as u32 as u64) << 1)
        ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The top 53 bits of a hash as a uniform f64 in `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl DefectMap {
    /// A map over an explicit defect list.
    pub fn new(defects: Vec<Defect>) -> Self {
        DefectMap { defects }
    }

    /// The pristine (empty) surface.
    pub fn pristine() -> Self {
        DefectMap::default()
    }

    /// True when the surface has no defects at all.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// Number of defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// The defects, in generation/file order.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// Draws a seeded random surface over the canonical region
    /// ([`DEFAULT_REGION_WIDTH_CELLS`] × [`DEFAULT_REGION_HEIGHT_ROWS`],
    /// both sub-lattice rows): every site hosts a defect with
    /// probability `density`, with the species drawn uniformly from
    /// `kinds`. Fully determined by `seed` — see [`DefectMap::random_in`].
    pub fn random(seed: u64, density: f64, kinds: &[DefectKind]) -> Self {
        Self::random_in(
            seed,
            density,
            kinds,
            DEFAULT_REGION_WIDTH_CELLS,
            DEFAULT_REGION_HEIGHT_ROWS,
        )
    }

    /// Draws a seeded random surface over `width_cells × height_rows`
    /// lattice cells (both `b` sub-rows of each cell are candidate
    /// positions). Each site's trial is an independent hash of
    /// `(seed, x, y, b)`, so the result is bit-identical across thread
    /// widths, platforms, and iteration orders. An empty `kinds` slice
    /// or a non-positive density yields the pristine surface.
    pub fn random_in(
        seed: u64,
        density: f64,
        kinds: &[DefectKind],
        width_cells: i32,
        height_rows: i32,
    ) -> Self {
        let mut defects = Vec::new();
        if kinds.is_empty() || density.is_nan() || density <= 0.0 {
            return DefectMap::new(defects);
        }
        for y in 0..height_rows {
            for x in 0..width_cells {
                for b in 0..2u8 {
                    let h = site_hash(seed, x, y, b);
                    if unit_f64(h) < density {
                        // Re-finalize for the species draw so it is
                        // independent of the occupancy draw.
                        let kind = kinds[(site_hash(h, x, y, b) % kinds.len() as u64) as usize];
                        defects.push(Defect {
                            position: LatticeCoord::new(x, y, b),
                            kind,
                        });
                    }
                }
            }
        }
        DefectMap::new(defects)
    }

    /// Parses a `seed:density[:kind,kind,...]` spec (no file access).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SurfaceSpecError`] on malformed input; never
    /// panics.
    pub fn parse_spec(spec: &str) -> Result<DefectMap, SurfaceSpecError> {
        let mut parts = spec.splitn(3, ':');
        let seed_s = parts.next().unwrap_or("").trim();
        let density_s = parts.next().unwrap_or("").trim();
        let seed: u64 = seed_s
            .parse()
            .map_err(|_| SurfaceSpecError::BadSeed(seed_s.to_string()))?;
        let density: f64 = density_s
            .parse()
            .map_err(|_| SurfaceSpecError::BadDensity(density_s.to_string()))?;
        if !density.is_finite() || !(0.0..=1.0).contains(&density) {
            return Err(SurfaceSpecError::BadDensity(density_s.to_string()));
        }
        let kinds = match parts.next() {
            None => DefectKind::ALL.to_vec(),
            Some(list) => {
                let mut kinds = Vec::new();
                for token in list.split(',') {
                    let token = token.trim();
                    let kind = DefectKind::from_label(token)
                        .ok_or_else(|| SurfaceSpecError::BadKind(token.to_string()))?;
                    kinds.push(kind);
                }
                kinds
            }
        };
        Ok(DefectMap::random(seed, density, &kinds))
    }

    /// Parses the defect-map file format: one `kind x y b` entry per
    /// line, `#` comments and blank lines ignored (no file access —
    /// the caller supplies the contents).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SurfaceSpecError`] on malformed input; never
    /// panics.
    pub fn parse_file(contents: &str) -> Result<DefectMap, SurfaceSpecError> {
        let mut defects = Vec::new();
        for (idx, raw) in contents.lines().enumerate() {
            let line = idx + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let fields: Vec<&str> = text.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(SurfaceSpecError::BadLine {
                    line,
                    reason: format!("expected 'kind x y b', got {} fields", fields.len()),
                });
            }
            let kind = DefectKind::from_label(fields[0]).ok_or(SurfaceSpecError::BadLine {
                line,
                reason: format!("unknown defect kind '{}'", fields[0]),
            })?;
            let x: i32 = fields[1].parse().map_err(|_| SurfaceSpecError::BadLine {
                line,
                reason: format!("bad x coordinate '{}'", fields[1]),
            })?;
            let y: i32 = fields[2].parse().map_err(|_| SurfaceSpecError::BadLine {
                line,
                reason: format!("bad y coordinate '{}'", fields[2]),
            })?;
            let b: u8 = match fields[3] {
                "0" => 0,
                "1" => 1,
                other => {
                    return Err(SurfaceSpecError::BadLine {
                        line,
                        reason: format!("bad sub-lattice index '{other}' (expected 0 or 1)"),
                    })
                }
            };
            defects.push(Defect {
                position: LatticeCoord::new(x, y, b),
                kind,
            });
        }
        Ok(DefectMap::new(defects))
    }

    /// Resolves a `SURFACE_DEFECTS`-style spec: a `seed:density[:kinds]`
    /// string, or the path of a defect-map file.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SurfaceSpecError`] on unreadable files or
    /// malformed contents; never panics.
    pub fn from_spec(spec: &str) -> Result<DefectMap, SurfaceSpecError> {
        let spec = spec.trim();
        // `seed:density` specs always contain a ':' whose left half is a
        // pure integer; anything else is treated as a path.
        if let Some((head, _)) = spec.split_once(':') {
            if head.trim().parse::<u64>().is_ok() {
                return Self::parse_spec(spec);
            }
        }
        let contents = std::fs::read_to_string(spec)
            .map_err(|e| SurfaceSpecError::Io(format!("{spec}: {e}")))?;
        Self::parse_file(&contents)
    }

    /// The external electrostatic potential each site of `layout` sees
    /// from the surface's charged defects:
    /// `ext_i = Σ_d q_d · v(max(dist(i, d), r_min))`, with the same
    /// interaction cutoff the [`crate::charge::InteractionMatrix`]
    /// applies to site–site terms. Structural (neutral) kinds contribute
    /// nothing here — their effect is purely exclusionary.
    pub fn external_potentials(&self, layout: &SidbLayout, params: &PhysicalParams) -> Vec<f64> {
        let mut ext = vec![0.0; layout.num_sites()];
        for defect in &self.defects {
            let q = defect.kind.charge_number();
            if q == 0 {
                continue;
            }
            for (site, slot) in layout.sites().iter().zip(ext.iter_mut()) {
                let d = site
                    .distance_angstrom(defect.position)
                    .max(MIN_DEFECT_DISTANCE_ANGSTROM);
                let mut e = params.interaction_ev(d);
                if e < params.interaction_cutoff_ev {
                    e = 0.0;
                }
                *slot += e * q as f64;
            }
        }
        ext
    }

    /// The largest external-potential magnitude any site of `layout`
    /// sees from this surface, plus whether any site violates a
    /// defect's structural exclusion radius. The geometric half of the
    /// "collides or perturbed beyond threshold" tile test.
    pub fn worst_perturbation(&self, layout: &SidbLayout, params: &PhysicalParams) -> (f64, bool) {
        let mut worst = 0.0f64;
        let mut excluded = false;
        for (i, &pot) in self.external_potentials(layout, params).iter().enumerate() {
            worst = worst.max(pot.abs());
            let site = layout.sites()[i];
            for defect in &self.defects {
                if site.distance_angstrom(defect.position) < defect.kind.exclusion_radius_angstrom()
                {
                    excluded = true;
                }
            }
        }
        (worst, excluded)
    }

    /// The reach (Å) within which one defect of `kind` matters for a
    /// tile: the structural exclusion radius, or — for charged kinds —
    /// the distance at which its screened potential still exceeds
    /// `threshold_ev`, whichever is larger. Solved by bisection on the
    /// strictly decreasing `v(d)`.
    fn reach_angstrom(kind: DefectKind, params: &PhysicalParams, threshold_ev: f64) -> f64 {
        let exclusion = kind.exclusion_radius_angstrom();
        let q = kind.charge_number().unsigned_abs() as f64;
        if q == 0.0 || threshold_ev <= 0.0 {
            return exclusion;
        }
        let mut lo = MIN_DEFECT_DISTANCE_ANGSTROM;
        let mut hi = 100.0 * params.lambda_tf_nm.max(1.0) * 10.0;
        if q * params.interaction_ev(lo) <= threshold_ev {
            return exclusion;
        }
        if q * params.interaction_ev(hi) > threshold_ev {
            return hi.max(exclusion);
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if q * params.interaction_ev(mid) > threshold_ev {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi.max(exclusion)
    }

    /// Tiles of a `max_w × max_h` floor plan whose footprint a defect
    /// collides with or perturbs beyond `threshold_ev`, for an
    /// arbitrary tile-origin convention. A tile is compromised when a
    /// defect falls inside its cell rectangle dilated by the defect
    /// kind's reach (a conservative rectangle test: the defect could
    /// then shift some dot of the tile past the threshold).
    fn compromised_tiles_with(
        &self,
        params: &PhysicalParams,
        threshold_ev: f64,
        max_w: i32,
        max_h: i32,
        origin: impl Fn(i32, i32) -> (i32, i32),
    ) -> Vec<(i32, i32)> {
        let mut out = Vec::new();
        if self.defects.is_empty() {
            return out;
        }
        // Pre-compute per-kind reach in cells/rows once.
        let margins: Vec<(i32, i32)> = DefectKind::ALL
            .iter()
            .map(|&k| {
                let reach = Self::reach_angstrom(k, params, threshold_ev);
                (
                    (reach / SIQAD_LATTICE.a).ceil() as i32,
                    (reach / SIQAD_LATTICE.b).ceil() as i32,
                )
            })
            .collect();
        let margin_of = |kind: DefectKind| -> (i32, i32) {
            let idx = DefectKind::ALL.iter().position(|&k| k == kind).unwrap_or(0);
            margins[idx]
        };
        for ty in 0..max_h {
            for tx in 0..max_w {
                let (ox, oy) = origin(tx, ty);
                let hit = self.defects.iter().any(|d| {
                    let (mx, my) = margin_of(d.kind);
                    d.position.x >= ox - mx
                        && d.position.x < ox + HEX_TILE_WIDTH_CELLS + mx
                        && d.position.y >= oy - my
                        && d.position.y < oy + HEX_ROW_PITCH_ROWS + my
                });
                if hit {
                    out.push((tx, ty));
                }
            }
        }
        out
    }

    /// Compromised tiles of a hexagonal (Bestagon) floor plan: tile
    /// `(tx, ty)` occupies the cell rectangle rooted at
    /// [`hex_tile_origin`]. See [`DefectMap::compromised_cart_tiles`]
    /// for the Cartesian-baseline analog.
    pub fn compromised_hex_tiles(
        &self,
        params: &PhysicalParams,
        threshold_ev: f64,
        max_w: i32,
        max_h: i32,
    ) -> Vec<(i32, i32)> {
        self.compromised_tiles_with(params, threshold_ev, max_w, max_h, hex_tile_origin)
    }

    /// Compromised tiles of the Cartesian baseline floor plan (same
    /// tile pitch, no odd-row shift).
    pub fn compromised_cart_tiles(
        &self,
        params: &PhysicalParams,
        threshold_ev: f64,
        max_w: i32,
        max_h: i32,
    ) -> Vec<(i32, i32)> {
        self.compromised_tiles_with(params, threshold_ev, max_w, max_h, |tx, ty| {
            (tx * HEX_TILE_WIDTH_CELLS, ty * HEX_ROW_PITCH_ROWS)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charged(kind: DefectKind, x: i32, y: i32) -> DefectMap {
        DefectMap::new(vec![Defect {
            position: LatticeCoord::new(x, y, 0),
            kind,
        }])
    }

    #[test]
    fn each_kind_perturbs_by_hand_computed_screened_coulomb() {
        // One site at the origin, one defect 10 cells east (38.4 Å):
        // ext = q · 14.399645/5.6 · exp(−38.4/50)/38.4.
        let params = PhysicalParams::default();
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let d = 10.0 * SIQAD_LATTICE.a;
        let v = crate::model::COULOMB_EV_ANGSTROM / params.epsilon_r * (-d / 50.0).exp() / d;
        for kind in DefectKind::ALL {
            let ext = charged(kind, 10, 0).external_potentials(&layout, &params);
            let expected = v * kind.charge_number() as f64;
            assert!(
                (ext[0] - expected).abs() < 1e-12,
                "{kind}: {} vs {expected}",
                ext[0]
            );
        }
    }

    #[test]
    fn neutral_kinds_exclude_but_do_not_perturb() {
        let params = PhysicalParams::default();
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let map = charged(DefectKind::Siloxane, 1, 0); // 3.84 Å < 5.0 Å exclusion
        let (worst, excluded) = map.worst_perturbation(&layout, &params);
        assert_eq!(worst, 0.0);
        assert!(excluded);
    }

    #[test]
    fn coincident_defect_is_clamped_not_infinite() {
        let params = PhysicalParams::default();
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let ext = charged(DefectKind::DbPair, 0, 0).external_potentials(&layout, &params);
        assert!(ext[0].is_finite());
        assert!(ext[0] < -1.0, "clamped potential is huge: {}", ext[0]);
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = DefectMap::random(7, 1e-4, &DefectKind::ALL);
        let b = DefectMap::random(7, 1e-4, &DefectKind::ALL);
        let c = DefectMap::random(8, 1e-4, &DefectKind::ALL);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty(), "1e-4 over the default region yields defects");
    }

    #[test]
    fn random_density_scales_counts() {
        let lo = DefectMap::random(1, 1e-4, &DefectKind::ALL).len();
        let hi = DefectMap::random(1, 1e-3, &DefectKind::ALL).len();
        assert!(hi > lo);
        assert!(DefectMap::random(1, 0.0, &DefectKind::ALL).is_empty());
        assert!(DefectMap::random(1, 0.5, &[]).is_empty());
    }

    #[test]
    fn spec_parser_round_trips_and_rejects_garbage() {
        let m = DefectMap::parse_spec("7:0.0001").expect("valid spec");
        assert_eq!(m, DefectMap::random(7, 1e-4, &DefectKind::ALL));
        let only_db = DefectMap::parse_spec("7:0.0001:db_pair").expect("valid spec");
        assert!(only_db
            .defects()
            .iter()
            .all(|d| d.kind == DefectKind::DbPair));
        assert!(matches!(
            DefectMap::parse_spec("x:0.1"),
            Err(SurfaceSpecError::BadSeed(_))
        ));
        assert!(matches!(
            DefectMap::parse_spec("7:nan"),
            Err(SurfaceSpecError::BadDensity(_))
        ));
        assert!(matches!(
            DefectMap::parse_spec("7:2.0"),
            Err(SurfaceSpecError::BadDensity(_))
        ));
        assert!(matches!(
            DefectMap::parse_spec("7:0.1:unobtainium"),
            Err(SurfaceSpecError::BadKind(_))
        ));
    }

    #[test]
    fn file_parser_reads_entries_and_reports_lines() {
        let m = DefectMap::parse_file(
            "# a scanned surface\n\
             arsenic_dimer 12 5 0\n\
             db_pair 40 11 1  # inline comment\n\
             \n\
             siloxane -3 0 0\n",
        )
        .expect("valid file");
        assert_eq!(m.len(), 3);
        assert_eq!(m.defects()[1].position, LatticeCoord::new(40, 11, 1));
        let err = DefectMap::parse_file("db_pair 1 2\n").unwrap_err();
        assert!(matches!(err, SurfaceSpecError::BadLine { line: 1, .. }));
        let err = DefectMap::parse_file("ok 1 2 0\n").unwrap_err();
        assert!(matches!(err, SurfaceSpecError::BadLine { line: 1, .. }));
        let err = DefectMap::parse_file("db_pair 1 2 7\n").unwrap_err();
        assert!(matches!(err, SurfaceSpecError::BadLine { line: 1, .. }));
    }

    #[test]
    fn compromised_tiles_are_local_to_the_defect() {
        let params = PhysicalParams::default();
        // One charged defect in the middle of hex tile (1, 1).
        let (ox, oy) = hex_tile_origin(1, 1);
        let map = DefectMap::new(vec![Defect {
            position: LatticeCoord::new(ox + 30, oy + 11, 0),
            kind: DefectKind::DbPair,
        }]);
        let bad = map.compromised_hex_tiles(&params, 2e-3, 4, 4);
        assert!(bad.contains(&(1, 1)));
        // The far corner is out of reach (several tiles away).
        assert!(!bad.contains(&(3, 3)));
        assert!(map
            .compromised_hex_tiles(&params, 2e-3, 4, 4)
            .iter()
            .all(|&(x, y)| (0..4).contains(&x) && (0..4).contains(&y)));
    }

    #[test]
    fn pristine_surface_compromises_nothing() {
        let params = PhysicalParams::default();
        assert!(DefectMap::pristine()
            .compromised_hex_tiles(&params, 2e-3, 10, 10)
            .is_empty());
    }
}
