//! Exhaustive ground-state search (ExGS).
//!
//! Enumerates all `2^n` two-state charge configurations in Gray-code
//! order, maintaining local potentials incrementally (O(n) per step), and
//! returns the physically valid configuration of minimal grand-potential
//! free energy. Exact, and fast enough for gate-sized instances (the
//! Bestagon standard tiles have ≈ 10–25 SiDBs); circuit-scale layouts use
//! [`crate::simanneal`] instead.

use crate::charge::{ChargeConfiguration, ChargeState, InteractionMatrix};
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use fcn_budget::StepBudget;

/// A configuration together with its energies, as returned by the search
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedState {
    /// The charge configuration.
    pub config: ChargeConfiguration,
    /// Electrostatic energy, eV.
    pub electrostatic_energy: f64,
    /// Grand-potential free energy, eV (the ranking criterion).
    pub free_energy: f64,
}

/// Practical site-count limit of the exhaustive search.
pub const MAX_EXHAUSTIVE_SITES: usize = 30;

/// Finds the exact ground state of a layout (two-state model).
///
/// Returns `None` for an empty layout.
///
/// # Panics
///
/// Panics if the layout has more than [`MAX_EXHAUSTIVE_SITES`] sites or if
/// `params.three_state` is set (the exhaustive engine models the
/// negative/neutral system the paper's gates operate in).
pub fn exhaustive_ground_state(
    layout: &SidbLayout,
    params: &PhysicalParams,
) -> Option<ChargeConfiguration> {
    exhaustive_low_energy(layout, params, 1)
        .pop()
        .map(|s| s.config)
}

/// Finds the `k` lowest-free-energy physically valid configurations,
/// sorted ascending (the ground state first). Useful for inspecting the
/// excited-state spectrum and energetic separation of logic states.
///
/// # Panics
///
/// See [`exhaustive_ground_state`].
pub fn exhaustive_low_energy(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
) -> Vec<SimulatedState> {
    exhaustive_low_energy_bounded(layout, params, k, &StepBudget::unbounded()).states
}

/// Result of a bounded exhaustive sweep (see
/// [`exhaustive_low_energy_bounded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedSweep {
    /// The lowest-free-energy states found *within the budget*, sorted
    /// ascending. Exact when `truncated` is false.
    pub states: Vec<SimulatedState>,
    /// Whether the sweep stopped early; when true, `states` covers only
    /// the configurations visited before the budget ran out.
    pub truncated: bool,
    /// Gray-code steps actually taken (configurations visited).
    pub steps: u64,
}

/// How often the Gray-code sweep polls the wall-clock deadline. Cheap
/// relative to a step (one `Instant::now` per this many O(n) updates)
/// while keeping deadline overshoot in the microsecond range.
const DEADLINE_POLL_INTERVAL: u64 = 4096;

/// [`exhaustive_low_energy`] under a step/wall-clock budget: the sweep
/// visits at most `budget.max_steps` configurations and polls
/// `budget.deadline` every 4096 steps, reporting
/// a truncated (best-effort) spectrum instead of running to completion.
/// With an unbounded budget the result is exact and byte-identical to
/// [`exhaustive_low_energy`], and nothing is polled. Hosts the
/// `sidb.sweep` fault-injection point: an injected `exhaust` truncates
/// the sweep immediately when any limit is configured, and an injected
/// `panic` fires here.
///
/// # Panics
///
/// See [`exhaustive_ground_state`].
pub fn exhaustive_low_energy_bounded(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
    budget: &StepBudget,
) -> BoundedSweep {
    assert!(
        !params.three_state,
        "exhaustive search implements the two-state model"
    );
    let n = layout.num_sites();
    if n == 0 || k == 0 {
        return BoundedSweep {
            states: Vec::new(),
            truncated: false,
            steps: 0,
        };
    }
    let m = InteractionMatrix::new(layout, params);

    // Pre-assign sites that are negative in *every* population-stable
    // configuration: if even the all-negative surroundings leave
    // V_i ≥ μ−, a neutral state at i can never be stable (the same
    // pruning idea as SiQAD/fiction's exact engines use). Perturbers and
    // other isolated dots fall out of the exponential search this way.
    let mut free_sites: Vec<usize> = Vec::new();
    let mut fixed_negative = vec![false; n];
    for (i, fixed) in fixed_negative.iter_mut().enumerate() {
        let lower_bound: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| -m.interaction(i, j))
            .sum();
        if lower_bound >= params.mu_minus - 1e-9 {
            *fixed = true;
        } else {
            free_sites.push(i);
        }
    }
    let n_free = free_sites.len();
    assert!(
        n_free <= MAX_EXHAUSTIVE_SITES,
        "exhaustive search supports at most {MAX_EXHAUSTIVE_SITES} free sites"
    );
    fcn_telemetry::counter("exgs.sites", n as u64);
    fcn_telemetry::counter("exgs.fixed_sites", (n - n_free) as u64);
    fcn_telemetry::counter("exgs.states", 1u64 << n_free);

    // Gray-code sweep over the free sites with incremental local
    // potentials and energy, starting from the fixed-negative background.
    let mut config = ChargeConfiguration::neutral(n);
    let mut potentials = vec![0.0f64; n];
    let mut energy = 0.0f64;
    let mut num_negative = 0usize;
    for (i, &fixed) in fixed_negative.iter().enumerate() {
        if fixed {
            config.set_state(i, ChargeState::Negative);
            num_negative += 1;
        }
    }
    for (i, &fixed) in fixed_negative.iter().enumerate() {
        if !fixed {
            continue;
        }
        for (j, p) in potentials.iter_mut().enumerate() {
            if j != i {
                *p -= m.interaction(i, j);
            }
        }
        energy += (0..i)
            .filter(|&j| fixed_negative[j])
            .map(|j| m.interaction(i, j))
            .sum::<f64>();
    }

    let mut best: Vec<SimulatedState> = Vec::new();
    let mut valid_states = 0u64;
    let mut consider = |config: &ChargeConfiguration,
                        potentials: &[f64],
                        energy: f64,
                        num_negative: usize,
                        best: &mut Vec<SimulatedState>| {
        const EPS: f64 = 1e-9;
        // Population stability from the maintained potentials.
        let stable = config
            .states()
            .iter()
            .zip(potentials)
            .all(|(s, &v)| match s {
                ChargeState::Negative => v >= params.mu_minus - EPS,
                ChargeState::Neutral => v <= params.mu_minus + EPS,
                ChargeState::Positive => false,
            });
        if !stable || !config.is_configuration_stable(&m) {
            return;
        }
        valid_states += 1;
        let free = energy + params.mu_minus * num_negative as f64;
        let state = SimulatedState {
            config: config.clone(),
            electrostatic_energy: energy,
            free_energy: free,
        };
        let pos = best
            .binary_search_by(|s| {
                s.free_energy
                    .partial_cmp(&free)
                    .unwrap_or(core::cmp::Ordering::Equal)
            })
            .unwrap_or_else(|p| p);
        best.insert(pos, state);
        best.truncate(k);
    };

    // Budget checks are strictly opt-in: with no limits configured and
    // no fault plan armed, the sweep below is the exact loop the
    // unbounded API always ran.
    let bounded = !budget.is_unbounded() || fcn_budget::fault::armed();
    let mut truncated = false;
    let mut steps_taken = 1u64; // the seed configuration counts

    consider(&config, &potentials, energy, num_negative, &mut best);
    for step in 1u64..(1u64 << n_free) {
        if bounded {
            if matches!(
                fcn_budget::fault::check("sidb.sweep"),
                Some(fcn_budget::fault::Fault::Exhaust)
            ) && !budget.is_unbounded()
            {
                truncated = true;
                break;
            }
            if budget.max_steps.is_some_and(|max| step >= max) {
                truncated = true;
                break;
            }
            if step % DEADLINE_POLL_INTERVAL == 0 && budget.deadline.expired() {
                truncated = true;
                break;
            }
        }
        steps_taken += 1;
        let site = free_sites[step.trailing_zeros() as usize];
        let (new_state, delta) = match config.state(site) {
            ChargeState::Neutral => (ChargeState::Negative, -1.0),
            ChargeState::Negative => (ChargeState::Neutral, 1.0),
            ChargeState::Positive => unreachable!("two-state sweep"),
        };
        // ΔE = Δn_i · V_i.
        energy += delta * potentials[site];
        num_negative = if new_state == ChargeState::Negative {
            num_negative + 1
        } else {
            num_negative - 1
        };
        config.set_state(site, new_state);
        for (j, p) in potentials.iter_mut().enumerate() {
            if j != site {
                *p += delta * m.interaction(site, j);
            }
        }
        consider(&config, &potentials, energy, num_negative, &mut best);
    }
    fcn_telemetry::counter("exgs.valid_states", valid_states);
    if truncated {
        fcn_telemetry::counter("exgs.truncated", 1);
    }
    BoundedSweep {
        states: best,
        truncated,
        steps: steps_taken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dot_ground_state_is_negative() {
        let layout = SidbLayout::from_sites([(5, 3, 1)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.state(0), ChargeState::Negative);
    }

    #[test]
    fn close_pair_ground_state_has_one_electron() {
        // One lattice cell (3.84 Å): v ≈ 0.62 eV > |μ−| → a single shared
        // electron, the BDL pair regime.
        let layout = SidbLayout::from_sites([(0, 0, 0), (1, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 1);
    }

    #[test]
    fn medium_pair_charges_fully_at_default_mu() {
        // Two cells (7.68 Å): v ≈ 0.29 eV < |μ−| = 0.32 → both dots charge.
        let layout = SidbLayout::from_sites([(0, 0, 0), (2, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 2);
        // At the Figure 1c level μ− = −0.28 the same pair holds one
        // electron — the transition the BDL regime depends on.
        let gs28 =
            exhaustive_ground_state(&layout, &PhysicalParams::default().with_mu_minus(-0.28))
                .expect("non-empty");
        assert_eq!(gs28.num_negative(), 1);
    }

    #[test]
    fn far_pair_ground_state_has_two_electrons() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (50, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 2);
    }

    #[test]
    fn ground_state_matches_brute_force() {
        // Cross-validate the incremental sweep against a naive evaluation.
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        let n = layout.num_sites();

        let mut best_naive: Option<(f64, ChargeConfiguration)> = None;
        for index in 0..(1u64 << n) {
            let cfg = ChargeConfiguration::from_index(n, index);
            if cfg.is_physically_valid(&m) {
                let f = cfg.free_energy(&m);
                if best_naive.as_ref().map(|(bf, _)| f < *bf).unwrap_or(true) {
                    best_naive = Some((f, cfg));
                }
            }
        }
        let (naive_f, naive_cfg) = best_naive.expect("a valid configuration exists");
        let fast = exhaustive_low_energy(&layout, &params, 1);
        assert_eq!(fast.len(), 1);
        assert!((fast[0].free_energy - naive_f).abs() < 1e-9);
        assert_eq!(fast[0].config.num_negative(), naive_cfg.num_negative());
    }

    #[test]
    fn incremental_energy_is_consistent() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 0, 0), (2, 1, 1), (9, 1, 0)]);
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        for s in exhaustive_low_energy(&layout, &params, 5) {
            let direct_e = s.config.electrostatic_energy(&m);
            let direct_f = s.config.free_energy(&m);
            assert!((s.electrostatic_energy - direct_e).abs() < 1e-9);
            assert!((s.free_energy - direct_f).abs() < 1e-9);
            assert!(s.config.is_physically_valid(&m));
        }
    }

    #[test]
    fn low_energy_states_are_sorted() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (6, 0, 0), (12, 0, 0), (18, 0, 0)]);
        let states = exhaustive_low_energy(&layout, &PhysicalParams::default(), 4);
        assert!(!states.is_empty());
        for w in states.windows(2) {
            assert!(w[0].free_energy <= w[1].free_energy + 1e-12);
        }
    }

    #[test]
    fn empty_layout_has_no_ground_state() {
        let layout = SidbLayout::new();
        assert!(exhaustive_ground_state(&layout, &PhysicalParams::default()).is_none());
    }

    #[test]
    fn unbounded_budget_matches_unbounded_api() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1)]);
        let params = PhysicalParams::default();
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 3, &StepBudget::unbounded());
        assert!(!sweep.truncated);
        assert_eq!(sweep.states, exhaustive_low_energy(&layout, &params, 3));
    }

    #[test]
    fn step_budget_truncates_the_sweep() {
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let budget = StepBudget {
            max_steps: Some(4),
            deadline: fcn_budget::Deadline::unbounded(),
        };
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 3, &budget);
        assert!(sweep.truncated);
        assert_eq!(sweep.steps, 4);
    }

    #[test]
    fn expired_deadline_truncates_without_panicking() {
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let budget = StepBudget {
            max_steps: None,
            deadline: fcn_budget::Deadline::after_ms(0),
        };
        // The 5-site sweep is shorter than the poll interval, so an
        // expired deadline may or may not be observed — but either way
        // the call returns a well-formed result.
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 1, &budget);
        assert!(sweep.steps >= 1);
    }

    #[test]
    fn injected_sweep_exhaust_truncates_only_bounded_runs() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1)]);
        let params = PhysicalParams::default();
        let _scope = install(std::sync::Arc::new(FaultPlan::single(
            "sidb.sweep",
            Fault::Exhaust,
        )));
        let unbounded =
            exhaustive_low_energy_bounded(&layout, &params, 1, &StepBudget::unbounded());
        assert!(!unbounded.truncated, "unbounded sweeps stay exact");
        let bounded = exhaustive_low_energy_bounded(
            &layout,
            &params,
            1,
            &StepBudget {
                max_steps: Some(1 << 20),
                deadline: fcn_budget::Deadline::unbounded(),
            },
        );
        assert!(bounded.truncated);
    }
}

/// Exhaustive ground-state search in the **three-state** model
/// (negative/neutral/positive), for small layouts.
///
/// Positive charge states only appear under extreme Coulombic crowding
/// (the paper's gate configurations never populate them), but the full
/// model is needed to *demonstrate* that, and for robustness analyses
/// near dense canvases. Complexity is `3^n`; intended for `n ≤ 16`.
///
/// Returns the valid configuration with minimal grand-potential free
/// energy, or `None` for an empty layout.
///
/// # Panics
///
/// Panics if the layout has more than [`MAX_THREE_STATE_SITES`] sites.
pub fn exhaustive_ground_state_three_state(
    layout: &SidbLayout,
    params: &PhysicalParams,
) -> Option<ChargeConfiguration> {
    let n = layout.num_sites();
    assert!(
        n <= MAX_THREE_STATE_SITES,
        "three-state exhaustive search supports at most {MAX_THREE_STATE_SITES} sites"
    );
    if n == 0 {
        return None;
    }
    let params = PhysicalParams {
        three_state: true,
        ..*params
    };
    let m = InteractionMatrix::new(layout, &params);
    let mut best: Option<(f64, ChargeConfiguration)> = None;
    let mut config = ChargeConfiguration::neutral(n);
    enumerate_three_state(&m, &mut config, 0, &mut best);
    best.map(|(_, c)| c)
}

/// Practical site-count limit of the three-state search.
pub const MAX_THREE_STATE_SITES: usize = 16;

fn enumerate_three_state(
    m: &InteractionMatrix,
    config: &mut ChargeConfiguration,
    depth: usize,
    best: &mut Option<(f64, ChargeConfiguration)>,
) {
    if depth == config.len() {
        if config.is_physically_valid(m) {
            let f = config.free_energy(m);
            if best.as_ref().map(|(bf, _)| f < *bf).unwrap_or(true) {
                *best = Some((f, config.clone()));
            }
        }
        return;
    }
    for state in [
        ChargeState::Negative,
        ChargeState::Neutral,
        ChargeState::Positive,
    ] {
        config.set_state(depth, state);
        enumerate_three_state(m, config, depth + 1, best);
    }
    config.set_state(depth, ChargeState::Neutral);
}

#[cfg(test)]
mod three_state_tests {
    use super::*;

    #[test]
    fn isolated_dot_is_negative_in_three_state_model() {
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let gs = exhaustive_ground_state_three_state(&layout, &PhysicalParams::default())
            .expect("non-empty");
        assert_eq!(gs.state(0), ChargeState::Negative);
    }

    #[test]
    fn sparse_layouts_match_the_two_state_model() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 0, 0), (8, 1, 0), (2, 3, 1)]);
        let params = PhysicalParams::default();
        let two = exhaustive_ground_state(&layout, &params).expect("ok");
        let three = exhaustive_ground_state_three_state(&layout, &params).expect("ok");
        assert_eq!(two.states(), three.states());
    }

    #[test]
    fn extreme_crowding_can_populate_positive_states() {
        // A dense 3×3 block of dots at minimal pitch: the three-state
        // search must at least run and produce a valid configuration; if
        // any positive state appears, the two-state model would have been
        // inadequate here.
        let mut layout = SidbLayout::new();
        for x in 0..3 {
            for y in 0..3 {
                layout.add_site((x, y, 0));
                layout.add_site((x, y, 1));
            }
        }
        // 18 sites exceeds the bound; trim to a 2×2 block of dimer pairs.
        let layout =
            SidbLayout::from_sites(layout.sites().iter().copied().take(8).collect::<Vec<_>>());
        let params = PhysicalParams::default().with_three_state();
        let m = InteractionMatrix::new(&layout, &params);
        let gs = exhaustive_ground_state_three_state(&layout, &params).expect("ok");
        assert!(gs.is_physically_valid(&m));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_sites_panics() {
        let layout = SidbLayout::from_sites((0..20).map(|i| (i, 0, 0)));
        let _ = exhaustive_ground_state_three_state(&layout, &PhysicalParams::default());
    }
}
