//! Exhaustive ground-state search (ExGS) — legacy entry points.
//!
//! The exhaustive engine enumerates all `2^n` two-state charge
//! configurations in Gray-code order, maintaining local potentials
//! incrementally (O(n) per step), and returns the physically valid
//! configurations of minimal grand-potential free energy. Exact, and
//! fast enough for gate-sized instances (the Bestagon standard tiles
//! have ≈ 10–25 SiDBs); circuit-scale layouts use annealing instead.
//!
//! The engine itself lives in [`crate::engine`]; the free functions
//! here are thin deprecated wrappers kept for source compatibility.
//! New code selects the same algorithm with
//! [`crate::engine::simulate_with`] and
//! [`SimEngine::Exhaustive`](crate::engine::SimEngine).

use crate::charge::ChargeConfiguration;
use crate::engine::{simulate_with, SimEngine, SimParams};
use crate::layout::SidbLayout;
use crate::model::PhysicalParams;
use fcn_budget::StepBudget;

/// A configuration together with its energies, as returned by the search
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedState {
    /// The charge configuration.
    pub config: ChargeConfiguration,
    /// Electrostatic energy, eV.
    pub electrostatic_energy: f64,
    /// Grand-potential free energy, eV (the ranking criterion).
    pub free_energy: f64,
}

/// Practical site-count limit of the exhaustive search.
pub const MAX_EXHAUSTIVE_SITES: usize = 30;

/// Practical site-count limit of the three-state search.
pub const MAX_THREE_STATE_SITES: usize = 16;

/// Finds the exact ground state of a layout (two-state model).
///
/// Returns `None` for an empty layout.
///
/// # Panics
///
/// Panics if the layout has more than [`MAX_EXHAUSTIVE_SITES`] free
/// sites or if `params.three_state` is set (the exhaustive engine
/// models the negative/neutral system the paper's gates operate in).
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::Exhaustive`"
)]
pub fn exhaustive_ground_state(
    layout: &SidbLayout,
    params: &PhysicalParams,
) -> Option<ChargeConfiguration> {
    simulate_with(
        layout,
        &SimParams::new(*params).with_engine(SimEngine::Exhaustive),
    )
    .states
    .pop()
    .map(|s| s.config)
}

/// Finds the `k` lowest-free-energy physically valid configurations,
/// sorted ascending (the ground state first). Useful for inspecting the
/// excited-state spectrum and energetic separation of logic states.
///
/// # Panics
///
/// See [`exhaustive_ground_state`].
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::Exhaustive`"
)]
pub fn exhaustive_low_energy(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
) -> Vec<SimulatedState> {
    simulate_with(
        layout,
        &SimParams::new(*params)
            .with_engine(SimEngine::Exhaustive)
            .with_k(k),
    )
    .states
}

/// Result of a bounded exhaustive sweep (see
/// [`exhaustive_low_energy_bounded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedSweep {
    /// The lowest-free-energy states found *within the budget*, sorted
    /// ascending. Exact when `truncated` is false.
    pub states: Vec<SimulatedState>,
    /// Whether the sweep stopped early; when true, `states` covers only
    /// the configurations visited before the budget ran out.
    pub truncated: bool,
    /// Gray-code steps actually taken (configurations visited).
    pub steps: u64,
}

/// [`exhaustive_low_energy`] under a step/wall-clock budget: the sweep
/// visits at most `budget.max_steps` configurations and polls
/// `budget.deadline` every 4096 steps, reporting
/// a truncated (best-effort) spectrum instead of running to completion.
/// With an unbounded budget the result is exact. Bounded runs host the
/// `sidb.sweep` fault-injection point: an injected `exhaust` truncates
/// the sweep immediately when any limit is configured, and an injected
/// `panic` fires here.
///
/// # Panics
///
/// See [`exhaustive_ground_state`].
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `SimEngine::Exhaustive` and `with_budget`"
)]
pub fn exhaustive_low_energy_bounded(
    layout: &SidbLayout,
    params: &PhysicalParams,
    k: usize,
    budget: &StepBudget,
) -> BoundedSweep {
    let r = simulate_with(
        layout,
        &SimParams::new(*params)
            .with_engine(SimEngine::Exhaustive)
            .with_k(k)
            .with_budget(*budget),
    );
    BoundedSweep {
        states: r.states,
        truncated: r.truncated,
        steps: r.stats.visited,
    }
}

/// Exhaustive ground-state search in the **three-state** model
/// (negative/neutral/positive), for small layouts.
///
/// Positive charge states only appear under extreme Coulombic crowding
/// (the paper's gate configurations never populate them), but the full
/// model is needed to *demonstrate* that, and for robustness analyses
/// near dense canvases. Complexity is `3^n`; intended for `n ≤ 16`.
///
/// Returns the valid configuration with minimal grand-potential free
/// energy, or `None` for an empty layout.
///
/// # Panics
///
/// Panics if the layout has more than [`MAX_THREE_STATE_SITES`] sites.
#[deprecated(
    since = "0.6.0",
    note = "use `engine::simulate_with` with `with_three_state`"
)]
pub fn exhaustive_ground_state_three_state(
    layout: &SidbLayout,
    params: &PhysicalParams,
) -> Option<ChargeConfiguration> {
    simulate_with(layout, &SimParams::new(*params).with_three_state())
        .states
        .pop()
        .map(|s| s.config)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::charge::{ChargeState, InteractionMatrix};

    #[test]
    fn single_dot_ground_state_is_negative() {
        let layout = SidbLayout::from_sites([(5, 3, 1)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.state(0), ChargeState::Negative);
    }

    #[test]
    fn close_pair_ground_state_has_one_electron() {
        // One lattice cell (3.84 Å): v ≈ 0.62 eV > |μ−| → a single shared
        // electron, the BDL pair regime.
        let layout = SidbLayout::from_sites([(0, 0, 0), (1, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 1);
    }

    #[test]
    fn medium_pair_charges_fully_at_default_mu() {
        // Two cells (7.68 Å): v ≈ 0.29 eV < |μ−| = 0.32 → both dots charge.
        let layout = SidbLayout::from_sites([(0, 0, 0), (2, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 2);
        // At the Figure 1c level μ− = −0.28 the same pair holds one
        // electron — the transition the BDL regime depends on.
        let gs28 =
            exhaustive_ground_state(&layout, &PhysicalParams::default().with_mu_minus(-0.28))
                .expect("non-empty");
        assert_eq!(gs28.num_negative(), 1);
    }

    #[test]
    fn far_pair_ground_state_has_two_electrons() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (50, 0, 0)]);
        let gs = exhaustive_ground_state(&layout, &PhysicalParams::default()).expect("non-empty");
        assert_eq!(gs.num_negative(), 2);
    }

    #[test]
    fn ground_state_matches_brute_force() {
        // Cross-validate the incremental sweep against a naive evaluation.
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        let n = layout.num_sites();

        let mut best_naive: Option<(f64, ChargeConfiguration)> = None;
        for index in 0..(1u64 << n) {
            let cfg = ChargeConfiguration::from_index(n, index);
            if cfg.is_physically_valid(&m) {
                let f = cfg.free_energy(&m);
                if best_naive.as_ref().map(|(bf, _)| f < *bf).unwrap_or(true) {
                    best_naive = Some((f, cfg));
                }
            }
        }
        let (naive_f, naive_cfg) = best_naive.expect("a valid configuration exists");
        let fast = exhaustive_low_energy(&layout, &params, 1);
        assert_eq!(fast.len(), 1);
        assert!((fast[0].free_energy - naive_f).abs() < 1e-9);
        assert_eq!(fast[0].config.num_negative(), naive_cfg.num_negative());
    }

    #[test]
    fn incremental_energy_is_consistent() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 0, 0), (2, 1, 1), (9, 1, 0)]);
        let params = PhysicalParams::default();
        let m = InteractionMatrix::new(&layout, &params);
        for s in exhaustive_low_energy(&layout, &params, 5) {
            let direct_e = s.config.electrostatic_energy(&m);
            let direct_f = s.config.free_energy(&m);
            assert!((s.electrostatic_energy - direct_e).abs() < 1e-9);
            assert!((s.free_energy - direct_f).abs() < 1e-9);
            assert!(s.config.is_physically_valid(&m));
        }
    }

    #[test]
    fn low_energy_states_are_sorted() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (6, 0, 0), (12, 0, 0), (18, 0, 0)]);
        let states = exhaustive_low_energy(&layout, &PhysicalParams::default(), 4);
        assert!(!states.is_empty());
        for w in states.windows(2) {
            assert!(w[0].free_energy <= w[1].free_energy + 1e-12);
        }
    }

    #[test]
    fn empty_layout_has_no_ground_state() {
        let layout = SidbLayout::new();
        assert!(exhaustive_ground_state(&layout, &PhysicalParams::default()).is_none());
    }

    #[test]
    fn unbounded_budget_matches_unbounded_api() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1)]);
        let params = PhysicalParams::default();
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 3, &StepBudget::unbounded());
        assert!(!sweep.truncated);
        assert_eq!(sweep.states, exhaustive_low_energy(&layout, &params, 3));
    }

    #[test]
    fn step_budget_truncates_the_sweep() {
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let budget = StepBudget {
            max_steps: Some(4),
            deadline: fcn_budget::Deadline::unbounded(),
        };
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 3, &budget);
        assert!(sweep.truncated);
        assert_eq!(sweep.steps, 4);
    }

    #[test]
    fn expired_deadline_truncates_without_panicking() {
        let layout =
            SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1), (8, 2, 0)]);
        let params = PhysicalParams::default();
        let budget = StepBudget {
            max_steps: None,
            deadline: fcn_budget::Deadline::after_ms(0),
        };
        // The 5-site sweep is shorter than the poll interval, so an
        // expired deadline may or may not be observed — but either way
        // the call returns a well-formed result.
        let sweep = exhaustive_low_energy_bounded(&layout, &params, 1, &budget);
        assert!(sweep.steps >= 1);
    }

    #[test]
    fn injected_sweep_exhaust_truncates_only_bounded_runs() {
        use fcn_budget::fault::{install, Fault, FaultPlan};
        let layout = SidbLayout::from_sites([(0, 0, 0), (3, 0, 0), (6, 1, 0), (1, 2, 1)]);
        let params = PhysicalParams::default();
        let _scope = install(std::sync::Arc::new(FaultPlan::single(
            "sidb.sweep",
            Fault::Exhaust,
        )));
        let unbounded =
            exhaustive_low_energy_bounded(&layout, &params, 1, &StepBudget::unbounded());
        assert!(!unbounded.truncated, "unbounded sweeps stay exact");
        let bounded = exhaustive_low_energy_bounded(
            &layout,
            &params,
            1,
            &StepBudget {
                max_steps: Some(1 << 20),
                deadline: fcn_budget::Deadline::unbounded(),
            },
        );
        assert!(bounded.truncated);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod three_state_tests {
    use super::*;
    use crate::charge::{ChargeState, InteractionMatrix};

    #[test]
    fn isolated_dot_is_negative_in_three_state_model() {
        let layout = SidbLayout::from_sites([(0, 0, 0)]);
        let gs = exhaustive_ground_state_three_state(&layout, &PhysicalParams::default())
            .expect("non-empty");
        assert_eq!(gs.state(0), ChargeState::Negative);
    }

    #[test]
    fn sparse_layouts_match_the_two_state_model() {
        let layout = SidbLayout::from_sites([(0, 0, 0), (4, 0, 0), (8, 1, 0), (2, 3, 1)]);
        let params = PhysicalParams::default();
        let two = exhaustive_ground_state(&layout, &params).expect("ok");
        let three = exhaustive_ground_state_three_state(&layout, &params).expect("ok");
        assert_eq!(two.states(), three.states());
    }

    #[test]
    fn extreme_crowding_can_populate_positive_states() {
        // A dense 3×3 block of dots at minimal pitch: the three-state
        // search must at least run and produce a valid configuration; if
        // any positive state appears, the two-state model would have been
        // inadequate here.
        let mut layout = SidbLayout::new();
        for x in 0..3 {
            for y in 0..3 {
                layout.add_site((x, y, 0));
                layout.add_site((x, y, 1));
            }
        }
        // 18 sites exceeds the bound; trim to a 2×2 block of dimer pairs.
        let layout =
            SidbLayout::from_sites(layout.sites().iter().copied().take(8).collect::<Vec<_>>());
        let params = PhysicalParams::default().with_three_state();
        let m = InteractionMatrix::new(&layout, &params);
        let gs = exhaustive_ground_state_three_state(&layout, &params).expect("ok");
        assert!(gs.is_physically_valid(&m));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_sites_panics() {
        let layout = SidbLayout::from_sites((0..20).map(|i| (i, 0, 0)));
        let _ = exhaustive_ground_state_three_state(&layout, &PhysicalParams::default());
    }
}
