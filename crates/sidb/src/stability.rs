//! Logic-state stability: energy gaps and critical-temperature
//! estimates.
//!
//! A gate that is operational at zero temperature can still fail
//! thermally if a charge configuration with the *wrong* output read-out
//! lies only a small energy above the ground state. This module
//! quantifies that margin per input pattern: the free-energy gap between
//! the ground state and the lowest physically valid state whose outputs
//! decode differently, and the naive critical temperature
//! `T_c = ΔE / k_B` at which the erroneous state's Boltzmann weight
//! becomes comparable — the "energetic separation" analysis the SiDB
//! literature (and the paper's SiQAD reference) perform on gate designs.

use crate::engine::{simulate_with, SimParams};
use crate::model::PhysicalParams;
use crate::operational::{Engine, GateDesign};

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333e-5;

/// Stability data for one input pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStability {
    /// The input pattern (bit `i` = input `i`).
    pub pattern: u32,
    /// Free-energy gap to the lowest wrong-reading valid state, eV.
    /// `None` when no wrong-reading state was found among the inspected
    /// low-energy states (the gap exceeds the search horizon — good).
    pub gap_ev: Option<f64>,
}

impl PatternStability {
    /// Naive critical temperature `ΔE / k_B`, in kelvin.
    pub fn critical_temperature_k(&self) -> Option<f64> {
        self.gap_ev.map(|g| g / BOLTZMANN_EV_PER_K)
    }
}

/// Computes per-pattern stability for a design.
///
/// For each input pattern, the `k_states` lowest valid configurations
/// are enumerated; the first whose output read-out differs from the
/// ground state's defines the gap.
///
/// # Panics
///
/// Panics if `engine` is [`Engine::Anneal`]-based — gap analysis needs
/// the exact k-best spectrum.
pub fn logic_stability(
    design: &GateDesign,
    params: &PhysicalParams,
    k_states: usize,
    engine: Engine,
) -> Vec<PatternStability> {
    assert!(
        matches!(
            engine,
            Engine::QuickExact | Engine::Auto | Engine::Exhaustive
        ),
        "gap analysis requires an exact engine"
    );
    let sim = SimParams::new(*params).with_engine(engine).with_k(k_states);
    (0..design.num_patterns())
        .map(|pattern| {
            let layout = design.layout_for_pattern(pattern);
            let states = simulate_with(&layout, &sim).states;
            let gap_ev = states.split_first().and_then(|(ground, rest)| {
                let ground_read: Vec<_> = design
                    .outputs
                    .iter()
                    .map(|o| o.pair.read(&layout, &ground.config))
                    .collect();
                rest.iter()
                    .find(|s| {
                        let read: Vec<_> = design
                            .outputs
                            .iter()
                            .map(|o| o.pair.read(&layout, &s.config))
                            .collect();
                        read != ground_read
                    })
                    .map(|s| s.free_energy - ground.free_energy)
            });
            PatternStability { pattern, gap_ev }
        })
        .collect()
}

/// The design's worst-case (minimum) gap across patterns, eV.
pub fn worst_case_gap_ev(stability: &[PatternStability]) -> Option<f64> {
    stability
        .iter()
        .filter_map(|s| s.gap_ev)
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdl::{BdlPair, InputPort, OutputPort};
    use crate::layout::SidbLayout;

    fn wire() -> GateDesign {
        GateDesign {
            name: "wire".into(),
            body: SidbLayout::from_sites([
                (0, 0, 0),
                (0, 1, 0),
                (0, 4, 0),
                (0, 5, 0),
                (0, 8, 0),
                (0, 9, 0),
            ]),
            inputs: vec![InputPort {
                pair: BdlPair::new((0, 0, 0), (0, 1, 0)),
                perturber_zero: (0, -4, 0).into(),
                perturber_one: (0, -3, 0).into(),
            }],
            outputs: vec![OutputPort {
                pair: BdlPair::new((0, 8, 0), (0, 9, 0)),
                perturber: Some((0, 12, 1).into()),
            }],
            truth_table: vec![vec![false], vec![true]],
        }
    }

    #[test]
    fn wire_has_positive_gaps() {
        let stability = logic_stability(&wire(), &PhysicalParams::default(), 8, Engine::QuickExact);
        assert_eq!(stability.len(), 2);
        for s in &stability {
            if let Some(gap) = s.gap_ev {
                assert!(gap > 0.0, "pattern {}", s.pattern);
            }
        }
    }

    #[test]
    fn critical_temperature_scales_with_gap() {
        let s = PatternStability {
            pattern: 0,
            gap_ev: Some(BOLTZMANN_EV_PER_K * 77.0),
        };
        let t = s.critical_temperature_k().expect("gap present");
        assert!((t - 77.0).abs() < 1e-6);
        let none = PatternStability {
            pattern: 0,
            gap_ev: None,
        };
        assert_eq!(none.critical_temperature_k(), None);
    }

    #[test]
    fn worst_case_is_the_minimum() {
        let stability = vec![
            PatternStability {
                pattern: 0,
                gap_ev: Some(0.02),
            },
            PatternStability {
                pattern: 1,
                gap_ev: Some(0.005),
            },
            PatternStability {
                pattern: 2,
                gap_ev: None,
            },
        ];
        assert_eq!(worst_case_gap_ev(&stability), Some(0.005));
    }
}
