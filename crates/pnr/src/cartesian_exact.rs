//! Exact placement & routing on the Cartesian baseline floor plan.
//!
//! The comparison substrate for the paper's Figure 3: QCA-style design
//! automation places plus-shaped gates on Cartesian grids under 2DDWave
//! clocking (zone `(x+y) mod 4`, information flowing east and south).
//! This engine mirrors the hexagonal [`crate::exact`] encoding on that
//! topology, so the two floor plans can be compared with the same
//! optimality guarantees — including the incremental probing mode (see
//! [`crate::incremental`]).
//!
//! Note what this baseline *cannot* model: the experimentally
//! demonstrated SiDB gates are Y-shaped and need two upper-border input
//! ports, which a Cartesian tile does not offer (it has a single northern
//! border). The Cartesian numbers therefore describe hypothetical
//! plus-shaped gates — the paper's point is precisely that such gates do
//! not exist on the SiDB platform.

use crate::exact::{
    assemble_outcome, ExactOptions, PnrError, PnrOutcome, ProbeGate, ProbeVerdict, RatioProbe,
    ScanLimits, SessionBounds,
};
use crate::incremental::{IncrementalCnf, ProbeEmitter, ScratchEmitter};
use crate::netgraph::NetGraph;
use crate::portfolio::{run_portfolio, CancelFlag, ProbeOutcome, ScanAbort};
use fcn_budget::Deadline;
use fcn_coords::{AspectRatio, CartCoord, CartDirection};
use fcn_layout::cartesian::CartGateLayout;
use fcn_layout::clocking::ClockingScheme;
use fcn_layout::tile::TileContents;
use fcn_logic::techmap::MappedId;
use fcn_logic::GateKind;
use msat::{BoundedResult, Lit, Model, SolveParams};
use std::collections::{HashMap, HashSet};

/// Historical name of [`PnrOutcome`] specialized to the Cartesian
/// engine.
#[deprecated(note = "use `PnrOutcome<CartGateLayout>`")]
pub type CartPnrResult = PnrOutcome<CartGateLayout>;

/// Runs exact placement & routing on a Cartesian 2DDWave floor plan.
///
/// PIs enter along the top/left borders and POs leave along the
/// bottom/right borders; every edge advances one anti-diagonal per clock
/// phase, as 2DDWave requires.
///
/// # Errors
///
/// Returns [`PnrError::NoFeasibleRatio`] when the area bound is
/// exhausted.
///
/// # Examples
///
/// ```
/// use fcn_logic::network::Xag;
/// use fcn_logic::techmap::{map_xag, MapOptions};
/// use fcn_pnr::{cartesian_exact_pnr, ExactOptions, NetGraph};
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.and(a, b);
/// xag.primary_output("f", f);
/// let net = map_xag(&xag, MapOptions::default())?;
/// let graph = NetGraph::new(net)?;
/// let result = cartesian_exact_pnr(&graph, &ExactOptions::default())?;
/// assert!(result.layout.verify().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cartesian_exact_pnr(
    graph: &NetGraph,
    options: &ExactOptions,
) -> Result<PnrOutcome<CartGateLayout>, PnrError> {
    let num_nodes = graph.network.num_nodes() as u64;
    // The last diagonal frontier must fit all POs, the first all PIs;
    // the number of diagonals is w + h − 1 and must cover min_height
    // (the longest node path).
    let candidates: Vec<AspectRatio> = AspectRatio::in_area_order(options.max_area)
        .filter(|ratio| {
            let diagonals = ratio.width + ratio.height - 1;
            diagonals >= graph.min_height()
                && ratio.tile_count() >= num_nodes
                && (ratio.width.min(ratio.height) as usize)
                    >= graph
                        .network
                        .primary_inputs()
                        .len()
                        .min(graph.network.primary_outputs().len())
                        .min(1)
        })
        .collect();
    // The session union for incremental workers: the variable universe
    // covers every candidate rectangle, with ALAP levels taken at the
    // longest candidate diagonal (the loosest schedule of the session).
    let session = (|| {
        let d_max = candidates.iter().map(|r| r.width + r.height - 1).max()?;
        let height = candidates.iter().map(|r| r.height).max()?;
        let alap = graph.alap(d_max)?;
        let mut width_at_row = vec![0i32; height as usize];
        for r in &candidates {
            for slot in width_at_row.iter_mut().take(r.height as usize) {
                *slot = (*slot).max(r.width as i32);
            }
        }
        Some(SessionBounds {
            height,
            width_at_row,
            alap,
        })
    })();

    let limits = ScanLimits::new(options);
    let blacklist: HashSet<(i32, i32)> = options.blacklist.iter().copied().collect();

    let outcome = run_portfolio(
        &candidates,
        options.num_threads,
        || options.incremental.then(IncrementalCnf::<CartKey>::new),
        |inc, _, ratio, cancel| {
            let budget = match limits.pre_probe(options.max_conflicts_per_ratio) {
                ProbeGate::Go(budget) => budget,
                ProbeGate::Abort(abort) => return ProbeOutcome::aborted(abort),
                ProbeGate::Cancelled => return ProbeOutcome::cancelled(),
            };
            let out = match inc {
                Some(inc) => solve_ratio_incremental(
                    inc,
                    graph,
                    *ratio,
                    session.as_ref().expect("probing implies candidates"),
                    budget,
                    limits.deadline(),
                    cancel,
                    &blacklist,
                ),
                None => solve_ratio_scratch(
                    graph,
                    *ratio,
                    budget,
                    limits.deadline(),
                    cancel,
                    &blacklist,
                ),
            };
            if let Some(probe) = &out.probe {
                limits.charge(probe.stats.conflicts);
            }
            out
        },
    );
    assemble_outcome(outcome, |idx| candidates[idx], options)
}

/// The inclusive diagonal (`x + y`) range a node may occupy for a layout
/// with `diagonals` anti-diagonal frontiers. PIs and POs are additionally
/// restricted to border tiles (see [`border_ok`]) rather than to a single
/// frontier — on a 2DDWave floor plan the first anti-diagonal holds just
/// one tile.
fn diag_range(graph: &NetGraph, alap: &[u32], diagonals: u32, n: MappedId) -> (u32, u32) {
    let _ = diagonals;
    (graph.asap[n.index()], alap[n.index()])
}

/// Border restriction for I/O pads: PIs enter along the top/left borders,
/// POs leave along the bottom/right borders.
fn border_ok(kind: GateKind, t: CartCoord, w: i32, h: i32) -> bool {
    match kind {
        GateKind::Pi => t.x == 0 || t.y == 0,
        GateKind::Po => t.x == w - 1 || t.y == h - 1,
        _ => true,
    }
}

/// Semantic identity of a Cartesian-encoding problem variable (see the
/// hexagonal twin in [`crate::exact`] for the caching rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CartKey {
    /// Node `n` occupies tile `t`.
    Place(usize, CartCoord),
    /// Edge `e` runs a wire segment through tile `t`.
    Wire(usize, CartCoord),
    /// Edge `e` leaves tile `t` east or south.
    Step(usize, CartCoord, CartDirection),
}

/// The problem variables of one Cartesian aspect-ratio encoding.
struct CartEncoding {
    place: HashMap<(usize, CartCoord), Lit>,
    wire: HashMap<(usize, CartCoord), Lit>,
    step: HashMap<(usize, CartCoord, CartDirection), Lit>,
}

const DIRS: [CartDirection; 2] = [CartDirection::East, CartDirection::South];

/// Encodes the Cartesian placement & routing problem at a fixed aspect
/// ratio through a [`ProbeEmitter`]. Returns `None` when the ratio is
/// unschedulable or leaves some node with no placeable tile; such
/// ratios are filtered before reaching the solver but still count as
/// attempted.
///
/// As in the hexagonal twin, `session: None` encodes exactly the
/// ratio's rectangle (the from-scratch mode), while a [`SessionBounds`]
/// builds the shared variable universe over the whole session union and
/// imposes the ratio — including its border rules and diagonal ranges —
/// through guarded unit clauses only, which keeps learned lemmas free
/// of the activation literal.
fn encode_ratio<E: ProbeEmitter<CartKey>>(
    em: &mut E,
    graph: &NetGraph,
    ratio: AspectRatio,
    session: Option<&SessionBounds>,
    blacklist: &HashSet<(i32, i32)>,
) -> Option<CartEncoding> {
    let (w, h) = (ratio.width as i32, ratio.height as i32);
    let diagonals = ratio.width + ratio.height - 1;
    let alap = graph.alap(diagonals)?;
    let node_ids: Vec<MappedId> = graph.network.node_ids().collect();
    let ratio_bounds;
    let bounds = match session {
        Some(b) => b,
        None => {
            ratio_bounds = SessionBounds {
                height: ratio.height,
                width_at_row: vec![w; ratio.height as usize],
                alap: alap.clone(),
            };
            &ratio_bounds
        }
    };
    let in_ratio = |t: CartCoord| t.x >= 0 && t.x < w && t.y >= 0 && t.y < h;
    let in_bounds = |t: CartCoord| bounds.contains_xy(t.x, t.y);
    // Row 0 is spanned by every candidate, so `width_at(0)` is the
    // session's widest rectangle.
    let tiles_on_diag = |d: u32| -> Vec<CartCoord> {
        (0..bounds.width_at(0))
            .map(|x| CartCoord::new(x, d as i32 - x))
            .filter(|&t| in_bounds(t))
            .collect()
    };

    // place(n, t) for tiles on the node's allowed diagonals. The
    // at-least-one disjunction ranges over the session universe and is
    // shared; this ratio's diagonal ranges and Po border rule arrive as
    // guarded units. (Pi borders — top/left — mean the same tiles in
    // every ratio, so they restrict creation itself.)
    let mut place: HashMap<(usize, CartCoord), Lit> = HashMap::new();
    for &n in &node_ids {
        let kind = graph.network.node(n).kind;
        let (lo, hi) = diag_range(graph, &alap, diagonals, n);
        let (clo, chi) = match session {
            Some(b) => (graph.asap[n.index()], b.alap[n.index()]),
            None => (lo, hi),
        };
        let mut vars = Vec::new();
        let mut admissible = 0usize;
        for d in clo..=chi {
            for t in tiles_on_diag(d) {
                let create_ok = match kind {
                    GateKind::Pi => t.x == 0 || t.y == 0,
                    _ => session.is_some() || border_ok(kind, t, w, h),
                };
                if !create_ok {
                    continue;
                }
                let lit = em.var(CartKey::Place(n.index(), t));
                place.insert((n.index(), t), lit);
                vars.push(lit);
                if in_ratio(t) && border_ok(kind, t, w, h) && (lo..=hi).contains(&d) {
                    admissible += 1;
                } else {
                    em.guarded(vec![lit.negated()]);
                }
                // Defect avoidance: a compromised tile is off in every
                // probe of the session — a shared fact, learned once.
                if blacklist.contains(&(t.x, t.y)) {
                    em.shared(vec![lit.negated()]);
                }
            }
        }
        if admissible == 0 {
            return None;
        }
        em.shared(vars.clone());
        em.shared_at_most_one(&vars);
    }

    // wire(e, t) strictly between the endpoints' diagonals.
    let mut wire: HashMap<(usize, CartCoord), Lit> = HashMap::new();
    for e in &graph.edges {
        let (src_lo, _) = diag_range(graph, &alap, diagonals, e.source);
        let (_, dst_hi) = diag_range(graph, &alap, diagonals, e.target);
        let (src_clo, dst_chi) = match session {
            Some(b) => (graph.asap[e.source.index()], b.alap[e.target.index()]),
            None => (src_lo, dst_hi),
        };
        for d in (src_clo + 1)..dst_chi {
            for t in tiles_on_diag(d) {
                let lit = em.var(CartKey::Wire(e.id, t));
                wire.insert((e.id, t), lit);
                if !(in_ratio(t) && d > src_lo && d < dst_hi) {
                    em.guarded(vec![lit.negated()]);
                }
                if blacklist.contains(&(t.x, t.y)) {
                    em.shared(vec![lit.negated()]);
                }
            }
        }
    }

    // step(e, t, dir): edge e leaves t east or south. Out-of-ratio
    // steps need no units: the shared step → presence clauses propagate
    // them off once the probe's place/wire units land.
    let mut step: HashMap<(usize, CartCoord, CartDirection), Lit> = HashMap::new();
    for e in &graph.edges {
        let presence_src = |wire: &HashMap<(usize, CartCoord), Lit>,
                            place: &HashMap<(usize, CartCoord), Lit>,
                            t: CartCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.source.index(), t))
        };
        let presence_dst = |wire: &HashMap<(usize, CartCoord), Lit>,
                            place: &HashMap<(usize, CartCoord), Lit>,
                            t: CartCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.target.index(), t))
        };
        for y in 0..bounds.height as i32 {
            for x in 0..bounds.width_at(y as u32) {
                let t = CartCoord::new(x, y);
                if !presence_src(&wire, &place, t) {
                    continue;
                }
                for dir in DIRS {
                    let s = t.neighbor(dir);
                    if in_bounds(s) && presence_dst(&wire, &place, s) {
                        step.insert((e.id, t, dir), em.var(CartKey::Step(e.id, t, dir)));
                    }
                }
            }
        }
    }

    // Tile capacity: universal, shared across probes.
    for y in 0..bounds.height as i32 {
        for x in 0..bounds.width_at(y as u32) {
            let t = CartCoord::new(x, y);
            let gates: Vec<Lit> = node_ids
                .iter()
                .filter_map(|n| place.get(&(n.index(), t)).copied())
                .collect();
            em.shared_at_most_one(&gates);
            if !gates.is_empty() {
                let occ = em.shared_or_all(&gates);
                for e in &graph.edges {
                    if let Some(&wv) = wire.get(&(e.id, t)) {
                        em.shared(vec![wv.negated(), occ.negated()]);
                    }
                }
            }
        }
    }

    // Flow constraints per edge, over the session universe (shared for
    // the same reason as in the hexagonal encoding: every probe's
    // models route each present edge through some step of the union).
    for e in &graph.edges {
        for y in 0..bounds.height as i32 {
            for x in 0..bounds.width_at(y as u32) {
                let t = CartCoord::new(x, y);
                let src_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.source.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !src_lits.is_empty() {
                    let outs: Vec<Lit> = DIRS
                        .into_iter()
                        .filter_map(|d| step.get(&(e.id, t, d)).copied())
                        .collect();
                    em.shared_at_most_one(&outs);
                    for &p in &src_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(outs.iter().copied());
                        em.shared(clause);
                    }
                    for &s in &outs {
                        let mut clause = vec![s.negated()];
                        clause.extend(src_lits.iter().copied());
                        em.shared(clause);
                    }
                }

                let dst_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.target.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !dst_lits.is_empty() {
                    let ins: Vec<Lit> = [CartDirection::West, CartDirection::North]
                        .into_iter()
                        .filter_map(|d| {
                            let n = t.neighbor(d);
                            let towards = d.opposite();
                            step.get(&(e.id, n, towards)).copied()
                        })
                        .collect();
                    em.shared_at_most_one(&ins);
                    for &p in &dst_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(ins.iter().copied());
                        em.shared(clause);
                    }
                    for &s in &ins {
                        let mut clause = vec![s.negated()];
                        clause.extend(dst_lits.iter().copied());
                        em.shared(clause);
                    }
                }
            }
        }
    }

    // Port exclusivity.
    for y in 0..bounds.height as i32 {
        for x in 0..bounds.width_at(y as u32) {
            let t = CartCoord::new(x, y);
            for d in DIRS {
                let users: Vec<Lit> = graph
                    .edges
                    .iter()
                    .filter_map(|e| step.get(&(e.id, t, d)).copied())
                    .collect();
                em.shared_at_most_one(&users);
            }
        }
    }

    Some(CartEncoding { place, wire, step })
}

/// Reads a satisfying model back into a Cartesian gate layout.
///
/// A satisfying model should always describe a coherent routing; if it
/// does not (an unplaced node or a routed tile without a matching
/// step), that is an encoding bug surfaced as a typed
/// [`PnrError::RouterInvariant`] rather than a worker panic, so the
/// flow's fallback path can degrade gracefully.
fn extract_layout(
    model: &Model,
    enc: &CartEncoding,
    graph: &NetGraph,
    ratio: AspectRatio,
) -> Result<CartGateLayout, PnrError> {
    let (w, h) = (ratio.width as i32, ratio.height as i32);
    let mut layout = CartGateLayout::new(ratio, ClockingScheme::TwoDdWave);
    let mut node_tile: HashMap<usize, CartCoord> = HashMap::new();
    for (&(n, t), &lit) in &enc.place {
        if model.lit_value(lit) {
            node_tile.insert(n, t);
        }
    }
    let step_true = |e: usize, t: CartCoord, d: CartDirection| {
        enc.step
            .get(&(e, t, d))
            .is_some_and(|&l| model.lit_value(l))
    };
    let incoming_dir = |e: usize, t: CartCoord| -> Option<CartDirection> {
        [CartDirection::West, CartDirection::North]
            .into_iter()
            .find(|&d| step_true(e, t.neighbor(d), d.opposite()))
    };
    let outgoing_dir = |e: usize, t: CartCoord| -> Option<CartDirection> {
        DIRS.into_iter().find(|&d| step_true(e, t, d))
    };
    let invariant = |t: CartCoord| PnrError::RouterInvariant { row: t.y, pos: t.x };

    for n in graph.network.node_ids() {
        let Some(&t) = node_tile.get(&n.index()) else {
            // The at-least-one placement clause guarantees a tile; a
            // missing one means the model is incoherent.
            return Err(PnrError::RouterInvariant { row: -1, pos: -1 });
        };
        let node = graph.network.node(n);
        let mut inputs = Vec::with_capacity(graph.in_edges[n.index()].len());
        for &e in &graph.in_edges[n.index()] {
            inputs.push(incoming_dir(e, t).ok_or_else(|| invariant(t))?);
        }
        let mut outputs = Vec::with_capacity(graph.out_edges[n.index()].len());
        for &e in &graph.out_edges[n.index()] {
            outputs.push(outgoing_dir(e, t).ok_or_else(|| invariant(t))?);
        }
        layout.place(
            t,
            TileContents::gate(node.kind, inputs, outputs, node.name.clone()),
        );
    }
    // Wire tiles, visited in deterministic edge-then-row-major order so
    // the per-tile segment lists are reproducible run to run.
    let mut segments: HashMap<CartCoord, Vec<(CartDirection, CartDirection)>> = HashMap::new();
    for e in &graph.edges {
        for y in 0..h {
            for x in 0..w {
                let t = CartCoord::new(x, y);
                let Some(&lit) = enc.wire.get(&(e.id, t)) else {
                    continue;
                };
                if model.lit_value(lit) {
                    segments.entry(t).or_default().push((
                        incoming_dir(e.id, t).ok_or_else(|| invariant(t))?,
                        outgoing_dir(e.id, t).ok_or_else(|| invariant(t))?,
                    ));
                }
            }
        }
    }
    for (t, segs) in segments {
        layout.place(t, TileContents::Wire { segments: segs });
    }
    Ok(layout)
}

/// Attempts to place & route at a fixed aspect ratio on a fresh solver.
/// The probe record is `None` when the ratio was discarded before
/// reaching the solver; such ratios still count as attempted. Also the
/// authoritative extraction path for the incremental mode's winner.
fn solve_ratio_scratch(
    graph: &NetGraph,
    ratio: AspectRatio,
    max_conflicts: u64,
    deadline: Deadline,
    cancel: &CancelFlag,
    blacklist: &HashSet<(i32, i32)>,
) -> ProbeOutcome<CartGateLayout, RatioProbe> {
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    let mut em = ScratchEmitter::new();
    let Some(enc) = encode_ratio(&mut em, graph, ratio, None, blacklist) else {
        return ProbeOutcome::concluded(None, None);
    };
    let mut cnf = em.cnf;

    fcn_telemetry::counter("cnf.vars", cnf.solver().num_vars() as u64);
    fcn_telemetry::counter("cnf.clauses", cnf.solver().num_clauses() as u64);
    cnf.solver_mut().set_interrupt(cancel.clone());
    let outcome = cnf.solve_with(
        &SolveParams::new()
            .budget(max_conflicts)
            .interruptible()
            .deadline(deadline),
    );
    let stats = cnf.solver().stats();
    if let BoundedResult::Interrupted = outcome {
        fcn_telemetry::note("verdict", "cancelled");
        return ProbeOutcome::cancelled();
    }
    if let BoundedResult::DeadlineExpired = outcome {
        fcn_telemetry::note("verdict", "deadline-expired");
        return ProbeOutcome::aborted(ScanAbort::Deadline);
    }
    let verdict = match &outcome {
        BoundedResult::Sat(_) => ProbeVerdict::Sat,
        BoundedResult::Unsat => ProbeVerdict::Unsat,
        _ => ProbeVerdict::BudgetExceeded,
    };
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    fcn_telemetry::note("verdict", verdict.to_string());
    let probe = RatioProbe {
        ratio,
        verdict,
        stats,
        retained: 0,
        extraction_conflicts: None,
    };
    let model = match outcome {
        BoundedResult::Sat(m) => m,
        _ => return ProbeOutcome::concluded(None, Some(probe)),
    };
    match extract_layout(&model, &enc, graph, ratio) {
        Ok(layout) => ProbeOutcome::concluded(Some(layout), Some(probe)),
        Err(e) => {
            // An incoherent model is an encoding bug; end the scan with
            // a typed abort instead of panicking inside the worker.
            fcn_telemetry::note("verdict", "router-invariant");
            let (row, pos) = match e {
                PnrError::RouterInvariant { row, pos } => (row, pos),
                _ => (-1, -1),
            };
            ProbeOutcome::aborted(ScanAbort::Router { row, pos })
        }
    }
}

/// Probes a fixed aspect ratio on the worker's incremental session (see
/// the hexagonal twin in [`crate::exact`] for the protocol: guarded
/// encoding, assumption solve, retirement, and an authoritative fresh
/// re-solve of SAT verdicts).
#[allow(clippy::too_many_arguments)]
fn solve_ratio_incremental(
    inc: &mut IncrementalCnf<CartKey>,
    graph: &NetGraph,
    ratio: AspectRatio,
    session: &SessionBounds,
    max_conflicts: u64,
    deadline: Deadline,
    cancel: &CancelFlag,
    blacklist: &HashSet<(i32, i32)>,
) -> ProbeOutcome<CartGateLayout, RatioProbe> {
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    fcn_telemetry::note("mode", "incremental");
    let retained = inc.begin_probe();
    let encoded = encode_ratio(inc, graph, ratio, Some(session), blacklist).is_some();
    if !encoded {
        inc.end_probe();
        return ProbeOutcome::concluded(None, None);
    }
    fcn_telemetry::counter("sat.retained", retained);
    let outcome = inc.solve(max_conflicts, deadline, cancel);
    let stats = inc.stats();
    inc.end_probe();
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    let verdict = match &outcome {
        BoundedResult::Sat(_) => "sat",
        BoundedResult::Unsat => "unsat",
        BoundedResult::BudgetExceeded => "budget-exceeded",
        BoundedResult::Interrupted => "cancelled",
        BoundedResult::DeadlineExpired => "deadline-expired",
    };
    fcn_telemetry::note("verdict", verdict);

    match outcome {
        BoundedResult::Interrupted => ProbeOutcome::cancelled(),
        BoundedResult::DeadlineExpired => ProbeOutcome::aborted(ScanAbort::Deadline),
        BoundedResult::Unsat => ProbeOutcome::concluded(
            None,
            Some(RatioProbe {
                ratio,
                verdict: ProbeVerdict::Unsat,
                stats,
                retained,
                extraction_conflicts: None,
            }),
        ),
        BoundedResult::BudgetExceeded => ProbeOutcome::concluded(
            None,
            Some(RatioProbe {
                ratio,
                verdict: ProbeVerdict::BudgetExceeded,
                stats,
                retained,
                extraction_conflicts: None,
            }),
        ),
        BoundedResult::Sat(_) => {
            let scratch =
                solve_ratio_scratch(graph, ratio, max_conflicts, deadline, cancel, blacklist);
            if scratch.cancelled || scratch.abort.is_some() {
                return scratch;
            }
            let mut probe = scratch.probe.expect("scratch probes always record");
            probe.retained = retained;
            match probe.verdict {
                ProbeVerdict::Sat => {
                    fcn_telemetry::counter("sat.extraction_conflicts", probe.stats.conflicts);
                    probe.extraction_conflicts = Some(probe.stats.conflicts);
                    probe.stats = stats;
                    ProbeOutcome::concluded(scratch.layout, Some(probe))
                }
                _ => {
                    probe.stats += stats;
                    ProbeOutcome::concluded(None, Some(probe))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn pnr(xag: &Xag) -> PnrOutcome<CartGateLayout> {
        let net = map_xag(xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        cartesian_exact_pnr(&graph, &ExactOptions::default()).expect("feasible")
    }

    #[test]
    fn routes_single_gate_on_2ddwave() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let v = result.layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", result.layout.render_ascii());
    }

    #[test]
    fn routes_xor_with_fanouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
    }

    #[test]
    fn cartesian_probes_surface_solver_stats() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.or(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let last = result.probes.last().expect("at least the SAT probe");
        assert_eq!(last.verdict, ProbeVerdict::Sat);
        assert_eq!(last.ratio, result.ratio);
        let summed: u64 = result.probes.iter().map(|p| p.stats.decisions).sum();
        assert_eq!(result.stats.decisions, summed);
    }

    #[test]
    fn pads_sit_on_their_borders() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.or(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let (w, h) = (result.ratio.width as i32, result.ratio.height as i32);
        for (coord, contents) in result.layout.occupied_tiles() {
            match contents.gate_kind() {
                Some(GateKind::Pi) => assert!(coord.x == 0 || coord.y == 0, "{coord}"),
                Some(GateKind::Po) => {
                    assert!(coord.x == w - 1 || coord.y == h - 1, "{coord}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn incremental_and_scratch_agree_on_cartesian_layouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let base = ExactOptions {
            num_threads: 1,
            ..Default::default()
        };
        let warm = cartesian_exact_pnr(
            &graph,
            &ExactOptions {
                incremental: true,
                ..base.clone()
            },
        )
        .expect("feasible");
        let cold = cartesian_exact_pnr(
            &graph,
            &ExactOptions {
                incremental: false,
                ..base
            },
        )
        .expect("feasible");
        assert_eq!(warm.ratio, cold.ratio);
        assert_eq!(warm.ratios_tried, cold.ratios_tried);
        assert_eq!(warm.layout.render_ascii(), cold.layout.render_ascii());
        assert_eq!(cold.reuse, crate::incremental::ReuseStats::default());
    }
}
