//! Exact placement & routing on the Cartesian baseline floor plan.
//!
//! The comparison substrate for the paper's Figure 3: QCA-style design
//! automation places plus-shaped gates on Cartesian grids under 2DDWave
//! clocking (zone `(x+y) mod 4`, information flowing east and south).
//! This engine mirrors the hexagonal [`crate::exact`] encoding on that
//! topology, so the two floor plans can be compared with the same
//! optimality guarantees.
//!
//! Note what this baseline *cannot* model: the experimentally
//! demonstrated SiDB gates are Y-shaped and need two upper-border input
//! ports, which a Cartesian tile does not offer (it has a single northern
//! border). The Cartesian numbers therefore describe hypothetical
//! plus-shaped gates — the paper's point is precisely that such gates do
//! not exist on the SiDB platform.

use crate::exact::{ExactOptions, PnrError, ProbeVerdict, RatioProbe};
use crate::netgraph::NetGraph;
use crate::portfolio::{run_portfolio, CancelFlag, ProbeOutcome};
use fcn_coords::{AspectRatio, CartCoord, CartDirection};
use fcn_layout::cartesian::CartGateLayout;
use fcn_layout::clocking::ClockingScheme;
use fcn_layout::tile::TileContents;
use fcn_logic::techmap::MappedId;
use fcn_logic::GateKind;
use msat::{BoundedResult, CnfBuilder, Lit, SolverStats};
use std::collections::HashMap;

/// A successful Cartesian placement & routing.
#[derive(Debug, Clone)]
pub struct CartPnrResult {
    /// The resulting 2DDWave-clocked layout.
    pub layout: CartGateLayout,
    /// The area-minimal aspect ratio found.
    pub ratio: AspectRatio,
    /// Number of aspect ratios attempted.
    pub ratios_tried: usize,
    /// Cumulative solver statistics over every probe.
    pub stats: SolverStats,
    /// Per-ratio verdicts and solver costs, in probing order.
    pub probes: Vec<RatioProbe>,
}

/// Runs exact placement & routing on a Cartesian 2DDWave floor plan.
///
/// PIs enter along the top/left borders and POs leave along the
/// bottom/right borders; every edge advances one anti-diagonal per clock
/// phase, as 2DDWave requires.
///
/// # Errors
///
/// Returns [`PnrError::NoFeasibleRatio`] when the area bound is
/// exhausted.
///
/// # Examples
///
/// ```
/// use fcn_logic::network::Xag;
/// use fcn_logic::techmap::{map_xag, MapOptions};
/// use fcn_pnr::{cartesian_exact_pnr, ExactOptions, NetGraph};
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.and(a, b);
/// xag.primary_output("f", f);
/// let net = map_xag(&xag, MapOptions::default())?;
/// let graph = NetGraph::new(net)?;
/// let result = cartesian_exact_pnr(&graph, &ExactOptions::default())?;
/// assert!(result.layout.verify().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cartesian_exact_pnr(
    graph: &NetGraph,
    options: &ExactOptions,
) -> Result<CartPnrResult, PnrError> {
    let num_nodes = graph.network.num_nodes() as u64;
    // The last diagonal frontier must fit all POs, the first all PIs;
    // the number of diagonals is w + h − 1 and must cover min_height
    // (the longest node path).
    let candidates: Vec<AspectRatio> = AspectRatio::in_area_order(options.max_area)
        .filter(|ratio| {
            let diagonals = ratio.width + ratio.height - 1;
            diagonals >= graph.min_height()
                && ratio.tile_count() >= num_nodes
                && (ratio.width.min(ratio.height) as usize)
                    >= graph
                        .network
                        .primary_inputs()
                        .len()
                        .min(graph.network.primary_outputs().len())
                        .min(1)
        })
        .collect();

    let outcome = run_portfolio(&candidates, options.num_threads, |_, ratio, cancel| {
        solve_ratio(graph, *ratio, options.max_conflicts_per_ratio, cancel)
    });
    if outcome.cancelled > 0 {
        fcn_telemetry::counter("probes.cancelled", outcome.cancelled as u64);
    }

    let mut cumulative = SolverStats::default();
    for probe in &outcome.probes {
        cumulative += probe.stats;
    }
    match outcome.winner {
        Some((idx, layout)) => Ok(CartPnrResult {
            layout,
            ratio: candidates[idx],
            ratios_tried: outcome.attempted,
            stats: cumulative,
            probes: outcome.probes,
        }),
        None => {
            fcn_telemetry::note("verdict", "no-feasible-ratio");
            Err(PnrError::NoFeasibleRatio {
                max_area: options.max_area,
            })
        }
    }
}

/// The inclusive diagonal (`x + y`) range a node may occupy for a layout
/// with `diagonals` anti-diagonal frontiers. PIs and POs are additionally
/// restricted to border tiles (see [`border_ok`]) rather than to a single
/// frontier — on a 2DDWave floor plan the first anti-diagonal holds just
/// one tile.
fn diag_range(graph: &NetGraph, alap: &[u32], diagonals: u32, n: MappedId) -> (u32, u32) {
    let _ = diagonals;
    (graph.asap[n.index()], alap[n.index()])
}

/// Border restriction for I/O pads: PIs enter along the top/left borders,
/// POs leave along the bottom/right borders.
fn border_ok(kind: GateKind, t: CartCoord, w: i32, h: i32) -> bool {
    match kind {
        GateKind::Pi => t.x == 0 || t.y == 0,
        GateKind::Po => t.x == w - 1 || t.y == h - 1,
        _ => true,
    }
}

/// Attempts to place & route at a fixed aspect ratio. The probe record
/// is `None` when the ratio was discarded before reaching the solver
/// (unschedulable or with an unplaceable node); such ratios still count
/// as attempted.
fn solve_ratio(
    graph: &NetGraph,
    ratio: AspectRatio,
    max_conflicts: u64,
    cancel: &CancelFlag,
) -> ProbeOutcome<CartGateLayout, RatioProbe> {
    let filtered = ProbeOutcome {
        layout: None,
        probe: None,
        cancelled: false,
    };
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    let (w, h) = (ratio.width as i32, ratio.height as i32);
    let diagonals = ratio.width + ratio.height - 1;
    let Some(alap) = graph.alap(diagonals) else {
        return filtered;
    };
    let mut cnf = CnfBuilder::new();
    let node_ids: Vec<MappedId> = graph.network.node_ids().collect();
    let in_bounds = |t: CartCoord| t.x >= 0 && t.x < w && t.y >= 0 && t.y < h;
    let tiles_on_diag = |d: u32| -> Vec<CartCoord> {
        (0..w)
            .map(|x| CartCoord::new(x, d as i32 - x))
            .filter(|&t| in_bounds(t))
            .collect()
    };

    // place(n, t) for tiles on the node's allowed diagonals.
    let mut place: HashMap<(usize, CartCoord), Lit> = HashMap::new();
    for &n in &node_ids {
        let kind = graph.network.node(n).kind;
        let (lo, hi) = diag_range(graph, &alap, diagonals, n);
        let mut vars = Vec::new();
        for d in lo..=hi {
            for t in tiles_on_diag(d) {
                if !border_ok(kind, t, w, h) {
                    continue;
                }
                let lit = cnf.new_lit();
                place.insert((n.index(), t), lit);
                vars.push(lit);
            }
        }
        if vars.is_empty() {
            return filtered;
        }
        cnf.exactly_one(&vars);
    }

    // wire(e, t) strictly between the endpoints' diagonals.
    let mut wire: HashMap<(usize, CartCoord), Lit> = HashMap::new();
    for e in &graph.edges {
        let (src_lo, _) = diag_range(graph, &alap, diagonals, e.source);
        let (_, dst_hi) = diag_range(graph, &alap, diagonals, e.target);
        for d in (src_lo + 1)..dst_hi {
            for t in tiles_on_diag(d) {
                wire.insert((e.id, t), cnf.new_lit());
            }
        }
    }

    // step(e, t, dir): edge e leaves t east or south.
    const DIRS: [CartDirection; 2] = [CartDirection::East, CartDirection::South];
    let mut step: HashMap<(usize, CartCoord, CartDirection), Lit> = HashMap::new();
    for e in &graph.edges {
        let presence_src = |t: CartCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.source.index(), t))
        };
        let presence_dst = |t: CartCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.target.index(), t))
        };
        for y in 0..h {
            for x in 0..w {
                let t = CartCoord::new(x, y);
                if !presence_src(t) {
                    continue;
                }
                for dir in DIRS {
                    let s = t.neighbor(dir);
                    if in_bounds(s) && presence_dst(s) {
                        step.insert((e.id, t, dir), cnf.new_lit());
                    }
                }
            }
        }
    }

    // Tile capacity.
    for y in 0..h {
        for x in 0..w {
            let t = CartCoord::new(x, y);
            let gates: Vec<Lit> = node_ids
                .iter()
                .filter_map(|n| place.get(&(n.index(), t)).copied())
                .collect();
            cnf.at_most_one(&gates);
            if !gates.is_empty() {
                let occ = cnf.or_all(gates.iter().copied());
                for e in &graph.edges {
                    if let Some(&wv) = wire.get(&(e.id, t)) {
                        cnf.implies(wv, occ.negated());
                    }
                }
            }
        }
    }

    // Flow constraints per edge (same shape as the hexagonal encoding).
    for e in &graph.edges {
        for y in 0..h {
            for x in 0..w {
                let t = CartCoord::new(x, y);
                let src_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.source.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !src_lits.is_empty() {
                    let outs: Vec<Lit> = DIRS
                        .into_iter()
                        .filter_map(|d| step.get(&(e.id, t, d)).copied())
                        .collect();
                    cnf.at_most_one(&outs);
                    for &p in &src_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(outs.iter().copied());
                        cnf.add_clause(clause);
                    }
                    for &s in &outs {
                        let mut clause = vec![s.negated()];
                        clause.extend(src_lits.iter().copied());
                        cnf.add_clause(clause);
                    }
                }

                let dst_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.target.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !dst_lits.is_empty() {
                    let ins: Vec<Lit> = [CartDirection::West, CartDirection::North]
                        .into_iter()
                        .filter_map(|d| {
                            let n = t.neighbor(d);
                            let towards = d.opposite();
                            step.get(&(e.id, n, towards)).copied()
                        })
                        .collect();
                    cnf.at_most_one(&ins);
                    for &p in &dst_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(ins.iter().copied());
                        cnf.add_clause(clause);
                    }
                    for &s in &ins {
                        let mut clause = vec![s.negated()];
                        clause.extend(dst_lits.iter().copied());
                        cnf.add_clause(clause);
                    }
                }
            }
        }
    }

    // Port exclusivity.
    for y in 0..h {
        for x in 0..w {
            let t = CartCoord::new(x, y);
            for d in DIRS {
                let users: Vec<Lit> = graph
                    .edges
                    .iter()
                    .filter_map(|e| step.get(&(e.id, t, d)).copied())
                    .collect();
                cnf.at_most_one(&users);
            }
        }
    }

    fcn_telemetry::counter("cnf.vars", cnf.solver().num_vars() as u64);
    fcn_telemetry::counter("cnf.clauses", cnf.solver().num_clauses() as u64);
    cnf.solver_mut().set_interrupt(cancel.clone());
    let outcome = cnf
        .solver_mut()
        .solve_bounded_with_assumptions(max_conflicts, &[]);
    let stats = cnf.solver().stats();
    if let BoundedResult::Interrupted = outcome {
        fcn_telemetry::note("verdict", "cancelled");
        return ProbeOutcome {
            layout: None,
            probe: None,
            cancelled: true,
        };
    }
    let verdict = match &outcome {
        BoundedResult::Sat(_) => ProbeVerdict::Sat,
        BoundedResult::Unsat => ProbeVerdict::Unsat,
        BoundedResult::BudgetExceeded | BoundedResult::Interrupted => ProbeVerdict::BudgetExceeded,
    };
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    fcn_telemetry::note("verdict", verdict.to_string());
    let probe = Some(RatioProbe {
        ratio,
        verdict,
        stats,
    });
    let model = match outcome {
        BoundedResult::Sat(m) => m,
        _ => {
            return ProbeOutcome {
                layout: None,
                probe,
                cancelled: false,
            }
        }
    };

    // Extraction.
    let mut layout = CartGateLayout::new(ratio, ClockingScheme::TwoDdWave);
    let mut node_tile: HashMap<usize, CartCoord> = HashMap::new();
    for (&(n, t), &lit) in &place {
        if model.lit_value(lit) {
            node_tile.insert(n, t);
        }
    }
    let step_true = |e: usize, t: CartCoord, d: CartDirection| {
        step.get(&(e, t, d)).is_some_and(|&l| model.lit_value(l))
    };
    let incoming_dir = |e: usize, t: CartCoord| -> Option<CartDirection> {
        [CartDirection::West, CartDirection::North]
            .into_iter()
            .find(|&d| step_true(e, t.neighbor(d), d.opposite()))
    };
    let outgoing_dir = |e: usize, t: CartCoord| -> Option<CartDirection> {
        DIRS.into_iter().find(|&d| step_true(e, t, d))
    };

    for &n in &node_ids {
        let t = node_tile[&n.index()];
        let node = graph.network.node(n);
        let inputs: Vec<CartDirection> = graph.in_edges[n.index()]
            .iter()
            .map(|&e| incoming_dir(e, t).expect("routed input"))
            .collect();
        let outputs: Vec<CartDirection> = graph.out_edges[n.index()]
            .iter()
            .map(|&e| outgoing_dir(e, t).expect("routed output"))
            .collect();
        layout.place(
            t,
            TileContents::gate(node.kind, inputs, outputs, node.name.clone()),
        );
    }
    let mut segments: HashMap<CartCoord, Vec<(CartDirection, CartDirection)>> = HashMap::new();
    for (&(e, t), &lit) in &wire {
        if model.lit_value(lit) {
            segments.entry(t).or_default().push((
                incoming_dir(e, t).expect("wire predecessor"),
                outgoing_dir(e, t).expect("wire successor"),
            ));
        }
    }
    for (t, segs) in segments {
        layout.place(t, TileContents::Wire { segments: segs });
    }
    ProbeOutcome {
        layout: Some(layout),
        probe,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn pnr(xag: &Xag) -> CartPnrResult {
        let net = map_xag(xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        cartesian_exact_pnr(&graph, &ExactOptions::default()).expect("feasible")
    }

    #[test]
    fn routes_single_gate_on_2ddwave() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let v = result.layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", result.layout.render_ascii());
    }

    #[test]
    fn routes_xor_with_fanouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
    }

    #[test]
    fn cartesian_probes_surface_solver_stats() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.or(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let last = result.probes.last().expect("at least the SAT probe");
        assert_eq!(last.verdict, ProbeVerdict::Sat);
        assert_eq!(last.ratio, result.ratio);
        let summed: u64 = result.probes.iter().map(|p| p.stats.decisions).sum();
        assert_eq!(result.stats.decisions, summed);
    }

    #[test]
    fn pads_sit_on_their_borders() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.or(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let (w, h) = (result.ratio.width as i32, result.ratio.height as i32);
        for (coord, contents) in result.layout.occupied_tiles() {
            match contents.gate_kind() {
                Some(GateKind::Pi) => assert!(coord.x == 0 || coord.y == 0, "{coord}"),
                Some(GateKind::Po) => {
                    assert!(coord.x == w - 1 || coord.y == h - 1, "{coord}")
                }
                _ => {}
            }
        }
    }
}
