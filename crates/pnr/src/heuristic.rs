//! A scalable one-pass placement & routing heuristic.
//!
//! This is the baseline engine for the exact-vs-scalable ablation, in the
//! spirit of the scalable method of [Walter et al., ASP-DAC 2019]: instead
//! of searching for an area-minimal layout, the netlist is processed level
//! by level in a single downward sweep. Signals live on *tracks*; per row,
//! the router either
//!
//! * places gates whose fanin tracks have become geometrically adjacent,
//! * performs one bubble step (a crossing tile) to bring the fanins of the
//!   next pending gate together, or
//! * lets signals drift straight down as wire tiles.
//!
//! The result is always a legal row-clocked layout, produced in time
//! linear in the layout size — but typically much taller than the exact
//! optimum, which is precisely the trade-off the ablation experiment
//! quantifies.
//!
//! Internally the router uses *doubled coordinates*: the tile at offset
//! column `x` in row `y` has doubled position `p = 2x + (y mod 2)`; its two
//! southern neighbors are at `p − 1` and `p + 1`. Two signals can share a
//! tile only as a crossing (or as the two fresh outputs of a fan-out /
//! half-adder tile), in which case their next-row exits are forced.

use crate::exact::PnrError;
use crate::netgraph::NetGraph;
use fcn_coords::{AspectRatio, HexCoord, HexDirection};
use fcn_layout::clocking::ClockingScheme;
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::tile::TileContents;
use fcn_logic::techmap::MappedId;
use fcn_logic::GateKind;
use std::collections::HashMap;

/// A signal alive between rows.
#[derive(Debug, Clone, Copy)]
struct Alive {
    edge: usize,
    /// Doubled position of the tile currently carrying the signal.
    pos: i32,
    /// Exit position in the next row, when predetermined by a crossing or
    /// a two-output gate tile.
    forced: Option<i32>,
}

/// A tile under construction; output directions are filled in one row
/// later, once the successors are known.
#[derive(Debug, Clone)]
enum Pending {
    Gate {
        node: MappedId,
        in_dirs: Vec<HexDirection>,
        /// `(edge, direction)` per output port.
        out_dirs: Vec<(usize, Option<HexDirection>)>,
    },
    Wire {
        /// `(edge, incoming, outgoing)` per segment.
        segments: Vec<(usize, HexDirection, Option<HexDirection>)>,
    },
}

/// Runs the heuristic placement & routing sweep.
///
/// Succeeds for every fan-out-legalized netlist with at least one
/// primary output the router's drift invariants hold for; the resulting
/// layout passes [`HexGateLayout::verify`].
///
/// # Errors
///
/// Returns [`PnrError::RouterInvariant`] when the drift search finds no
/// legal position for a signal — an internal invariant violation
/// surfaced as an error so callers (notably the flow's
/// exact-with-fallback path) can degrade gracefully.
///
/// # Examples
///
/// ```
/// use fcn_logic::network::Xag;
/// use fcn_logic::techmap::{map_xag, MapOptions};
/// use fcn_pnr::{heuristic_pnr, NetGraph};
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.or(a, b);
/// xag.primary_output("f", f);
/// let net = map_xag(&xag, MapOptions::default())?;
/// let layout = heuristic_pnr(&NetGraph::new(net)?)?;
/// assert!(layout.verify().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn heuristic_pnr(graph: &NetGraph) -> Result<HexGateLayout, PnrError> {
    Router::new(graph).run()
}

struct Router<'a> {
    graph: &'a NetGraph,
    /// Tiles keyed by `(row, doubled position)`.
    tiles: HashMap<(i32, i32), Pending>,
    alive: Vec<Alive>,
    placed: Vec<bool>,
    row: i32,
}

impl<'a> Router<'a> {
    fn new(graph: &'a NetGraph) -> Self {
        Router {
            graph,
            tiles: HashMap::new(),
            alive: Vec::new(),
            placed: vec![false; graph.network.num_nodes()],
            row: 0,
        }
    }

    fn run(mut self) -> Result<HexGateLayout, PnrError> {
        self.place_pi_row();
        loop {
            let pending_pos: Vec<MappedId> = self
                .graph
                .network
                .node_ids()
                .filter(|n| !self.placed[n.index()])
                .collect();
            if pending_pos
                .iter()
                .all(|n| self.graph.network.node(*n).kind == GateKind::Po)
                && self.alive.iter().all(|a| a.forced.is_none())
            {
                self.place_po_row()?;
                return Ok(self.finish());
            }
            self.advance_row()?;
        }
    }

    fn place_pi_row(&mut self) {
        let pis = self.graph.network.primary_inputs();
        for (i, &pi) in pis.iter().enumerate() {
            let pos = 2 * i as i32;
            let out_dirs = self.graph.out_edges[pi.index()]
                .iter()
                .map(|&e| (e, None))
                .collect();
            self.tiles.insert(
                (0, pos),
                Pending::Gate {
                    node: pi,
                    in_dirs: vec![],
                    out_dirs,
                },
            );
            self.placed[pi.index()] = true;
            for &e in &self.graph.out_edges[pi.index()] {
                self.alive.push(Alive {
                    edge: e,
                    pos,
                    forced: None,
                });
            }
        }
        self.alive.sort_by_key(|a| a.pos);
    }

    /// True if all fanins of `n` are alive and none is mid-crossing.
    fn is_ready(&self, n: MappedId) -> bool {
        self.graph.in_edges[n.index()]
            .iter()
            .all(|&e| self.alive.iter().any(|a| a.edge == e && a.forced.is_none()))
    }

    fn track_of(&self, edge: usize) -> usize {
        self.alive
            .iter()
            .position(|a| a.edge == edge)
            .expect("edge must be alive")
    }

    /// Advances the frontier by one row: gate placements, at most one
    /// bubble/convergence action, and straight drifts for the rest.
    fn advance_row(&mut self) -> Result<(), PnrError> {
        let next_row = self.row + 1;
        // Plan per alive index: either consumed by a gate or drifting.
        let mut consumed_by: HashMap<usize, MappedId> = HashMap::new(); // track -> gate
        let mut gate_positions: Vec<(MappedId, i32)> = Vec::new();
        let mut used_tracks: Vec<usize> = Vec::new();

        // 1. Place every ready gate whose fanins sit at adjacent positions.
        let candidates: Vec<MappedId> = self
            .graph
            .network
            .node_ids()
            .filter(|&n| {
                !self.placed[n.index()]
                    && self.graph.network.node(n).kind != GateKind::Po
                    && self.is_ready(n)
            })
            .collect();
        for &n in &candidates {
            let fanins = &self.graph.in_edges[n.index()];
            match fanins.len() {
                2 => {
                    let i = self.track_of(fanins[0]);
                    let j = self.track_of(fanins[1]);
                    let (i, j) = (i.min(j), i.max(j));
                    if j == i + 1
                        && self.alive[j].pos - self.alive[i].pos == 2
                        && !used_tracks.contains(&i)
                        && !used_tracks.contains(&j)
                    {
                        consumed_by.insert(i, n);
                        consumed_by.insert(j, n);
                        used_tracks.extend([i, j]);
                        gate_positions.push((n, self.alive[i].pos + 1));
                    }
                }
                1 => {
                    let i = self.track_of(fanins[0]);
                    if !used_tracks.contains(&i) {
                        consumed_by.insert(i, n);
                        used_tracks.push(i);
                        // Position resolved during the assignment sweep.
                        gate_positions.push((n, i32::MIN));
                    }
                }
                _ => unreachable!("mapped gates have one or two fanins"),
            }
        }

        // Positions already promised to signals leaving crossings or
        // two-output gate tiles.
        let forced_positions: Vec<i32> = self.alive.iter().filter_map(|a| a.forced).collect();

        // Gates whose center tile would collide with a forced exit must
        // wait one row.
        gate_positions.retain(|(g, p)| {
            if *p != i32::MIN && forced_positions.contains(p) {
                let fanins = &self.graph.in_edges[g.index()];
                for &e in fanins {
                    let t = self.track_of(e);
                    consumed_by.remove(&t);
                    used_tracks.retain(|&u| u != t);
                }
                false
            } else {
                true
            }
        });

        // 2. One convergence action for the first still-unplaceable node.
        let mut swap_pair: Option<(usize, usize)> = None; // tracks forming a crossing
        let mut converge_pair: Option<(usize, usize)> = None; // drift towards each other
        if let Some(&focus) = candidates.iter().find(|&&n| {
            self.graph.network.node(n).kind.num_inputs() == 2
                && !gate_positions.iter().any(|(g, _)| *g == n)
        }) {
            let fanins = &self.graph.in_edges[focus.index()];
            let i = self.track_of(fanins[0]);
            let j = self.track_of(fanins[1]);
            let (i, j) = (i.min(j), i.max(j));
            if !used_tracks.contains(&i) && !used_tracks.contains(&(i + 1)) {
                if j == i + 1 {
                    // Adjacent tracks, too far apart: converge.
                    converge_pair = Some((i, j));
                } else if self.alive[i + 1].pos - self.alive[i].pos == 2
                    && self.alive[i + 1].forced.is_none()
                    && !forced_positions.contains(&(self.alive[i].pos + 1))
                {
                    // Bubble the left fanin rightward past one track.
                    swap_pair = Some((i, i + 1));
                } else if self.alive[i + 1].forced.is_none() {
                    converge_pair = Some((i, i + 1));
                }
            }
        }

        // 3. Assign new positions left to right (prefer drifting left).
        //    A tile may host up to two wire segments, so a signal squeezed
        //    between occupied positions legally *shares* a tile; shared
        //    tiles separate again via forced exits in the next row.
        let prefer = |a: &Alive| a.pos - 1;
        let mut gate_tiles: std::collections::HashSet<i32> = gate_positions
            .iter()
            .filter(|(_, p)| *p != i32::MIN)
            .map(|(_, p)| *p)
            .collect();
        // Remaining forced exits targeting each position.
        let mut forced_remaining: HashMap<i32, usize> = HashMap::new();
        for a in &self.alive {
            if let Some(f) = a.forced {
                *forced_remaining.entry(f).or_default() += 1;
            }
        }

        let mut new_alive: Vec<Alive> = Vec::new();
        // pos -> [(edge, from_pos)]; two signals may legally land on the
        // same tile (a double wire / crossing), so entries merge.
        let mut new_tiles: std::collections::BTreeMap<i32, Vec<(usize, i32)>> =
            std::collections::BTreeMap::new();
        let mut last_assigned = i32::MIN / 2;

        let mut idx = 0;
        while idx < self.alive.len() {
            let a = self.alive[idx];
            let expected = |c: i32| {
                new_tiles.get(&c).map_or(0, Vec::len)
                    + forced_remaining.get(&c).copied().unwrap_or(0)
            };
            let fresh =
                |c: i32| c >= last_assigned + 2 && !gate_tiles.contains(&c) && expected(c) == 0;
            let shared =
                |c: i32| c >= last_assigned && !gate_tiles.contains(&c) && expected(c) == 1;
            let pick = |desired: i32| -> Option<i32> {
                let (first, second) = if desired == a.pos - 1 {
                    (a.pos - 1, a.pos + 1)
                } else {
                    (a.pos + 1, a.pos - 1)
                };
                if fresh(first) {
                    Some(first)
                } else if fresh(second) {
                    Some(second)
                } else if shared(first) {
                    Some(first)
                } else if shared(second) {
                    Some(second)
                } else {
                    None
                }
            };

            // Crossing pair created this row.
            if let Some((i, _)) = swap_pair {
                if idx == i {
                    let b = self.alive[idx + 1];
                    let center = a.pos + 1;
                    debug_assert_eq!(b.pos - a.pos, 2);
                    new_tiles
                        .entry(center)
                        .or_default()
                        .extend([(a.edge, a.pos), (b.edge, b.pos)]);
                    // Exits are swapped: the left signal continues right.
                    new_alive.push(Alive {
                        edge: b.edge,
                        pos: center,
                        forced: Some(center - 1),
                    });
                    new_alive.push(Alive {
                        edge: a.edge,
                        pos: center,
                        forced: Some(center + 1),
                    });
                    last_assigned = center;
                    idx += 2;
                    continue;
                }
            }
            // Gate consumption.
            if let Some(&g) = consumed_by.get(&idx) {
                let arity = self.graph.network.node(g).kind.num_inputs();
                if arity == 2 {
                    let b = self.alive[idx + 1];
                    let center = a.pos + 1;
                    self.emit_gate(g, center, &[(a.edge, a.pos), (b.edge, b.pos)]);
                    self.spawn_outputs(g, center, &mut new_alive);
                    last_assigned = center;
                    idx += 2;
                    continue;
                }
                // Single-input gate: needs a fresh tile of its own; if none
                // is available this row, let the signal drift instead and
                // retry in a later row.
                let choice = [a.pos - 1, a.pos + 1].into_iter().find(|&c| fresh(c));
                if let Some(p) = choice {
                    self.emit_gate(g, p, &[(a.edge, a.pos)]);
                    gate_tiles.insert(p);
                    self.spawn_outputs(g, p, &mut new_alive);
                    last_assigned = p;
                    idx += 1;
                    continue;
                }
            }
            // Convergence drift.
            let desired = if let Some((i, j)) = converge_pair {
                if idx == i {
                    a.pos + 1
                } else if idx == j {
                    a.pos - 1
                } else {
                    prefer(&a)
                }
            } else {
                prefer(&a)
            };
            let p = match a.forced {
                Some(f) => {
                    *forced_remaining
                        .get_mut(&f)
                        .expect("forced exit registered") -= 1;
                    f
                }
                None => pick(desired).ok_or(PnrError::RouterInvariant {
                    row: next_row,
                    pos: a.pos,
                })?,
            };
            new_tiles.entry(p).or_default().push((a.edge, a.pos));
            new_alive.push(Alive {
                edge: a.edge,
                pos: p,
                forced: None,
            });
            last_assigned = p;
            idx += 1;
        }

        // Two forced exits that landed on the same tile form a double-wire
        // tile: pre-assign their next-row exits so they separate again
        // (the left-origin signal keeps left, parallel-wire style).
        for (&p, entries) in &new_tiles {
            if entries.len() == 2 {
                let (left_edge, right_edge) = if entries[0].1 <= entries[1].1 {
                    (entries[0].0, entries[1].0)
                } else {
                    (entries[1].0, entries[0].0)
                };
                for a in new_alive.iter_mut().filter(|a| a.pos == p) {
                    if a.forced.is_none() {
                        a.forced = Some(if a.edge == left_edge {
                            p - 1
                        } else {
                            debug_assert_eq!(a.edge, right_edge);
                            p + 1
                        });
                    }
                }
                // Keep the alive list ordered left-exit first on ties.
                let mut shared: Vec<Alive> =
                    new_alive.iter().copied().filter(|a| a.pos == p).collect();
                shared.sort_by_key(|a| a.forced);
                new_alive.retain(|a| a.pos != p);
                new_alive.extend(shared);
            }
        }

        // 4. Materialize wire tiles (merging shared tiles into crossings is
        //    handled by pushing two segments).
        for (p, entries) in new_tiles {
            let mut segments = Vec::new();
            for (edge, from) in entries {
                let in_dir = if from < p {
                    HexDirection::NorthWest
                } else {
                    HexDirection::NorthEast
                };
                self.set_exit(
                    self.row,
                    from,
                    edge,
                    if from < p {
                        HexDirection::SouthEast
                    } else {
                        HexDirection::SouthWest
                    },
                );
                segments.push((edge, in_dir, None));
            }
            self.tiles.insert((next_row, p), Pending::Wire { segments });
        }

        self.alive = new_alive;
        self.alive.sort_by_key(|a| a.pos);
        self.row = next_row;
        Ok(())
    }

    /// Picks a legal drift position for an unforced signal, or reports
    /// the invariant violation when neither neighbor is available.
    fn choose_position(
        &self,
        a: Alive,
        last: i32,
        reserved: &[i32],
        desired: i32,
    ) -> Result<i32, PnrError> {
        let left = a.pos - 1;
        let right = a.pos + 1;
        let ok = |p: i32| p >= last + 2 && !reserved.contains(&p);
        let violated = PnrError::RouterInvariant {
            row: self.row + 1,
            pos: a.pos,
        };
        if desired == left {
            if ok(left) {
                Ok(left)
            } else if ok(right) {
                Ok(right)
            } else {
                Err(violated)
            }
        } else if ok(right) {
            Ok(right)
        } else if ok(left) {
            Ok(left)
        } else {
            Err(violated)
        }
    }

    /// Emits a gate tile at `(row+1, pos)` consuming the given signals.
    fn emit_gate(&mut self, node: MappedId, pos: i32, consumed: &[(usize, i32)]) {
        // Record exits on the predecessor tiles and gather input dirs in
        // fanin port order.
        let mut dir_of_edge: HashMap<usize, HexDirection> = HashMap::new();
        for &(edge, from) in consumed {
            let (out_dir, in_dir) = if from < pos {
                (HexDirection::SouthEast, HexDirection::NorthWest)
            } else {
                (HexDirection::SouthWest, HexDirection::NorthEast)
            };
            self.set_exit(self.row, from, edge, out_dir);
            dir_of_edge.insert(edge, in_dir);
        }
        let in_dirs: Vec<HexDirection> = self.graph.in_edges[node.index()]
            .iter()
            .map(|e| dir_of_edge[e])
            .collect();
        let out_dirs = self.graph.out_edges[node.index()]
            .iter()
            .map(|&e| (e, None))
            .collect();
        self.tiles.insert(
            (self.row + 1, pos),
            Pending::Gate {
                node,
                in_dirs,
                out_dirs,
            },
        );
        self.placed[node.index()] = true;
    }

    /// Adds the outputs of a freshly placed gate to the alive list.
    fn spawn_outputs(&self, node: MappedId, pos: i32, new_alive: &mut Vec<Alive>) {
        let outs = &self.graph.out_edges[node.index()];
        match outs.len() {
            0 => {}
            1 => new_alive.push(Alive {
                edge: outs[0],
                pos,
                forced: None,
            }),
            2 => {
                // Port 0 exits south-west, port 1 south-east.
                new_alive.push(Alive {
                    edge: outs[0],
                    pos,
                    forced: Some(pos - 1),
                });
                new_alive.push(Alive {
                    edge: outs[1],
                    pos,
                    forced: Some(pos + 1),
                });
            }
            _ => unreachable!("at most two output ports"),
        }
    }

    /// Records the outgoing direction of `edge` on the tile at
    /// `(row, pos)`.
    fn set_exit(&mut self, row: i32, pos: i32, edge: usize, dir: HexDirection) {
        let tile = self
            .tiles
            .get_mut(&(row, pos))
            .expect("predecessor tile must exist");
        match tile {
            Pending::Gate { out_dirs, .. } => {
                let slot = out_dirs
                    .iter_mut()
                    .find(|(e, d)| *e == edge && d.is_none())
                    .expect("gate must own the edge");
                slot.1 = Some(dir);
            }
            Pending::Wire { segments } => {
                let slot = segments
                    .iter_mut()
                    .find(|(e, _, d)| *e == edge && d.is_none())
                    .expect("wire must carry the edge");
                slot.2 = Some(dir);
            }
        }
    }

    fn place_po_row(&mut self) -> Result<(), PnrError> {
        let next_row = self.row + 1;
        let mut last = i32::MIN / 2;
        let alive = self.alive.clone();
        for a in &alive {
            let po = self.graph.edges[a.edge].target;
            debug_assert_eq!(self.graph.network.node(po).kind, GateKind::Po);
            let p = self.choose_position(*a, last, &[], a.pos - 1)?;
            let (out_dir, in_dir) = if a.pos < p {
                (HexDirection::SouthEast, HexDirection::NorthWest)
            } else {
                (HexDirection::SouthWest, HexDirection::NorthEast)
            };
            self.set_exit(self.row, a.pos, a.edge, out_dir);
            self.tiles.insert(
                (next_row, p),
                Pending::Gate {
                    node: po,
                    in_dirs: vec![in_dir],
                    out_dirs: vec![],
                },
            );
            self.placed[po.index()] = true;
            last = p;
        }
        self.alive.clear();
        self.row = next_row;
        Ok(())
    }

    /// Converts the pending tiles into a [`HexGateLayout`], normalizing
    /// doubled positions into offset coordinates.
    fn finish(self) -> HexGateLayout {
        // Doubled position p in row y maps to column x = (p - (y & 1)) / 2.
        // Shift all positions so the minimum column is zero; the shift must
        // be even to preserve parity.
        let min_x = self
            .tiles
            .keys()
            .map(|&(y, p)| (p - (y & 1)).div_euclid(2))
            .min()
            .expect("layout has tiles");
        let max_x = self
            .tiles
            .keys()
            .map(|&(y, p)| (p - (y & 1)).div_euclid(2))
            .max()
            .expect("layout has tiles");
        let width = (max_x - min_x + 1) as u32;
        let height = (self.row + 1) as u32;
        let mut layout = HexGateLayout::new(AspectRatio::new(width, height), ClockingScheme::Row);
        for (&(y, p), pending) in &self.tiles {
            let x = (p - (y & 1)).div_euclid(2) - min_x;
            let coord = HexCoord::new(x, y);
            let contents = match pending {
                Pending::Gate {
                    node,
                    in_dirs,
                    out_dirs,
                } => {
                    let n = self.graph.network.node(*node);
                    TileContents::gate(
                        n.kind,
                        in_dirs.clone(),
                        out_dirs
                            .iter()
                            .map(|(_, d)| d.expect("all gate outputs routed"))
                            .collect(),
                        n.name.clone(),
                    )
                }
                Pending::Wire { segments } => TileContents::Wire {
                    segments: segments
                        .iter()
                        .map(|(_, i, o)| (*i, o.expect("all wires routed")))
                        .collect(),
                },
            };
            layout.place(coord, contents);
        }
        layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn route(xag: &Xag) -> HexGateLayout {
        let net = map_xag(xag, MapOptions::default()).expect("mappable");
        heuristic_pnr(&NetGraph::new(net).expect("legalized")).expect("routes")
    }

    #[test]
    fn routes_single_gate() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let layout = route(&xag);
        let v = layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", layout.render_ascii());
        assert_eq!(layout.num_logic_tiles(), 1);
    }

    #[test]
    fn routes_inverter_chain() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        xag.primary_output("f", !a);
        let layout = route(&xag);
        assert!(layout.verify().is_empty());
    }

    #[test]
    fn routes_fanout_network() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: false,
                legalize_fanout: true,
            },
        )
        .expect("mappable");
        let layout = heuristic_pnr(&NetGraph::new(net).expect("legalized")).expect("routes");
        let v = layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", layout.render_ascii());
    }

    #[test]
    fn routes_full_adder() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let cin = xag.primary_input("cin");
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        let and1 = xag.and(a, b);
        let and2 = xag.and(axb, cin);
        let cout = xag.or(and1, and2);
        xag.primary_output("sum", sum);
        xag.primary_output("cout", cout);
        let layout = route(&xag);
        let v = layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", layout.render_ascii());
    }

    #[test]
    fn routes_wide_parity_network() {
        let mut xag = Xag::new();
        let inputs: Vec<_> = (0..6).map(|i| xag.primary_input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = xag.xor(acc, i);
        }
        xag.primary_output("p", acc);
        let layout = route(&xag);
        let v = layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", layout.render_ascii());
    }

    #[test]
    fn routes_mux_with_crossing_pressure() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.primary_input("s");
        let m = xag.mux(s, a, b);
        xag.primary_output("m", m);
        let layout = route(&xag);
        let v = layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", layout.render_ascii());
    }

    #[test]
    fn random_networks_route_legally() {
        let mut seed = 0xfeedface_u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..8 {
            let mut xag = Xag::new();
            let n_inputs = 3 + (round % 3);
            let mut signals: Vec<_> = (0..n_inputs)
                .map(|i| xag.primary_input(format!("i{i}")))
                .collect();
            for _ in 0..10 {
                let x = signals[(rand() % signals.len() as u64) as usize];
                let y = signals[(rand() % signals.len() as u64) as usize];
                let s = match rand() % 3 {
                    0 => xag.and(x, y),
                    1 => xag.xor(x, y),
                    _ => xag.or(x, !y),
                };
                signals.push(s);
            }
            // Fold every input into the output so no PI dangles.
            let mut out = *signals.last().expect("non-empty");
            for &pi in signals.iter().take(n_inputs as usize) {
                out = xag.xor(out, pi);
            }
            if out.node().index() == 0 {
                continue;
            }
            xag.primary_output("f", out);
            let cleaned = xag.cleaned();
            // Structural cancellation can still orphan a PI; skip such rounds.
            let counts = cleaned.fanout_counts();
            let all_pis_used = cleaned
                .primary_inputs()
                .iter()
                .all(|pi| counts[pi.index()] > 0);
            if cleaned.num_gates() == 0 || !all_pis_used {
                continue;
            }
            let layout = route(&cleaned);
            let v = layout.verify();
            assert!(
                v.is_empty(),
                "round {round}:\n{}\n{v:?}",
                layout.render_ascii()
            );
        }
    }
}
