//! `fcn-pnr` — physical design for hexagonal SiDB layouts.
//!
//! Step 4 of the paper's flow: "generate a linearly clocked hexagonal
//! gate-level layout from the mapped network via SMT-based *exact*
//! physical design [Walter et al., DATE 2018]". Two engines are provided:
//!
//! * [`exact`] — an area-minimal placement & routing engine. Aspect ratios
//!   are enumerated in increasing-area order; for each ratio the
//!   simultaneous placement/routing problem is encoded into CNF and handed
//!   to the [`msat`] CDCL solver. The first satisfiable ratio is optimal.
//!   (The original work used the Z3 SMT solver; the encoding here is pure
//!   SAT — see `DESIGN.md` §3.)
//! * [`heuristic`] — a scalable one-pass baseline in the spirit of
//!   [Walter et al., ASP-DAC 2019]: levelized placement with a
//!   bubble-routing channel stage. Linear-time, never optimal — it serves
//!   as the comparison point for the exact-vs-scalable ablation.
//!
//! Both hexagonal engines emit row-clocked [`fcn_layout::HexGateLayout`]s
//! in which information flows strictly from north to south, every signal
//! path is balanced (one row per clock phase), and therefore every layout
//! has the paper's reported best-possible throughput of 1/1.
//!
//! [`cartesian_exact`] provides the same exactness on the Cartesian
//! 2DDWave baseline floor plan, enabling the measured topology comparison
//! of the Figure 3 experiment.

pub mod cartesian_exact;
pub mod exact;
pub mod heuristic;
pub mod incremental;
pub mod netgraph;
pub mod pool;
pub mod portfolio;

pub use cartesian_exact::cartesian_exact_pnr;
#[allow(deprecated)]
pub use cartesian_exact::CartPnrResult;
#[allow(deprecated)]
pub use exact::PnrResult;
pub use exact::{
    default_incremental, default_num_threads, exact_pnr, ExactOptions, PnrError, PnrOutcome,
    ProbeVerdict, RatioProbe,
};
pub use heuristic::heuristic_pnr;
pub use incremental::ReuseStats;
pub use netgraph::NetGraph;
pub use pool::SessionPool;
