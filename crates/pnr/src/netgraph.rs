//! A placement-oriented view of a mapped netlist.
//!
//! [`NetGraph`] extracts from a fan-out-legalized [`MappedNetwork`] the
//! data physical design needs: an explicit edge list, ASAP/ALAP row
//! bounds, and the minimal layout dimensions implied by the netlist.

use fcn_logic::techmap::{MappedId, MappedNetwork};
use fcn_logic::GateKind;

/// A directed connection between two mapped nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Dense edge index.
    pub id: usize,
    /// Driving node.
    pub source: MappedId,
    /// Output port of the driver.
    pub source_port: u8,
    /// Consuming node.
    pub target: MappedId,
    /// Input port of the consumer.
    pub target_port: u8,
}

/// Placement-oriented graph data derived from a mapped netlist.
#[derive(Debug, Clone)]
pub struct NetGraph {
    /// The underlying netlist.
    pub network: MappedNetwork,
    /// All signal edges.
    pub edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    pub out_edges: Vec<Vec<usize>>,
    /// Incoming edge ids per node.
    pub in_edges: Vec<Vec<usize>>,
    /// Earliest possible row per node (PIs at 0).
    pub asap: Vec<u32>,
}

/// An error constructing a [`NetGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetGraphError {
    /// The netlist still contains multi-fanout outputs; run
    /// [`MappedNetwork::legalize_fanout`] first.
    FanoutNotLegalized,
    /// The netlist has no primary outputs.
    NoOutputs,
    /// A primary input drives nothing; a floating input pad has no
    /// physical representation on a tile.
    DanglingInput(String),
}

impl core::fmt::Display for NetGraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetGraphError::FanoutNotLegalized => {
                f.write_str("netlist has multi-fanout outputs; legalize fan-out first")
            }
            NetGraphError::NoOutputs => f.write_str("netlist has no primary outputs"),
            NetGraphError::DanglingInput(name) => {
                write!(f, "primary input '{name}' drives nothing")
            }
        }
    }
}

impl std::error::Error for NetGraphError {}

impl NetGraph {
    /// Builds the graph view of a fan-out-legalized netlist.
    ///
    /// # Errors
    ///
    /// Fails if any output port drives more than one consumer or the
    /// netlist has no primary outputs.
    pub fn new(network: MappedNetwork) -> Result<Self, NetGraphError> {
        if !network.fanout_violations().is_empty() {
            return Err(NetGraphError::FanoutNotLegalized);
        }
        if network.primary_outputs().is_empty() {
            return Err(NetGraphError::NoOutputs);
        }
        let n = network.num_nodes();
        let mut edges = Vec::new();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for id in network.node_ids() {
            for (port, f) in network.node(id).fanins.iter().enumerate() {
                let e = Edge {
                    id: edges.len(),
                    source: f.node,
                    source_port: f.output,
                    target: id,
                    target_port: port as u8,
                };
                out_edges[f.node.index()].push(e.id);
                in_edges[id.index()].push(e.id);
                edges.push(e);
            }
        }
        // Out-edges must be ordered by output port (consumers appear in
        // arbitrary order), so that layout output ports line up with the
        // netlist's port numbering.
        for list in &mut out_edges {
            list.sort_by_key(|&e| edges[e].source_port);
        }
        for pi in network.primary_inputs() {
            if out_edges[pi.index()].is_empty() {
                let name = network.node(pi).name.clone().unwrap_or_default();
                return Err(NetGraphError::DanglingInput(name));
            }
        }
        let mut asap = vec![0u32; n];
        for id in network.node_ids() {
            let max_in = network
                .node(id)
                .fanins
                .iter()
                .map(|f| asap[f.node.index()] + 1)
                .max();
            asap[id.index()] = max_in.unwrap_or(0);
        }
        Ok(NetGraph {
            network,
            edges,
            out_edges,
            in_edges,
            asap,
        })
    }

    /// Latest possible row per node for a layout of `height` rows
    /// (POs pinned to the last row). Returns `None` if `height` is smaller
    /// than the critical path allows.
    pub fn alap(&self, height: u32) -> Option<Vec<u32>> {
        if height < self.min_height() {
            return None;
        }
        let n = self.network.num_nodes();
        let mut alap = vec![height - 1; n];
        for id in self
            .network
            .node_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            let node = self.network.node(id);
            if node.kind == GateKind::Po {
                alap[id.index()] = height - 1;
            } else {
                let min_out = self.out_edges[id.index()]
                    .iter()
                    .map(|&e| alap[self.edges[e].target.index()])
                    .min();
                if let Some(m) = min_out {
                    if m == 0 {
                        return None;
                    }
                    alap[id.index()] = m - 1;
                }
            }
            if alap[id.index()] < self.asap[id.index()] {
                return None;
            }
        }
        Some(alap)
    }

    /// Minimal layout height in rows: the longest PI→PO path in nodes.
    pub fn min_height(&self) -> u32 {
        self.network
            .primary_outputs()
            .iter()
            .map(|po| self.asap[po.index()] + 1)
            .max()
            .unwrap_or(1)
    }

    /// Minimal layout width in tiles: PIs share row 0 and POs share the
    /// last row, so the width must accommodate the larger pad set.
    pub fn min_width(&self) -> u32 {
        (self.network.primary_inputs().len() as u32)
            .max(self.network.primary_outputs().len() as u32)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn adder_graph() -> NetGraph {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: false,
                legalize_fanout: true,
            },
        )
        .expect("mappable");
        NetGraph::new(net).expect("legalized")
    }

    #[test]
    fn edges_connect_ports() {
        let g = adder_graph();
        assert!(!g.edges.is_empty());
        for e in &g.edges {
            assert!(g.out_edges[e.source.index()].contains(&e.id));
            assert!(g.in_edges[e.target.index()].contains(&e.id));
        }
    }

    #[test]
    fn asap_respects_topology() {
        let g = adder_graph();
        for e in &g.edges {
            assert!(g.asap[e.target.index()] > g.asap[e.source.index()]);
        }
        for pi in g.network.primary_inputs() {
            assert_eq!(g.asap[pi.index()], 0);
        }
    }

    #[test]
    fn alap_respects_asap_and_height() {
        let g = adder_graph();
        let h = g.min_height();
        let alap = g.alap(h).expect("feasible at min height");
        for id in g.network.node_ids() {
            assert!(alap[id.index()] >= g.asap[id.index()]);
        }
        // Too small a height is infeasible.
        assert!(g.alap(h - 1).is_none());
        // Extra height adds slack everywhere except the pinned pads.
        let alap2 = g.alap(h + 2).expect("taller is feasible");
        for po in g.network.primary_outputs() {
            assert_eq!(alap2[po.index()], h + 1);
        }
    }

    #[test]
    fn min_width_covers_pads() {
        let g = adder_graph();
        assert_eq!(g.min_width(), 2);
    }

    #[test]
    fn out_edges_are_ordered_by_source_port() {
        // A half adder's consumers appear in arbitrary node order; the
        // out-edge list must still be sorted by output port.
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        // Register carry before sum so consumer order opposes port order.
        xag.primary_output("c", c);
        xag.primary_output("s", s);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: true,
                legalize_fanout: true,
            },
        )
        .expect("mappable");
        let g = NetGraph::new(net).expect("legalized");
        for id in g.network.node_ids() {
            let ports: Vec<u8> = g.out_edges[id.index()]
                .iter()
                .map(|&e| g.edges[e].source_port)
                .collect();
            let mut sorted = ports.clone();
            sorted.sort_unstable();
            assert_eq!(ports, sorted, "node {id:?}");
        }
    }

    #[test]
    fn dangling_input_is_rejected() {
        let mut net = MappedNetwork::new();
        let _unused = net.add_node(fcn_logic::GateKind::Pi, vec![], Some("a".into()));
        let used = net.add_node(fcn_logic::GateKind::Pi, vec![], Some("b".into()));
        net.add_node(
            fcn_logic::GateKind::Po,
            vec![fcn_logic::techmap::MappedSignal {
                node: used,
                output: 0,
            }],
            Some("f".into()),
        );
        assert_eq!(
            NetGraph::new(net).unwrap_err(),
            NetGraphError::DanglingInput("a".into())
        );
    }

    #[test]
    fn unlegalized_network_is_rejected() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: false,
                legalize_fanout: false,
            },
        )
        .expect("mappable");
        assert_eq!(
            NetGraph::new(net).unwrap_err(),
            NetGraphError::FanoutNotLegalized
        );
    }
}
