//! Parallel aspect-ratio portfolio scheduling, shared by the hexagonal
//! and Cartesian exact engines.
//!
//! The exact engines probe aspect ratios in increasing-area order; the
//! first satisfiable ratio is area-minimal. Sequentially, nearly all
//! wall-clock on larger netlists is spent proving small ratios UNSAT
//! before the first SAT ratio is reached. [`run_portfolio`] races those
//! probes across a worker pool while preserving the sequential engine's
//! semantics bit for bit:
//!
//! * **Ordered dispatch** — candidates are handed to workers strictly in
//!   stream order, so every candidate with a smaller index than a SAT
//!   result has already been dispatched when that result arrives.
//! * **Ordered commit** — a SAT result only becomes the winner once it
//!   has the smallest index among possible winners; since each probe's
//!   verdict is deterministic (fresh solver, fixed conflict budget), the
//!   smallest SAT index is the same one the sequential scan would find.
//! * **Cancellation** — when a probe at index `i` turns out SAT, every
//!   in-flight probe with an index greater than `i` is cancelled through
//!   its [`CancelFlag`] (the solver's cooperative interrupt). Probes
//!   with smaller indices are left to conclude: their verdicts are
//!   needed for the minimality guarantee.
//! * **Result assembly** — outcomes of cancelled probes and of probes
//!   beyond the winner are discarded, so the surviving probe list is
//!   exactly the sequential prefix: every pre-winner verdict plus the
//!   winner itself, in area order.
//!
//! Worker threads cannot record into the coordinator's thread-local
//! telemetry collector, so when one is installed each probe runs under a
//! scoped child [`fcn_telemetry::Collector`]; the committed snapshots
//! are adopted into the parent in index order after the pool joins,
//! which makes the merged span tree independent of worker scheduling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Cooperative cancellation handle passed to every probe. Probes must
/// forward it to [`msat::Solver::set_interrupt`] (or poll it themselves
/// in long non-solver phases) and report `cancelled: true` when it
/// fired before a verdict was reached.
pub type CancelFlag = Arc<AtomicBool>;

/// What one probe concluded, as reported back to the scheduler.
#[derive(Debug)]
pub struct ProbeOutcome<L, P> {
    /// The layout, when the probe was satisfiable.
    pub layout: Option<L>,
    /// The probe record (verdict + cost). `None` when the candidate was
    /// filtered out before reaching the solver; such candidates still
    /// count as attempted.
    pub probe: Option<P>,
    /// True when the cancel flag fired before a verdict; the outcome
    /// carries no information and is discarded.
    pub cancelled: bool,
}

/// The assembled result of a portfolio run, equivalent to what the
/// sequential scan over the same candidates would produce.
#[derive(Debug)]
pub struct PortfolioOutcome<L, P> {
    /// Winning candidate index and its layout, if any probe was SAT.
    pub winner: Option<(usize, L)>,
    /// Probe records in candidate order: every concluded pre-winner
    /// probe plus the winner's own.
    pub probes: Vec<P>,
    /// Number of candidates attempted (dispatched and committed),
    /// including ones filtered before the solver.
    pub attempted: usize,
    /// Number of in-flight probes cancelled by the winner.
    pub cancelled: usize,
}

/// Scheduler state shared between workers, guarded by one mutex: the
/// dispatch cursor, the best (smallest) SAT index so far, and the
/// cancel flags of in-flight probes.
struct Shared {
    next: usize,
    best_sat: usize,
    inflight: Vec<(usize, CancelFlag)>,
}

/// Runs `probe` over `candidates` on `num_threads` workers and
/// assembles a sequential-equivalent result. With `num_threads <= 1`
/// (or a single candidate) the probes run inline on the caller's
/// thread, recording telemetry ambiently with zero overhead.
///
/// Every worker owns a *probe context* built by `make_ctx` — the hook
/// through which the exact engines give each worker a long-lived
/// incremental SAT session. The sequential path builds one context and
/// reuses it for the whole scan; the parallel path builds one per
/// worker thread, so contexts never cross threads and need not be
/// `Send`.
///
/// `probe(ctx, index, candidate, cancel)` must reach *semantically*
/// identical verdicts per candidate regardless of thread interleaving
/// (context state may legitimately differ — e.g. learned-clause counts
/// depend on which probes a worker saw) for the portfolio to be
/// equivalent to the sequential scan. Probes receive a fresh
/// [`CancelFlag`] each and should return `cancelled: true` if it fired.
pub fn run_portfolio<Ctx, C, L, P, MF, F>(
    candidates: &[C],
    num_threads: usize,
    make_ctx: MF,
    probe: F,
) -> PortfolioOutcome<L, P>
where
    C: Sync,
    L: Send,
    P: Send,
    MF: Fn() -> Ctx + Sync,
    F: Fn(&mut Ctx, usize, &C, &CancelFlag) -> ProbeOutcome<L, P> + Sync,
{
    if num_threads <= 1 || candidates.len() <= 1 {
        return run_sequential(candidates, make_ctx(), probe);
    }

    let parent = fcn_telemetry::current();
    let shared = Mutex::new(Shared {
        next: 0,
        best_sat: usize::MAX,
        inflight: Vec::new(),
    });
    type Slot<L, P> = Option<(ProbeOutcome<L, P>, Option<fcn_telemetry::Report>)>;
    let slots: Mutex<Vec<Slot<L, P>>> = Mutex::new((0..candidates.len()).map(|_| None).collect());

    let workers = num_threads.min(candidates.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ctx = make_ctx();
                loop {
                    // Dispatch strictly in index order; stop once the
                    // stream is exhausted or a SAT result rules out
                    // everything that remains (indices past the best
                    // SAT cannot win).
                    let (idx, flag) = {
                        let mut s = shared.lock().unwrap();
                        if s.next >= candidates.len() || s.next > s.best_sat {
                            break;
                        }
                        let idx = s.next;
                        s.next += 1;
                        let flag: CancelFlag = Arc::new(AtomicBool::new(false));
                        s.inflight.push((idx, flag.clone()));
                        (idx, flag)
                    };

                    // Run the probe, under a scoped child collector when
                    // the coordinator has telemetry installed.
                    let (outcome, report) = match &parent {
                        Some(_) => {
                            let child = Arc::new(fcn_telemetry::Collector::new("probe"));
                            let outcome = fcn_telemetry::with_collector(&child, || {
                                probe(&mut ctx, idx, &candidates[idx], &flag)
                            });
                            child.finish();
                            (outcome, Some(child.report()))
                        }
                        None => (probe(&mut ctx, idx, &candidates[idx], &flag), None),
                    };

                    {
                        let mut s = shared.lock().unwrap();
                        s.inflight.retain(|(i, _)| *i != idx);
                        if outcome.layout.is_some() && idx < s.best_sat {
                            s.best_sat = idx;
                            for (i, f) in &s.inflight {
                                if *i > idx {
                                    f.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    slots.lock().unwrap()[idx] = Some((outcome, report));
                }
            });
        }
    });

    // Assemble in index order, discarding everything the sequential
    // engine would never have run: cancelled probes and completed
    // probes beyond the winner.
    let mut result = PortfolioOutcome {
        winner: None,
        probes: Vec::new(),
        attempted: 0,
        cancelled: 0,
    };
    for (idx, slot) in slots.into_inner().unwrap().into_iter().enumerate() {
        let Some((outcome, report)) = slot else {
            // Never dispatched: only possible past a committed winner.
            debug_assert!(result.winner.is_some());
            continue;
        };
        if outcome.cancelled {
            // Cancellation only ever targets indices above the best SAT
            // index, so the winner is already committed by now.
            debug_assert!(result.winner.is_some());
            result.cancelled += 1;
            continue;
        }
        if result.winner.is_some() {
            continue; // raced past the winner before its flag fired
        }
        result.attempted += 1;
        if let Some(report) = report {
            fcn_telemetry::adopt_report(&report);
        }
        if let Some(p) = outcome.probe {
            result.probes.push(p);
        }
        if let Some(layout) = outcome.layout {
            result.winner = Some((idx, layout));
        }
    }
    result
}

/// The inline path: probe candidates one at a time on the caller's
/// thread, exactly like the pre-portfolio engines did, reusing a single
/// probe context for the whole scan.
fn run_sequential<Ctx, C, L, P, F>(
    candidates: &[C],
    mut ctx: Ctx,
    probe: F,
) -> PortfolioOutcome<L, P>
where
    F: Fn(&mut Ctx, usize, &C, &CancelFlag) -> ProbeOutcome<L, P>,
{
    let never: CancelFlag = Arc::new(AtomicBool::new(false));
    let mut result = PortfolioOutcome {
        winner: None,
        probes: Vec::new(),
        attempted: 0,
        cancelled: 0,
    };
    for (idx, candidate) in candidates.iter().enumerate() {
        let outcome = probe(&mut ctx, idx, candidate, &never);
        result.attempted += 1;
        if let Some(p) = outcome.probe {
            result.probes.push(p);
        }
        if let Some(layout) = outcome.layout {
            result.winner = Some((idx, layout));
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic probe: a candidate is SAT iff its value is 0; value 1
    /// is UNSAT; value 2 is filtered (no probe record); value 3 spins
    /// until cancelled.
    fn fake_probe(value: &u32, cancel: &CancelFlag) -> ProbeOutcome<String, u32> {
        match value {
            0 => ProbeOutcome {
                layout: Some("sat".to_owned()),
                probe: Some(*value),
                cancelled: false,
            },
            1 => ProbeOutcome {
                layout: None,
                probe: Some(*value),
                cancelled: false,
            },
            2 => ProbeOutcome {
                layout: None,
                probe: None,
                cancelled: false,
            },
            _ => {
                while !cancel.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                ProbeOutcome {
                    layout: None,
                    probe: None,
                    cancelled: true,
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let candidates = [1u32, 2, 1, 0, 1];
        let seq = run_portfolio(&candidates, 1, || (), |_, _, c, f| fake_probe(c, f));
        let par = run_portfolio(&candidates, 4, || (), |_, _, c, f| fake_probe(c, f));
        assert_eq!(seq.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(par.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(seq.probes, par.probes);
        assert_eq!(seq.probes, vec![1, 1, 0]);
        assert_eq!(seq.attempted, par.attempted);
        assert_eq!(seq.attempted, 4); // the filtered candidate counts
    }

    #[test]
    fn winner_cancels_slower_larger_probes() {
        // Candidate 3 spins until cancelled; the SAT candidate at index
        // 1 must cut it loose rather than wait for it.
        let candidates = [1u32, 0, 3, 3];
        let out = run_portfolio(&candidates, 4, || (), |_, _, c, f| fake_probe(c, f));
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(1));
        assert_eq!(out.probes, vec![1, 0]);
        assert_eq!(out.attempted, 2);
        // At least every dispatched spinner was cancelled (dispatch may
        // have stopped before reaching all of them).
        assert!(out.cancelled <= 2);
    }

    #[test]
    fn no_sat_candidate_yields_no_winner() {
        let candidates = [1u32, 2, 1];
        for threads in [1, 4] {
            let out = run_portfolio(&candidates, threads, || (), |_, _, c, f| fake_probe(c, f));
            assert!(out.winner.is_none());
            assert_eq!(out.probes, vec![1, 1]);
            assert_eq!(out.attempted, 3);
            assert_eq!(out.cancelled, 0);
        }
    }

    #[test]
    fn parallel_telemetry_merges_in_index_order() {
        let collector = Arc::new(fcn_telemetry::Collector::new("root"));
        let candidates = [1u32, 1, 0];
        fcn_telemetry::with_collector(&collector, || {
            let _pnr = fcn_telemetry::span("stage");
            run_portfolio(
                &candidates,
                4,
                || (),
                |_, idx, c, f| {
                    let _span = fcn_telemetry::span(format!("probe:{idx}"));
                    fake_probe(c, f)
                },
            )
        });
        let report = collector.report();
        let stage = report.root.child("stage").expect("stage span");
        let names: Vec<&str> = stage.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["probe:0", "probe:1", "probe:2"]);
    }

    #[test]
    fn empty_candidate_list_is_fine() {
        let out = run_portfolio(&[] as &[u32], 4, || (), |_, _, c, f| fake_probe(c, f));
        assert!(out.winner.is_none());
        assert!(out.probes.is_empty());
        assert_eq!(out.attempted, 0);
    }

    #[test]
    fn sequential_scan_reuses_one_context() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let candidates = [1u32, 1, 1, 0];
        let out = run_portfolio(
            &candidates,
            1,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, _, c, f| {
                *ctx += 1; // probe count within this context
                fake_probe(c, f)
            },
        );
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(built.load(Ordering::Relaxed), 1, "one context for the scan");
    }

    #[test]
    fn parallel_run_builds_at_most_one_context_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let candidates = [1u32, 1, 1, 1, 0];
        let out = run_portfolio(
            &candidates,
            3,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, _, c, f| {
                *ctx += 1;
                fake_probe(c, f)
            },
        );
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(4));
        let n = built.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "one context per worker, got {n}");
    }
}
