//! Parallel aspect-ratio portfolio scheduling, shared by the hexagonal
//! and Cartesian exact engines.
//!
//! The exact engines probe aspect ratios in increasing-area order; the
//! first satisfiable ratio is area-minimal. Sequentially, nearly all
//! wall-clock on larger netlists is spent proving small ratios UNSAT
//! before the first SAT ratio is reached. [`run_portfolio`] races those
//! probes across a worker pool while preserving the sequential engine's
//! semantics bit for bit:
//!
//! * **Ordered dispatch** — candidates are handed to workers strictly in
//!   stream order, so every candidate with a smaller index than a SAT
//!   result has already been dispatched when that result arrives.
//! * **Ordered commit** — a SAT result only becomes the winner once it
//!   has the smallest index among possible winners; since each probe's
//!   verdict is deterministic (fresh solver, fixed conflict budget), the
//!   smallest SAT index is the same one the sequential scan would find.
//! * **Cancellation** — when a probe at index `i` turns out SAT, every
//!   in-flight probe with an index greater than `i` is cancelled through
//!   its [`CancelFlag`] (the solver's cooperative interrupt). Probes
//!   with smaller indices are left to conclude: their verdicts are
//!   needed for the minimality guarantee.
//! * **Result assembly** — outcomes of cancelled probes and of probes
//!   beyond the winner are discarded, so the surviving probe list is
//!   exactly the sequential prefix: every pre-winner verdict plus the
//!   winner itself, in area order.
//!
//! Worker threads cannot record into the coordinator's thread-local
//! telemetry collector, so when one is installed each probe runs under a
//! scoped child [`fcn_telemetry::Collector`]; the committed snapshots
//! are adopted into the parent in index order after the pool joins,
//! which makes the merged span tree independent of worker scheduling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Cooperative cancellation handle passed to every probe. Probes must
/// forward it to [`msat::Solver::set_interrupt`] (or poll it themselves
/// in long non-solver phases) and report `cancelled: true` when it
/// fired before a verdict was reached.
pub type CancelFlag = Arc<AtomicBool>;

/// Why a scan gave up before exhausting its candidate stream. Unlike a
/// per-probe `BudgetExceeded` verdict (which skips one ratio and moves
/// on), an abort ends the whole scan: the caller is expected to degrade
/// — typically by falling back to the heuristic engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAbort {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cumulative conflict budget across all probes ran out.
    ConflictBudget,
    /// Layout extraction from a SAT model violated a router invariant
    /// (a routed tile without a coherent predecessor/successor chain).
    /// Carries the offending tile so the caller can surface a typed
    /// error instead of panicking inside a worker.
    Router {
        /// The layout row of the offending tile.
        row: i32,
        /// The column (x position) of the offending tile.
        pos: i32,
    },
}

impl std::fmt::Display for ScanAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanAbort::Deadline => f.write_str("deadline expired"),
            ScanAbort::ConflictBudget => f.write_str("cumulative conflict budget exhausted"),
            ScanAbort::Router { row, pos } => {
                write!(f, "router invariant violated at tile ({pos}, {row})")
            }
        }
    }
}

/// What one probe concluded, as reported back to the scheduler.
#[derive(Debug)]
pub struct ProbeOutcome<L, P> {
    /// The layout, when the probe was satisfiable.
    pub layout: Option<L>,
    /// The probe record (verdict + cost). `None` when the candidate was
    /// filtered out before reaching the solver; such candidates still
    /// count as attempted.
    pub probe: Option<P>,
    /// True when the cancel flag fired before a verdict; the outcome
    /// carries no information and is discarded.
    pub cancelled: bool,
    /// Set when the probe hit a scan-wide resource limit (deadline or
    /// cumulative budget). The scheduler stops dispatching further
    /// candidates; in-flight probes conclude under their own limits.
    pub abort: Option<ScanAbort>,
}

impl<L, P> ProbeOutcome<L, P> {
    /// A probe that reached a verdict (or was filtered pre-solver).
    pub fn concluded(layout: Option<L>, probe: Option<P>) -> Self {
        ProbeOutcome {
            layout,
            probe,
            cancelled: false,
            abort: None,
        }
    }

    /// A probe whose cancel flag fired before a verdict.
    pub fn cancelled() -> Self {
        ProbeOutcome {
            layout: None,
            probe: None,
            cancelled: true,
            abort: None,
        }
    }

    /// A probe that hit a scan-wide limit; ends the scan.
    pub fn aborted(abort: ScanAbort) -> Self {
        ProbeOutcome {
            layout: None,
            probe: None,
            cancelled: false,
            abort: Some(abort),
        }
    }
}

/// The assembled result of a portfolio run, equivalent to what the
/// sequential scan over the same candidates would produce.
#[derive(Debug)]
pub struct PortfolioOutcome<L, P> {
    /// Winning candidate index and its layout, if any probe was SAT.
    pub winner: Option<(usize, L)>,
    /// Probe records in candidate order: every concluded pre-winner
    /// probe plus the winner's own.
    pub probes: Vec<P>,
    /// Number of candidates attempted (dispatched and committed),
    /// including ones filtered before the solver.
    pub attempted: usize,
    /// Number of in-flight probes cancelled by the winner.
    pub cancelled: usize,
    /// Set when the scan stopped early on a scan-wide resource limit
    /// and no winner had been committed by then. Probe records cover
    /// the candidates that concluded before the abort.
    pub aborted: Option<ScanAbort>,
    /// Set when a probe panicked: the (stringified) panic payload. The
    /// scheduler catches the unwind, cancels every in-flight sibling,
    /// stops dispatch, and reports here instead of propagating — the
    /// caller converts this into a typed error.
    pub panicked: Option<String>,
}

/// Scheduler state shared between workers, guarded by one mutex: the
/// dispatch cursor, the best (smallest) SAT index so far, the cancel
/// flags of in-flight probes, and the halt latch (panic or abort).
struct Shared {
    next: usize,
    best_sat: usize,
    inflight: Vec<(usize, CancelFlag)>,
    halt: bool,
    panicked: Option<String>,
}

/// Renders a caught panic payload for the typed error path. Panics with
/// non-string payloads surface as a placeholder rather than being lost.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Runs `probe` over `candidates` on `num_threads` workers and
/// assembles a sequential-equivalent result. With `num_threads <= 1`
/// (or a single candidate) the probes run inline on the caller's
/// thread, recording telemetry ambiently with zero overhead.
///
/// Every worker owns a *probe context* built by `make_ctx` — the hook
/// through which the exact engines give each worker a long-lived
/// incremental SAT session. The sequential path builds one context and
/// reuses it for the whole scan; the parallel path builds one per
/// worker thread, so contexts never cross threads and need not be
/// `Send`.
///
/// `probe(ctx, index, candidate, cancel)` must reach *semantically*
/// identical verdicts per candidate regardless of thread interleaving
/// (context state may legitimately differ — e.g. learned-clause counts
/// depend on which probes a worker saw) for the portfolio to be
/// equivalent to the sequential scan. Probes receive a fresh
/// [`CancelFlag`] each and should return `cancelled: true` if it fired.
pub fn run_portfolio<Ctx, C, L, P, MF, F>(
    candidates: &[C],
    num_threads: usize,
    make_ctx: MF,
    probe: F,
) -> PortfolioOutcome<L, P>
where
    C: Sync,
    L: Send,
    P: Send,
    MF: Fn() -> Ctx + Sync,
    F: Fn(&mut Ctx, usize, &C, &CancelFlag) -> ProbeOutcome<L, P> + Sync,
{
    if num_threads <= 1 || candidates.len() <= 1 {
        return run_sequential(candidates, make_ctx(), probe);
    }

    let parent = fcn_telemetry::current();
    // Worker threads start with empty thread-local fault state; hand
    // them the coordinator's plan (shared hit counters) exactly like
    // the telemetry collector, so injected faults fire at any thread
    // count.
    let fault_plan = fcn_budget::fault::current();
    let shared = Mutex::new(Shared {
        next: 0,
        best_sat: usize::MAX,
        inflight: Vec::new(),
        halt: false,
        panicked: None,
    });
    type Slot<L, P> = Option<(ProbeOutcome<L, P>, Option<fcn_telemetry::Report>)>;
    let slots: Mutex<Vec<Slot<L, P>>> = Mutex::new((0..candidates.len()).map(|_| None).collect());

    let workers = num_threads.min(candidates.len());
    std::thread::scope(|scope| {
        for worker in 0..workers {
            // Named threads label the tracks in exported Perfetto
            // traces (`TELEMETRY_TRACE`).
            std::thread::Builder::new()
                .name(format!("pnr-worker-{worker}"))
                .spawn_scoped(scope, || {
                    let _fault_scope = fault_plan.clone().map(fcn_budget::fault::install);
                    let mut ctx = make_ctx();
                    loop {
                        // Dispatch strictly in index order; stop once the
                        // stream is exhausted, a SAT result rules out
                        // everything that remains (indices past the best
                        // SAT cannot win), or the scan halted (panic/abort).
                        let (idx, flag) = {
                            let mut s = shared.lock().unwrap();
                            if s.halt || s.next >= candidates.len() || s.next > s.best_sat {
                                break;
                            }
                            let idx = s.next;
                            s.next += 1;
                            let flag: CancelFlag = Arc::new(AtomicBool::new(false));
                            s.inflight.push((idx, flag.clone()));
                            (idx, flag)
                        };

                        // Run the probe, under a scoped child collector when
                        // the coordinator has telemetry installed. The probe
                        // is isolated with `catch_unwind`: a panic must not
                        // unwind through the pool, it becomes a typed error
                        // and cancels the siblings.
                        let probed =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || match &parent {
                                    Some(_) => {
                                        let child =
                                            Arc::new(fcn_telemetry::Collector::new("probe"));
                                        let outcome = fcn_telemetry::with_collector(&child, || {
                                            probe(&mut ctx, idx, &candidates[idx], &flag)
                                        });
                                        child.finish();
                                        (outcome, Some(child.report()))
                                    }
                                    None => (probe(&mut ctx, idx, &candidates[idx], &flag), None),
                                },
                            ));
                        let (outcome, report) = match probed {
                            Ok(pair) => pair,
                            Err(payload) => {
                                let mut s = shared.lock().unwrap();
                                s.inflight.retain(|(i, _)| *i != idx);
                                s.halt = true;
                                if s.panicked.is_none() {
                                    s.panicked = Some(payload_string(payload.as_ref()));
                                }
                                // Cancel every sibling: the scan's result is
                                // an internal error either way, so pending
                                // verdicts have no value and holding the
                                // pool open only delays the caller.
                                for (_, f) in &s.inflight {
                                    f.store(true, Ordering::Relaxed);
                                }
                                // The probe context may be poisoned by the
                                // unwind; this worker retires.
                                break;
                            }
                        };

                        {
                            let mut s = shared.lock().unwrap();
                            s.inflight.retain(|(i, _)| *i != idx);
                            if outcome.layout.is_some() && idx < s.best_sat {
                                s.best_sat = idx;
                                for (i, f) in &s.inflight {
                                    if *i > idx {
                                        f.store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                            if outcome.abort.is_some() {
                                // Scan-wide limit: stop dispatching. Probes
                                // already in flight conclude under their own
                                // (identical) limits, so any SAT among them
                                // still commits.
                                s.halt = true;
                            }
                        }
                        slots.lock().unwrap()[idx] = Some((outcome, report));
                    }
                })
                .expect("spawn pnr worker");
        }
    });

    // Assemble in index order, discarding everything the sequential
    // engine would never have run: cancelled probes and completed
    // probes beyond the winner or beyond an abort.
    let mut result = PortfolioOutcome {
        winner: None,
        probes: Vec::new(),
        attempted: 0,
        cancelled: 0,
        aborted: None,
        panicked: shared.into_inner().unwrap().panicked,
    };
    for (idx, slot) in slots.into_inner().unwrap().into_iter().enumerate() {
        let Some((outcome, report)) = slot else {
            // Never dispatched: past a committed winner or a halt.
            debug_assert!(
                result.winner.is_some() || result.aborted.is_some() || result.panicked.is_some()
            );
            continue;
        };
        if outcome.cancelled {
            // Cancellation targets indices above the best SAT index (or
            // any index, after a panic), so by now the winner — if one
            // exists — is already committed.
            result.cancelled += 1;
            continue;
        }
        if result.winner.is_some() || result.aborted.is_some() {
            continue; // raced past the winner/abort before halting
        }
        result.attempted += 1;
        if let Some(report) = report {
            fcn_telemetry::adopt_report(&report);
        }
        if let Some(p) = outcome.probe {
            result.probes.push(p);
        }
        if let Some(layout) = outcome.layout {
            result.winner = Some((idx, layout));
        } else if let Some(abort) = outcome.abort {
            result.aborted = Some(abort);
        }
    }
    if result.winner.is_some() {
        // A committed winner outranks a larger-index abort: the
        // sequential scan would have stopped at the winner first.
        result.aborted = None;
    }
    result
}

/// The inline path: probe candidates one at a time on the caller's
/// thread, exactly like the pre-portfolio engines did, reusing a single
/// probe context for the whole scan.
fn run_sequential<Ctx, C, L, P, F>(
    candidates: &[C],
    mut ctx: Ctx,
    probe: F,
) -> PortfolioOutcome<L, P>
where
    F: Fn(&mut Ctx, usize, &C, &CancelFlag) -> ProbeOutcome<L, P>,
{
    let never: CancelFlag = Arc::new(AtomicBool::new(false));
    let mut result = PortfolioOutcome {
        winner: None,
        probes: Vec::new(),
        attempted: 0,
        cancelled: 0,
        aborted: None,
        panicked: None,
    };
    for (idx, candidate) in candidates.iter().enumerate() {
        // Same panic isolation as the parallel path: a probe panic
        // becomes a typed outcome, never an unwind through the engine.
        let probed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            probe(&mut ctx, idx, candidate, &never)
        }));
        let outcome = match probed {
            Ok(outcome) => outcome,
            Err(payload) => {
                result.panicked = Some(payload_string(payload.as_ref()));
                break;
            }
        };
        if outcome.cancelled {
            // Possible without a winner only through injected faults;
            // the probe carries no information either way.
            result.cancelled += 1;
            continue;
        }
        result.attempted += 1;
        if let Some(p) = outcome.probe {
            result.probes.push(p);
        }
        if let Some(layout) = outcome.layout {
            result.winner = Some((idx, layout));
            break;
        }
        if let Some(abort) = outcome.abort {
            result.aborted = Some(abort);
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic probe: a candidate is SAT iff its value is 0; value 1
    /// is UNSAT; value 2 is filtered (no probe record); value 4 panics;
    /// value 5 aborts the scan (deadline); value 3 and anything else
    /// spins until cancelled.
    fn fake_probe(value: &u32, cancel: &CancelFlag) -> ProbeOutcome<String, u32> {
        match value {
            0 => ProbeOutcome::concluded(Some("sat".to_owned()), Some(*value)),
            1 => ProbeOutcome::concluded(None, Some(*value)),
            2 => ProbeOutcome::concluded(None, None),
            4 => panic!("probe exploded"),
            5 => ProbeOutcome::aborted(ScanAbort::Deadline),
            _ => {
                while !cancel.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                ProbeOutcome::cancelled()
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let candidates = [1u32, 2, 1, 0, 1];
        let seq = run_portfolio(&candidates, 1, || (), |_, _, c, f| fake_probe(c, f));
        let par = run_portfolio(&candidates, 4, || (), |_, _, c, f| fake_probe(c, f));
        assert_eq!(seq.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(par.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(seq.probes, par.probes);
        assert_eq!(seq.probes, vec![1, 1, 0]);
        assert_eq!(seq.attempted, par.attempted);
        assert_eq!(seq.attempted, 4); // the filtered candidate counts
    }

    #[test]
    fn winner_cancels_slower_larger_probes() {
        // Candidate 3 spins until cancelled; the SAT candidate at index
        // 1 must cut it loose rather than wait for it.
        let candidates = [1u32, 0, 3, 3];
        let out = run_portfolio(&candidates, 4, || (), |_, _, c, f| fake_probe(c, f));
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(1));
        assert_eq!(out.probes, vec![1, 0]);
        assert_eq!(out.attempted, 2);
        // At least every dispatched spinner was cancelled (dispatch may
        // have stopped before reaching all of them).
        assert!(out.cancelled <= 2);
    }

    #[test]
    fn no_sat_candidate_yields_no_winner() {
        let candidates = [1u32, 2, 1];
        for threads in [1, 4] {
            let out = run_portfolio(&candidates, threads, || (), |_, _, c, f| fake_probe(c, f));
            assert!(out.winner.is_none());
            assert_eq!(out.probes, vec![1, 1]);
            assert_eq!(out.attempted, 3);
            assert_eq!(out.cancelled, 0);
        }
    }

    #[test]
    fn parallel_telemetry_merges_in_index_order() {
        let collector = Arc::new(fcn_telemetry::Collector::new("root"));
        let candidates = [1u32, 1, 0];
        fcn_telemetry::with_collector(&collector, || {
            let _pnr = fcn_telemetry::span("stage");
            run_portfolio(
                &candidates,
                4,
                || (),
                |_, idx, c, f| {
                    let _span = fcn_telemetry::span(format!("probe:{idx}"));
                    fake_probe(c, f)
                },
            )
        });
        let report = collector.report();
        let stage = report.root.child("stage").expect("stage span");
        let names: Vec<&str> = stage.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["probe:0", "probe:1", "probe:2"]);
    }

    #[test]
    fn probe_panic_is_isolated_and_cancels_siblings() {
        // Candidate 4 panics; candidate 3 spins until cancelled. The
        // panic must not unwind out of run_portfolio, must cancel the
        // spinner, and must surface its payload.
        let candidates = [1u32, 4, 3, 1];
        let out = run_portfolio(&candidates, 4, || (), |_, _, c, f| fake_probe(c, f));
        assert!(out.winner.is_none());
        let payload = out.panicked.expect("panic reported");
        assert!(payload.contains("probe exploded"), "payload: {payload}");
    }

    #[test]
    fn sequential_probe_panic_is_isolated() {
        let candidates = [1u32, 4, 0];
        let out = run_portfolio(&candidates, 1, || (), |_, _, c, f| fake_probe(c, f));
        assert!(out.winner.is_none(), "scan stops at the panic");
        assert_eq!(out.probes, vec![1]);
        assert!(out
            .panicked
            .expect("panic reported")
            .contains("probe exploded"));
    }

    #[test]
    fn abort_stops_dispatch_without_a_winner() {
        let candidates = [1u32, 5, 1, 1];
        for threads in [1, 4] {
            let out = run_portfolio(&candidates, threads, || (), |_, _, c, f| fake_probe(c, f));
            assert!(out.winner.is_none());
            assert_eq!(out.aborted, Some(ScanAbort::Deadline), "threads={threads}");
            assert!(out.panicked.is_none());
            // Only the pre-abort prefix is guaranteed recorded.
            assert!(out.probes.starts_with(&[1]), "probes: {:?}", out.probes);
        }
    }

    #[test]
    fn committed_winner_outranks_later_abort() {
        let candidates = [1u32, 0, 5];
        for threads in [1, 4] {
            let out = run_portfolio(&candidates, threads, || (), |_, _, c, f| fake_probe(c, f));
            assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(1));
            assert!(out.aborted.is_none(), "threads={threads}");
        }
    }

    #[test]
    fn fault_plan_propagates_to_workers() {
        use fcn_budget::fault::{self, Fault, FaultPlan};
        let plan = Arc::new(FaultPlan::single("portfolio.test", Fault::Malform));
        let _scope = fault::install(plan.clone());
        let candidates = [1u32, 1, 1, 1];
        let out = run_portfolio(
            &candidates,
            4,
            || (),
            |_, _, c, f| {
                // Visible only if the coordinator's plan was installed
                // in this worker thread.
                let _ = fault::at("portfolio.test");
                fake_probe(c, f)
            },
        );
        assert!(out.winner.is_none());
        assert_eq!(plan.hits("portfolio.test"), 4, "all workers saw the plan");
    }

    #[test]
    fn empty_candidate_list_is_fine() {
        let out = run_portfolio(&[] as &[u32], 4, || (), |_, _, c, f| fake_probe(c, f));
        assert!(out.winner.is_none());
        assert!(out.probes.is_empty());
        assert_eq!(out.attempted, 0);
    }

    #[test]
    fn sequential_scan_reuses_one_context() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let candidates = [1u32, 1, 1, 0];
        let out = run_portfolio(
            &candidates,
            1,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, _, c, f| {
                *ctx += 1; // probe count within this context
                fake_probe(c, f)
            },
        );
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(3));
        assert_eq!(built.load(Ordering::Relaxed), 1, "one context for the scan");
    }

    #[test]
    fn parallel_run_builds_at_most_one_context_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let candidates = [1u32, 1, 1, 1, 0];
        let out = run_portfolio(
            &candidates,
            3,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, _, c, f| {
                *ctx += 1;
                fake_probe(c, f)
            },
        );
        assert_eq!(out.winner.as_ref().map(|(i, _)| *i), Some(4));
        let n = built.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "one context per worker, got {n}");
    }
}
