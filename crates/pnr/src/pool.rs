//! Warm incremental-SAT session pooling across P&R scans.
//!
//! An [`crate::incremental::IncrementalCnf`] session is expensive to
//! build (the shared clause set of a netlist is re-encoded from
//! nothing) and valuable to keep (learned clauses, branching
//! activities, saved phases). Within one [`crate::exact_pnr`] call the
//! portfolio already keeps one session per worker; this module extends
//! the reuse *across calls*: a long-lived host (the design server)
//! installs a [`SessionPool`], and every scan checks its sessions out
//! at start and parks them back when the scan ends.
//!
//! Sessions are keyed by a fingerprint of everything that shapes the
//! shared clause set — the netlist structure, the tile blacklist, and
//! the area bound (which fixes the candidate union the session's
//! variable universe spans). A checkout for a different key misses and
//! starts cold; parking is skipped for sessions abandoned mid-probe
//! (a panicking worker), whose activation literal was never retired.
//!
//! Pooling is a pure solver-work optimization with the same guarantee
//! as [`crate::ExactOptions::incremental`] itself: the winning ratio is
//! always re-solved on a fresh scratch solver, so the extracted layout
//! is byte-identical whether the session was cold, warm from this scan,
//! or warm from a previous one.

use crate::exact::HexKey;
use crate::incremental::IncrementalCnf;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Parked sessions kept per problem key; the portfolio never runs more
/// workers than candidates, and scans beyond a few workers hit
/// diminishing returns, so a small cap bounds memory without starving
/// checkouts.
const SESSIONS_PER_KEY: usize = 4;

/// Distinct problem keys retained before the oldest key's sessions are
/// dropped (FIFO) — a long-lived server seeing an unbounded stream of
/// distinct netlists must not grow without bound.
const KEYS_RETAINED: usize = 32;

/// A shareable pool of warm incremental SAT sessions.
///
/// Cloning is cheap (an `Arc`); clones share the same store. The
/// intended deployment is one pool per *server worker*, so sessions
/// never migrate between concurrently running scans and the reuse
/// pattern matches the sequential engine's.
#[derive(Debug, Clone, Default)]
pub struct SessionPool {
    inner: Arc<Mutex<PoolState>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

#[derive(Debug, Default)]
struct PoolState {
    sessions: HashMap<u64, Vec<IncrementalCnf<HexKey>>>,
    /// Keys in first-parked order, for FIFO eviction.
    order: Vec<u64>,
}

impl SessionPool {
    /// An empty pool.
    pub fn new() -> Self {
        SessionPool::default()
    }

    /// Number of warm sessions currently parked (over all keys).
    pub fn warm_sessions(&self) -> usize {
        self.lock().sessions.values().map(Vec::len).sum()
    }

    /// Checkouts that found a warm session for their key.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Checkouts that started cold.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Takes a warm session for `key`, if one is parked.
    pub(crate) fn checkout(&self, key: u64) -> Option<IncrementalCnf<HexKey>> {
        let taken = self
            .lock()
            .sessions
            .get_mut(&key)
            .and_then(|list| list.pop());
        match taken.is_some() {
            true => self.hits.fetch_add(1, Ordering::Relaxed),
            false => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        taken
    }

    /// Parks a session back for `key`, evicting the oldest key when the
    /// pool is full of other keys and dropping the session when its own
    /// key is already at capacity.
    pub(crate) fn park(&self, key: u64, session: IncrementalCnf<HexKey>) {
        let mut state = self.lock();
        if !state.sessions.contains_key(&key) {
            if state.order.len() >= KEYS_RETAINED {
                let evicted = state.order.remove(0);
                state.sessions.remove(&evicted);
            }
            state.order.push(key);
        }
        let list = state.sessions.entry(key).or_default();
        if list.len() < SESSIONS_PER_KEY {
            list.push(session);
        }
    }

    /// The store, recovering from lock poisoning: sessions are parked
    /// whole, so a panicked holder leaves the map structurally intact.
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A worker's probe context: an incremental session that returns itself
/// to its home pool when the scan ends. Sessions abandoned mid-probe
/// (the worker panicked between `begin_probe` and `end_probe`) are
/// dropped instead — their activation literal was never retired, so
/// their guarded state would leak into the next scan.
pub(crate) struct PooledSession {
    session: Option<IncrementalCnf<HexKey>>,
    home: Option<(SessionPool, u64)>,
}

impl PooledSession {
    /// A session with no home pool (the non-pooled path).
    pub(crate) fn fresh() -> Self {
        PooledSession {
            session: Some(IncrementalCnf::new()),
            home: None,
        }
    }

    /// Checks a session out of `pool` for `key`, cold on a miss.
    pub(crate) fn checkout(pool: &SessionPool, key: u64) -> Self {
        let session = pool.checkout(key).unwrap_or_default();
        PooledSession {
            session: Some(session),
            home: Some((pool.clone(), key)),
        }
    }

    /// The session itself.
    pub(crate) fn get_mut(&mut self) -> &mut IncrementalCnf<HexKey> {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession {
    fn drop(&mut self) {
        if let (Some(session), Some((pool, key))) = (self.session.take(), self.home.take()) {
            if !session.mid_probe() {
                pool.park(key, session);
            }
        }
    }
}

/// FNV-1a, the session-key hasher. Not `DefaultHasher`, whose output
/// may change between Rust releases — pool keys only need to be stable
/// within a process, but a fixed algorithm keeps scans comparable
/// across runs when debugging.
#[derive(Debug)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn i64(&mut self, v: i64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> IncrementalCnf<HexKey> {
        IncrementalCnf::new()
    }

    #[test]
    fn checkout_miss_then_park_then_hit() {
        let pool = SessionPool::new();
        assert!(pool.checkout(7).is_none());
        assert_eq!(pool.misses(), 1);
        pool.park(7, session());
        assert_eq!(pool.warm_sessions(), 1);
        assert!(pool.checkout(7).is_some());
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.warm_sessions(), 0);
        // A different key misses even with sessions parked elsewhere.
        pool.park(7, session());
        assert!(pool.checkout(8).is_none());
    }

    #[test]
    fn per_key_capacity_bounds_parked_sessions() {
        let pool = SessionPool::new();
        for _ in 0..SESSIONS_PER_KEY + 3 {
            pool.park(1, session());
        }
        assert_eq!(pool.warm_sessions(), SESSIONS_PER_KEY);
    }

    #[test]
    fn oldest_key_is_evicted_when_full() {
        let pool = SessionPool::new();
        for key in 0..(KEYS_RETAINED + 1) as u64 {
            pool.park(key, session());
        }
        // Key 0 was evicted; the newest key is present.
        assert!(pool.checkout(0).is_none());
        assert!(pool.checkout(KEYS_RETAINED as u64).is_some());
    }

    #[test]
    fn mid_probe_sessions_are_not_parked() {
        let pool = SessionPool::new();
        {
            let mut ps = PooledSession::checkout(&pool, 3);
            ps.get_mut().begin_probe(); // never retired
        }
        assert_eq!(pool.warm_sessions(), 0, "poisoned session dropped");
        {
            let mut ps = PooledSession::checkout(&pool, 3);
            ps.get_mut().begin_probe();
            ps.get_mut().end_probe();
        }
        assert_eq!(pool.warm_sessions(), 1, "clean session parked");
    }

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let a = Fnv64::new().u64(1).u64(2).finish();
        let b = Fnv64::new().u64(2).u64(1).finish();
        assert_ne!(a, b);
        assert_eq!(
            Fnv64::new().bytes(b"abc").finish(),
            Fnv64::new().bytes(b"abc").finish()
        );
    }
}
