//! Exact (area-minimal) placement & routing via SAT.
//!
//! The encoding follows the *exact* physical-design idea of
//! [Walter et al., DATE 2018]: enumerate layout aspect ratios in order of
//! increasing area and, for each ratio, decide with a solver whether the
//! mapped netlist fits. The first satisfiable ratio is area-minimal.
//!
//! For a row-clocked hexagonal floor plan, information moves exactly one
//! row south per clock phase, so the problem becomes: assign every netlist
//! node to a tile (PIs in the top row, POs in the bottom row) and every
//! edge to a chain of wire tiles — one per intermediate row — such that
//! consecutive chain elements are diagonal neighbors, no two edges share
//! an output port, and a tile hosts either one gate or at most two wire
//! segments (a crossing or a parallel double wire, both of which exist as
//! Bestagon tiles). Because every PI→PO path then spans exactly `height`
//! rows, all signal paths are balanced and the layout's throughput is the
//! paper's reported 1/1.
//!
//! Variables per ratio: `place(n, t)`, `wire(e, t)` and `step(e, t, d)`
//! (edge `e` leaves tile `t` towards diagonal direction `d`).

use crate::incremental::{IncrementalCnf, ProbeEmitter, ReuseStats, ScratchEmitter};
use crate::netgraph::NetGraph;
use crate::pool::{Fnv64, PooledSession};
use crate::portfolio::{run_portfolio, CancelFlag, ProbeOutcome, ScanAbort};
use fcn_budget::Deadline;
use fcn_coords::{AspectRatio, HexCoord, HexDirection};
use fcn_layout::clocking::ClockingScheme;
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::tile::TileContents;
use fcn_logic::techmap::MappedId;
use fcn_logic::GateKind;
use msat::{BoundedResult, Lit, Model, SolveParams, SolverStats};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Options for the exact engine.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Upper bound on the explored layout area, in tiles.
    pub max_area: u64,
    /// Conflict budget per aspect ratio. A ratio whose SAT instance
    /// exceeds the budget is treated as infeasible and skipped, trading
    /// guaranteed minimality for bounded runtime on large netlists
    /// (`u64::MAX` restores full exactness).
    pub max_conflicts_per_ratio: u64,
    /// Number of worker threads racing aspect-ratio probes (see
    /// [`crate::portfolio`]). `1` probes sequentially on the calling
    /// thread; the result is identical either way. Defaults to
    /// [`default_num_threads`].
    pub num_threads: usize,
    /// Reuse one incremental SAT session per worker across aspect-ratio
    /// probes (see [`crate::incremental`]): learned clauses, branching
    /// activities and saved phases transfer between probes, and the
    /// winning ratio is re-solved on a fresh solver so layouts are
    /// byte-identical to from-scratch mode. `false` selects the
    /// from-scratch path (one fresh solver per probe) for A/B
    /// validation. Defaults to [`default_incremental`].
    pub incremental: bool,
    /// Wall-clock deadline for the whole scan. When it expires the scan
    /// stops and reports [`PnrError::DeadlineExpired`] (unless a winner
    /// was already committed); the flow degrades to the heuristic
    /// engine. Unbounded by default.
    pub deadline: Deadline,
    /// Cumulative conflict budget across *all* probes of the scan, on
    /// top of the per-ratio budget. Exhaustion stops the scan with
    /// [`PnrError::ConflictBudgetExhausted`]. Under a parallel
    /// portfolio the cut-off point depends on scheduling (the meter is
    /// shared across workers), so bounded runs trade the determinism
    /// guarantee for bounded work; `None` (the default) changes
    /// nothing.
    pub max_conflicts_total: Option<u64>,
    /// Tiles (in tile coordinates `(x, y)`) no gate or wire may occupy —
    /// typically tiles whose SiDB footprint a surface defect compromises.
    /// Each blacklisted tile contributes session-shared unit clauses
    /// forcing its placement and wire variables off, so the scan finds
    /// the area-minimal layout *avoiding* those tiles. Empty (the
    /// default) encodes nothing.
    pub blacklist: Vec<(i32, i32)>,
    /// A pool of warm incremental sessions shared *across* `exact_pnr`
    /// calls (see [`crate::pool`]). Workers check sessions out at scan
    /// start (keyed by netlist + blacklist + area bound) and park them
    /// back at scan end. `None` (the default) keeps sessions scan-local;
    /// either way the layout is byte-identical — the winning ratio is
    /// always re-solved from scratch. Ignored when
    /// [`ExactOptions::incremental`] is off.
    pub session_pool: Option<crate::pool::SessionPool>,
}

impl ExactOptions {
    /// Sets the tile blacklist (defect avoidance).
    #[must_use]
    pub fn with_blacklist(mut self, blacklist: Vec<(i32, i32)>) -> Self {
        self.blacklist = blacklist;
        self
    }

    /// Shares warm incremental sessions across scans through `pool`.
    #[must_use]
    pub fn with_session_pool(mut self, pool: crate::pool::SessionPool) -> Self {
        self.session_pool = Some(pool);
        self
    }
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_area: 120,
            max_conflicts_per_ratio: 10_000,
            num_threads: default_num_threads(),
            incremental: default_incremental(),
            deadline: Deadline::unbounded(),
            max_conflicts_total: None,
            blacklist: Vec::new(),
            session_pool: None,
        }
    }
}

/// The default worker-thread count for the exact engines: the
/// `PNR_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("PNR_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The default for [`ExactOptions::incremental`]: `false` when the
/// `PNR_INCREMENTAL` environment variable is set to `0`, `false`, `off`
/// or `no`, otherwise `true`.
pub fn default_incremental() -> bool {
    match std::env::var("PNR_INCREMENTAL") {
        Ok(value) => !matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// How one aspect-ratio SAT probe concluded.
///
/// Distinguishing [`ProbeVerdict::BudgetExceeded`] from genuine
/// [`ProbeVerdict::Unsat`] matters for callers: a skipped ratio means
/// the final result is merely *bounded-exact* (a smaller layout might
/// exist below the abandoned ratio), while a chain of UNSAT verdicts
/// preserves the area-minimality guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// The netlist fits at this ratio.
    Sat,
    /// Proven infeasible at this ratio.
    Unsat,
    /// The conflict budget ran out before a proof either way.
    BudgetExceeded,
}

impl core::fmt::Display for ProbeVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ProbeVerdict::Sat => "sat",
            ProbeVerdict::Unsat => "unsat",
            ProbeVerdict::BudgetExceeded => "budget-exceeded",
        })
    }
}

/// Outcome and solver cost of one aspect-ratio probe.
#[derive(Debug, Clone, Copy)]
pub struct RatioProbe {
    /// The probed aspect ratio.
    pub ratio: AspectRatio,
    /// How the probe concluded.
    pub verdict: ProbeVerdict,
    /// Solver work spent deciding this probe. In incremental mode this
    /// is the warm solver's cost for the probe alone (run counters are
    /// reset at probe start); the winning ratio's fresh extraction
    /// re-solve is reported separately in `extraction_conflicts`.
    pub stats: SolverStats,
    /// Learned clauses carried into this probe from earlier probes of
    /// the same worker's incremental session (`0` on a cold solver and
    /// always in from-scratch mode).
    pub retained: u64,
    /// Conflicts of the fresh from-scratch re-solve that extracted the
    /// winning layout (incremental mode, SAT probes only) — the cold
    /// cost of the same instance, measured in the same run.
    pub extraction_conflicts: Option<u64>,
}

/// A successful placement & routing, generic over the layout type
/// produced by the engine ([`HexGateLayout`] for the hexagonal engine,
/// [`fcn_layout::cartesian::CartGateLayout`] for the Cartesian
/// baseline).
#[derive(Debug, Clone)]
pub struct PnrOutcome<L> {
    /// The resulting layout.
    pub layout: L,
    /// The area-minimal aspect ratio that was found.
    pub ratio: AspectRatio,
    /// Number of aspect ratios attempted (UNSAT + the final SAT one).
    pub ratios_tried: usize,
    /// Cumulative solver statistics over every probe.
    pub stats: SolverStats,
    /// Per-ratio verdicts and solver costs, in probing order.
    pub probes: Vec<RatioProbe>,
    /// How much solver state the incremental session transferred
    /// between probes (all-zero in from-scratch mode).
    pub reuse: ReuseStats,
}

impl<L> PnrOutcome<L> {
    /// True when every failed probe was a proven UNSAT, i.e. no ratio
    /// was abandoned on budget and the layout is truly area-minimal.
    pub fn is_provably_minimal(&self) -> bool {
        self.probes
            .iter()
            .all(|p| p.verdict != ProbeVerdict::BudgetExceeded)
    }
}

/// Historical name of [`PnrOutcome`] specialized to the hexagonal
/// engine.
#[deprecated(note = "use `PnrOutcome<HexGateLayout>`")]
pub type PnrResult = PnrOutcome<HexGateLayout>;

/// An error of a placement & routing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnrError {
    /// No aspect ratio within the area bound admits a legal layout.
    NoFeasibleRatio {
        /// The exhausted area bound.
        max_area: u64,
    },
    /// The heuristic router's drift search found no legal position —
    /// an internal invariant violation reported as an error so the
    /// flow's fallback path degrades gracefully instead of aborting.
    RouterInvariant {
        /// The layout row being routed when the invariant failed.
        row: i32,
        /// The doubled-coordinate position with no legal drift.
        pos: i32,
    },
    /// The scan's wall-clock deadline ([`ExactOptions::deadline`])
    /// expired before any ratio was proven SAT.
    DeadlineExpired,
    /// The cumulative conflict budget
    /// ([`ExactOptions::max_conflicts_total`]) ran out before any ratio
    /// was proven SAT.
    ConflictBudgetExhausted,
    /// A portfolio worker panicked. The scheduler caught the unwind,
    /// cancelled the sibling probes, and reports the stringified panic
    /// payload here instead of propagating it.
    WorkerPanic {
        /// The panic payload, rendered as a string.
        payload: String,
    },
}

impl core::fmt::Display for PnrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PnrError::NoFeasibleRatio { max_area } => {
                write!(f, "no feasible layout within {max_area} tiles")
            }
            PnrError::RouterInvariant { row, pos } => {
                write!(
                    f,
                    "heuristic router invariant violated: no legal drift \
                     around doubled position {pos} in row {row}"
                )
            }
            PnrError::DeadlineExpired => {
                write!(f, "deadline expired before any feasible ratio was found")
            }
            PnrError::ConflictBudgetExhausted => {
                write!(
                    f,
                    "cumulative conflict budget exhausted before any feasible ratio was found"
                )
            }
            PnrError::WorkerPanic { payload } => {
                write!(f, "portfolio worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for PnrError {}

/// Runs exact placement & routing, returning an area-minimal layout.
///
/// # Errors
///
/// Returns [`PnrError::NoFeasibleRatio`] when the area bound is exhausted.
///
/// # Examples
///
/// ```
/// use fcn_logic::network::Xag;
/// use fcn_logic::techmap::{map_xag, MapOptions};
/// use fcn_pnr::{exact_pnr, ExactOptions, NetGraph};
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.and(a, b);
/// xag.primary_output("f", f);
/// let net = map_xag(&xag, MapOptions::default())?;
/// let graph = NetGraph::new(net)?;
/// let result = exact_pnr(&graph, &ExactOptions::default())?;
/// assert!(result.layout.verify().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// What the scan-limit gate decides at the start of one probe.
pub(crate) enum ProbeGate {
    /// Proceed, with this effective conflict budget.
    Go(u64),
    /// A scan-wide limit is exhausted; end the scan.
    Abort(ScanAbort),
    /// Discard this probe without a verdict (injected interrupt).
    Cancelled,
}

/// Scan-wide resource limits shared by every probe of one P&R scan: the
/// wall-clock deadline plus the cumulative conflict meter, shared
/// across portfolio workers through an `Arc`. Also hosts the scan's
/// fault-injection point (`pnr.probe`).
#[derive(Clone)]
pub(crate) struct ScanLimits {
    deadline: Deadline,
    total: Option<u64>,
    spent: Arc<AtomicU64>,
}

impl ScanLimits {
    pub(crate) fn new(options: &ExactOptions) -> Self {
        ScanLimits {
            deadline: options.deadline,
            total: options.max_conflicts_total,
            spent: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The scan's wall-clock deadline, for threading into the solver.
    pub(crate) fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// The gate run at probe start: reports an abort when a scan-wide
    /// limit is already exhausted, otherwise the effective conflict
    /// budget for the probe — the per-ratio budget clamped to what
    /// remains of the cumulative one. Fault injection at `pnr.probe`
    /// can force a panic, an abort, or a cancelled probe here.
    ///
    /// With no limits configured and no fault plan armed this is a
    /// no-op returning the per-ratio budget unchanged, keeping
    /// unbudgeted scans byte-identical.
    pub(crate) fn pre_probe(&self, per_ratio: u64) -> ProbeGate {
        match fcn_budget::fault::check("pnr.probe") {
            Some(fcn_budget::fault::Fault::Exhaust) => {
                return ProbeGate::Abort(ScanAbort::ConflictBudget)
            }
            Some(fcn_budget::fault::Fault::Interrupt) => return ProbeGate::Cancelled,
            _ => {}
        }
        if self.deadline.expired() {
            return ProbeGate::Abort(ScanAbort::Deadline);
        }
        match self.total {
            None => ProbeGate::Go(per_ratio),
            Some(total) => {
                let spent = self.spent.load(Ordering::Relaxed);
                if spent >= total {
                    ProbeGate::Abort(ScanAbort::ConflictBudget)
                } else {
                    ProbeGate::Go(per_ratio.min(total - spent))
                }
            }
        }
    }

    /// Charges solver work against the cumulative meter.
    pub(crate) fn charge(&self, conflicts: u64) {
        if self.total.is_some() {
            self.spent.fetch_add(conflicts, Ordering::Relaxed);
        }
    }
}

pub fn exact_pnr(
    graph: &NetGraph,
    options: &ExactOptions,
) -> Result<PnrOutcome<HexGateLayout>, PnrError> {
    let num_nodes = graph.network.num_nodes() as u64;
    // Materialize the candidate stream up front: the filters are cheap
    // relative to a single SAT probe, and a concrete slice lets the
    // portfolio dispatch candidates to workers in area order.
    let candidates: Vec<(AspectRatio, Vec<u32>)> = AspectRatio::in_area_order(options.max_area)
        .filter(|ratio| {
            ratio.width >= graph.min_width()
                && ratio.height >= graph.min_height()
                && ratio.tile_count() >= num_nodes
        })
        .filter_map(|ratio| Some((ratio, graph.alap(ratio.height)?)))
        .collect();
    let session = SessionBounds::from_candidates(&candidates);
    let limits = ScanLimits::new(options);
    let blacklist: HashSet<(i32, i32)> = options.blacklist.iter().copied().collect();

    // With a pool installed, each worker's session is checked out by
    // problem key at context creation and parked back (via the guard's
    // drop) when the portfolio retires the worker.
    let pool = options
        .session_pool
        .as_ref()
        .map(|p| (p.clone(), session_key(graph, options)));
    let outcome = run_portfolio(
        &candidates,
        options.num_threads,
        || {
            options.incremental.then(|| match &pool {
                Some((pool, key)) => PooledSession::checkout(pool, *key),
                None => PooledSession::fresh(),
            })
        },
        |inc, _, (ratio, alap), cancel| {
            let budget = match limits.pre_probe(options.max_conflicts_per_ratio) {
                ProbeGate::Go(budget) => budget,
                ProbeGate::Abort(abort) => return ProbeOutcome::aborted(abort),
                ProbeGate::Cancelled => return ProbeOutcome::cancelled(),
            };
            let out = match inc {
                Some(inc) => solve_ratio_incremental(
                    inc.get_mut(),
                    graph,
                    *ratio,
                    alap,
                    session.as_ref().expect("probing implies candidates"),
                    budget,
                    limits.deadline(),
                    cancel,
                    &blacklist,
                ),
                None => solve_ratio_scratch(
                    graph,
                    *ratio,
                    alap,
                    budget,
                    limits.deadline(),
                    cancel,
                    &blacklist,
                ),
            };
            if let Some(probe) = &out.probe {
                limits.charge(probe.stats.conflicts);
            }
            out
        },
    );
    assemble_outcome(outcome, |idx| candidates[idx].0, options)
}

/// Fingerprint of everything that shapes an incremental session's shared
/// clause set: the netlist structure (node kinds in id order plus the
/// port-accurate edge list), the tile blacklist (order-insensitive), and
/// the area bound that fixes the candidate union the variable universe
/// spans. Two `exact_pnr` calls with equal keys may safely exchange warm
/// sessions through a [`crate::SessionPool`].
fn session_key(graph: &NetGraph, options: &ExactOptions) -> u64 {
    let mut h = Fnv64::new();
    h.u64(options.max_area);
    h.u64(graph.network.num_nodes() as u64);
    for id in graph.network.node_ids() {
        h.bytes(format!("{:?}", graph.network.node(id).kind).as_bytes());
    }
    for e in &graph.edges {
        h.u64(e.source.index() as u64)
            .u64(u64::from(e.source_port))
            .u64(e.target.index() as u64)
            .u64(u64::from(e.target_port));
    }
    let mut blacklist = options.blacklist.clone();
    blacklist.sort_unstable();
    blacklist.dedup();
    for (x, y) in blacklist {
        h.i64(i64::from(x)).i64(i64::from(y));
    }
    h.finish()
}

/// Folds a portfolio run into the engine result: cumulative solver
/// stats, reuse accounting (with top-level telemetry counters in
/// incremental mode), and the winner — or [`PnrError::NoFeasibleRatio`]
/// when no probe was SAT. Shared by the hexagonal and Cartesian
/// engines; `ratio_of` maps a candidate index back to its aspect ratio.
pub(crate) fn assemble_outcome<L>(
    outcome: crate::portfolio::PortfolioOutcome<L, RatioProbe>,
    ratio_of: impl Fn(usize) -> AspectRatio,
    options: &ExactOptions,
) -> Result<PnrOutcome<L>, PnrError> {
    if outcome.cancelled > 0 {
        fcn_telemetry::counter("probes.cancelled", outcome.cancelled as u64);
    }

    let mut cumulative = SolverStats::default();
    let mut reuse = ReuseStats::default();
    for probe in &outcome.probes {
        cumulative += probe.stats;
        if probe.retained > 0 {
            reuse.warm_probes += 1;
        }
        reuse.learned_retained += probe.retained;
        if probe.verdict == ProbeVerdict::Sat && probe.extraction_conflicts.is_some() {
            reuse.winner_presolve_conflicts = Some(probe.stats.conflicts);
            reuse.winner_scratch_conflicts = probe.extraction_conflicts;
        }
    }
    if options.incremental {
        fcn_telemetry::counter("pnr.warm_probes", reuse.warm_probes);
        fcn_telemetry::counter("pnr.learned_retained", reuse.learned_retained);
        if let Some(saved) = reuse.conflicts_saved() {
            fcn_telemetry::counter("pnr.conflicts_saved", saved);
        }
    }
    if let Some(payload) = outcome.panicked {
        // A panicked worker poisons the scan even when another probe
        // found a layout: the panic is an internal bug whose blast
        // radius is unknown, so surface it and let the caller degrade.
        fcn_telemetry::note("verdict", "worker-panic");
        return Err(PnrError::WorkerPanic { payload });
    }
    match outcome.winner {
        Some((idx, layout)) => Ok(PnrOutcome {
            layout,
            ratio: ratio_of(idx),
            ratios_tried: outcome.attempted,
            stats: cumulative,
            probes: outcome.probes,
            reuse,
        }),
        None => match outcome.aborted {
            Some(ScanAbort::Deadline) => {
                fcn_telemetry::note("verdict", "deadline-expired");
                Err(PnrError::DeadlineExpired)
            }
            Some(ScanAbort::ConflictBudget) => {
                fcn_telemetry::note("verdict", "conflict-budget-exhausted");
                Err(PnrError::ConflictBudgetExhausted)
            }
            Some(ScanAbort::Router { row, pos }) => {
                fcn_telemetry::note("verdict", "router-invariant");
                Err(PnrError::RouterInvariant { row, pos })
            }
            None => {
                fcn_telemetry::note("verdict", "no-feasible-ratio");
                Err(PnrError::NoFeasibleRatio {
                    max_area: options.max_area,
                })
            }
        },
    }
}

/// Semantic identity of a hexagonal-encoding problem variable, the
/// cache key that lets an incremental session reuse the same variable
/// wherever two aspect ratios talk about the same placement fact (the
/// coordinates are global, and PIs are pinned to row 0 in every ratio,
/// so a key means the same thing in every probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum HexKey {
    /// Node `n` occupies tile `t`.
    Place(usize, HexCoord),
    /// Edge `e` runs a wire segment through tile `t`.
    Wire(usize, HexCoord),
    /// Edge `e` leaves tile `t` towards diagonal direction `d`.
    Step(usize, HexCoord, HexDirection),
}

/// The inclusive row range a node may occupy.
fn row_range(graph: &NetGraph, alap: &[u32], height: u32, n: MappedId) -> (u32, u32) {
    match graph.network.node(n).kind {
        GateKind::Pi => (0, 0),
        GateKind::Po => (height - 1, height - 1),
        _ => (graph.asap[n.index()], alap[n.index()]),
    }
}

/// The union of every candidate rectangle of one P&R session — the
/// variable universe of an incremental solver.
///
/// An incremental session creates its problem variables (and all the
/// structural clauses over them) once, for this union; each probe then
/// imposes its own aspect ratio purely through guarded *unit* clauses
/// that switch the out-of-ratio variables off. Units propagate at the
/// assumption level, so conflict analysis at search levels only ever
/// resolves shared clauses — every learned lemma is free of the
/// activation literal and survives probe retirement (see
/// [`crate::incremental`] for why that is the retention condition).
pub(crate) struct SessionBounds {
    /// The tallest candidate height.
    pub(crate) height: u32,
    /// The widest candidate that still spans row `y`, indexed by `y`
    /// (the union of rectangles is a staircase, not a rectangle).
    pub(crate) width_at_row: Vec<i32>,
    /// ALAP schedule at the loosest scheduling depth of the session
    /// (the tallest height here; the longest diagonal for the Cartesian
    /// engine) — ALAP levels grow monotonically with that depth.
    pub(crate) alap: Vec<u32>,
}

impl SessionBounds {
    /// The union of a candidate list; `None` when it is empty.
    fn from_candidates(candidates: &[(AspectRatio, Vec<u32>)]) -> Option<Self> {
        let height = candidates.iter().map(|(r, _)| r.height).max()?;
        let alap = candidates
            .iter()
            .find(|(r, _)| r.height == height)
            .map(|(_, a)| a.clone())?;
        let mut width_at_row = vec![0i32; height as usize];
        for (r, _) in candidates {
            for slot in width_at_row.iter_mut().take(r.height as usize) {
                *slot = (*slot).max(r.width as i32);
            }
        }
        Some(SessionBounds {
            height,
            width_at_row,
            alap,
        })
    }

    pub(crate) fn width_at(&self, y: u32) -> i32 {
        self.width_at_row.get(y as usize).copied().unwrap_or(0)
    }

    pub(crate) fn contains_xy(&self, x: i32, y: i32) -> bool {
        x >= 0 && y >= 0 && (y as u32) < self.height && x < self.width_at(y as u32)
    }

    fn contains(&self, t: HexCoord) -> bool {
        self.contains_xy(t.x, t.y)
    }
}

/// The inclusive row range a node may occupy in *some* candidate of the
/// session (the union of the per-ratio [`row_range`]s, which is what the
/// shared variable universe must cover).
fn row_range_session(graph: &NetGraph, bounds: &SessionBounds, n: MappedId) -> (u32, u32) {
    match graph.network.node(n).kind {
        GateKind::Pi => (0, 0),
        // A Po sits on the last row of its probe's ratio, which can be
        // any row from its scheduling depth up to the tallest candidate.
        GateKind::Po => (graph.asap[n.index()], bounds.height - 1),
        _ => (graph.asap[n.index()], bounds.alap[n.index()]),
    }
}

/// The problem variables of one aspect-ratio encoding, keyed the same
/// way in both backends so the extraction step is mode-agnostic.
struct HexEncoding {
    place: HashMap<(usize, HexCoord), Lit>,
    wire: HashMap<(usize, HexCoord), Lit>,
    step: HashMap<(usize, HexCoord, HexDirection), Lit>,
}

/// Encodes the placement & routing problem at a fixed aspect ratio
/// through a [`ProbeEmitter`], which decides whether each constraint is
/// per-probe or persists across probes (see [`crate::incremental`] for
/// the classification rules the emitter contract imposes).
///
/// With `session: None` (the from-scratch mode) the variable universe is
/// exactly the ratio's rectangle and no guarded units are emitted — the
/// encoding is the classic per-ratio one. With a [`SessionBounds`] the
/// universe is the whole session union, every structural clause is
/// shared (hence emitted once per session thanks to the emitter's
/// deduplication), and the ratio is imposed by guarded units alone.
fn encode_ratio<E: ProbeEmitter<HexKey>>(
    em: &mut E,
    graph: &NetGraph,
    ratio: AspectRatio,
    alap: &[u32],
    session: Option<&SessionBounds>,
    blacklist: &HashSet<(i32, i32)>,
) -> HexEncoding {
    let ratio_bounds;
    let bounds = match session {
        Some(b) => b,
        None => {
            ratio_bounds = SessionBounds {
                height: ratio.height,
                width_at_row: vec![ratio.width as i32; ratio.height as usize],
                alap: alap.to_vec(),
            };
            &ratio_bounds
        }
    };
    let creation_range = |n: MappedId| match session {
        Some(b) => row_range_session(graph, b, n),
        None => row_range(graph, alap, ratio.height, n),
    };
    let w = ratio.width as i32;
    let node_ids: Vec<MappedId> = graph.network.node_ids().collect();

    // place(n, t): at least one tile of the session universe (shared —
    // every probe's models place every node); the probe's shrunken row
    // range and width arrive as guarded units on the out-of-ratio
    // variables. At most one tile ever is universal.
    let mut place: HashMap<(usize, HexCoord), Lit> = HashMap::new();
    for &n in &node_ids {
        let (clo, chi) = creation_range(n);
        let (lo, hi) = row_range(graph, alap, ratio.height, n);
        let mut vars = Vec::new();
        for y in clo..=chi {
            for x in 0..bounds.width_at(y) {
                let t = HexCoord::new(x, y as i32);
                let lit = em.var(HexKey::Place(n.index(), t));
                place.insert((n.index(), t), lit);
                vars.push(lit);
                if x >= w || y < lo || y > hi {
                    em.guarded(vec![lit.negated()]);
                }
                // Defect avoidance: a compromised tile is off in every
                // probe of the session — a shared fact, learned once.
                if blacklist.contains(&(x, y as i32)) {
                    em.shared(vec![lit.negated()]);
                }
            }
        }
        if vars.is_empty() {
            em.guarded_at_least_one(&vars);
        } else {
            em.shared(vars.clone());
        }
        em.shared_at_most_one(&vars);
    }

    // wire(e, t) — possible rows strictly between the source's earliest and
    // the target's latest placement rows.
    let mut wire: HashMap<(usize, HexCoord), Lit> = HashMap::new();
    for e in &graph.edges {
        let (src_clo, _) = creation_range(e.source);
        let (_, dst_chi) = creation_range(e.target);
        let (src_lo, _) = row_range(graph, alap, ratio.height, e.source);
        let (_, dst_hi) = row_range(graph, alap, ratio.height, e.target);
        for y in (src_clo + 1)..dst_chi {
            for x in 0..bounds.width_at(y) {
                let t = HexCoord::new(x, y as i32);
                let lit = em.var(HexKey::Wire(e.id, t));
                wire.insert((e.id, t), lit);
                if x >= w || y <= src_lo || y >= dst_hi {
                    em.guarded(vec![lit.negated()]);
                }
                if blacklist.contains(&(x, y as i32)) {
                    em.shared(vec![lit.negated()]);
                }
            }
        }
    }

    // step(e, t, d): edge e leaves tile t towards its southern neighbor in
    // direction d. Exists only where both endpoints can carry the edge.
    // Out-of-ratio steps need no units of their own: the shared
    // step → presence clauses propagate them off the moment the probe's
    // place/wire units land.
    let mut step: HashMap<(usize, HexCoord, HexDirection), Lit> = HashMap::new();
    let in_bounds = |t: HexCoord| bounds.contains(t);
    for e in &graph.edges {
        let presence_src = |wire: &HashMap<(usize, HexCoord), Lit>,
                            place: &HashMap<(usize, HexCoord), Lit>,
                            t: HexCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.source.index(), t))
        };
        let presence_dst = |wire: &HashMap<(usize, HexCoord), Lit>,
                            place: &HashMap<(usize, HexCoord), Lit>,
                            t: HexCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.target.index(), t))
        };
        for y in 0..bounds.height as i32 {
            for x in 0..bounds.width_at(y as u32) {
                let t = HexCoord::new(x, y);
                if !presence_src(&wire, &place, t) {
                    continue;
                }
                for d in [HexDirection::SouthWest, HexDirection::SouthEast] {
                    let s = t.neighbor(d);
                    if in_bounds(s) && presence_dst(&wire, &place, s) {
                        step.insert((e.id, t, d), em.var(HexKey::Step(e.id, t, d)));
                    }
                }
            }
        }
    }

    // Tile capacity: at most one gate; gates exclude wires. Universal
    // facts, shared across probes.
    for y in 0..bounds.height as i32 {
        for x in 0..bounds.width_at(y as u32) {
            let t = HexCoord::new(x, y);
            let gates: Vec<Lit> = node_ids
                .iter()
                .filter_map(|n| place.get(&(n.index(), t)).copied())
                .collect();
            em.shared_at_most_one(&gates);
            if !gates.is_empty() {
                let occ = em.shared_or_all(&gates);
                for e in &graph.edges {
                    if let Some(&wv) = wire.get(&(e.id, t)) {
                        em.shared(vec![wv.negated(), occ.negated()]);
                    }
                }
            }
        }
    }

    // Flow constraints per edge, over the session universe. The
    // "presence ↔ steps" implications are universally valid there: every
    // probe's models route each present edge through *some* step of the
    // union, and the probe's units narrow "some" down to its own ratio.
    for e in &graph.edges {
        for y in 0..bounds.height as i32 {
            for x in 0..bounds.width_at(y as u32) {
                let t = HexCoord::new(x, y);
                let src_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.source.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !src_lits.is_empty() {
                    let outs: Vec<Lit> = [HexDirection::SouthWest, HexDirection::SouthEast]
                        .into_iter()
                        .filter_map(|d| step.get(&(e.id, t, d)).copied())
                        .collect();
                    // presence → exactly one outgoing step.
                    em.shared_at_most_one(&outs);
                    for &p in &src_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(outs.iter().copied());
                        em.shared(clause);
                    }
                    // step → presence at source.
                    for &s in &outs {
                        let mut clause = vec![s.negated()];
                        clause.extend(src_lits.iter().copied());
                        em.shared(clause);
                    }
                }

                let dst_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.target.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !dst_lits.is_empty() {
                    let ins: Vec<Lit> = t
                        .northern_neighbors()
                        .into_iter()
                        .filter_map(|n| {
                            let d = n.direction_to(t)?;
                            step.get(&(e.id, n, d)).copied()
                        })
                        .collect();
                    em.shared_at_most_one(&ins);
                    for &p in &dst_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(ins.iter().copied());
                        em.shared(clause);
                    }
                    // step → presence at destination.
                    for &s in &ins {
                        let mut clause = vec![s.negated()];
                        clause.extend(dst_lits.iter().copied());
                        em.shared(clause);
                    }
                }
            }
        }
    }

    // Port exclusivity: at most one edge leaves a tile through each port.
    for y in 0..bounds.height as i32 {
        for x in 0..bounds.width_at(y as u32) {
            let t = HexCoord::new(x, y);
            for d in [HexDirection::SouthWest, HexDirection::SouthEast] {
                let users: Vec<Lit> = graph
                    .edges
                    .iter()
                    .filter_map(|e| step.get(&(e.id, t, d)).copied())
                    .collect();
                em.shared_at_most_one(&users);
            }
        }
    }

    HexEncoding { place, wire, step }
}

/// Reads a satisfying model back into a hexagonal gate layout.
fn extract_layout(
    model: &Model,
    enc: &HexEncoding,
    graph: &NetGraph,
    ratio: AspectRatio,
) -> HexGateLayout {
    let (w, h) = (ratio.width as i32, ratio.height as i32);
    let mut layout = HexGateLayout::new(ratio, ClockingScheme::Row);
    let mut node_tile: HashMap<usize, HexCoord> = HashMap::new();
    for (&(n, t), &lit) in &enc.place {
        if model.lit_value(lit) {
            node_tile.insert(n, t);
        }
    }
    let step_true = |e: usize, t: HexCoord, d: HexDirection| {
        enc.step
            .get(&(e, t, d))
            .is_some_and(|&l| model.lit_value(l))
    };
    // Incoming direction of edge e at tile t (the port facing the tile the
    // edge arrives from).
    let incoming_dir = |e: usize, t: HexCoord| -> Option<HexDirection> {
        t.northern_neighbors().into_iter().find_map(|n| {
            let d = n.direction_to(t)?;
            step_true(e, n, d).then(|| t.direction_to(n).expect("adjacent"))
        })
    };
    let outgoing_dir = |e: usize, t: HexCoord| -> Option<HexDirection> {
        [HexDirection::SouthWest, HexDirection::SouthEast]
            .into_iter()
            .find(|&d| step_true(e, t, d))
    };

    // Gate tiles.
    for n in graph.network.node_ids() {
        let t = node_tile[&n.index()];
        let node = graph.network.node(n);
        let inputs: Vec<HexDirection> = graph.in_edges[n.index()]
            .iter()
            .map(|&e| incoming_dir(e, t).expect("routed input"))
            .collect();
        let outputs: Vec<HexDirection> = graph.out_edges[n.index()]
            .iter()
            .map(|&e| outgoing_dir(e, t).expect("routed output"))
            .collect();
        layout.place(
            t,
            TileContents::gate(node.kind, inputs, outputs, node.name.clone()),
        );
    }

    // Wire tiles (grouping up to two segments per tile), visited in
    // deterministic edge-then-row-major order so the per-tile segment
    // lists are reproducible run to run.
    let mut segments: HashMap<HexCoord, Vec<(HexDirection, HexDirection)>> = HashMap::new();
    for e in &graph.edges {
        for y in 0..h {
            for x in 0..w {
                let t = HexCoord::new(x, y);
                let Some(&lit) = enc.wire.get(&(e.id, t)) else {
                    continue;
                };
                if model.lit_value(lit) {
                    let seg = (
                        incoming_dir(e.id, t).expect("wire has a predecessor"),
                        outgoing_dir(e.id, t).expect("wire has a successor"),
                    );
                    segments.entry(t).or_default().push(seg);
                }
            }
        }
    }
    for (t, segs) in segments {
        layout.place(t, TileContents::Wire { segments: segs });
    }
    layout
}

/// Attempts to place & route at a fixed aspect ratio on a fresh solver,
/// reporting the probe's verdict and solver cost alongside any layout
/// found. The cancel flag is forwarded to the solver's cooperative
/// interrupt; a cancelled probe yields no probe record. This is both
/// the from-scratch probe and the authoritative extraction path for the
/// incremental mode's winning ratio, which is what keeps the two modes'
/// layouts byte-identical.
#[allow(clippy::too_many_arguments)]
fn solve_ratio_scratch(
    graph: &NetGraph,
    ratio: AspectRatio,
    alap: &[u32],
    max_conflicts: u64,
    deadline: Deadline,
    cancel: &CancelFlag,
    blacklist: &HashSet<(i32, i32)>,
) -> ProbeOutcome<HexGateLayout, RatioProbe> {
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    let mut em = ScratchEmitter::new();
    let enc = encode_ratio(&mut em, graph, ratio, alap, None, blacklist);
    let mut cnf = em.cnf;

    fcn_telemetry::counter("cnf.vars", cnf.solver().num_vars() as u64);
    fcn_telemetry::counter("cnf.clauses", cnf.solver().num_clauses() as u64);
    cnf.solver_mut().set_interrupt(cancel.clone());
    let outcome = cnf.solve_with(
        &SolveParams::new()
            .budget(max_conflicts)
            .interruptible()
            .deadline(deadline),
    );
    let stats = cnf.solver().stats();
    if let BoundedResult::Interrupted = outcome {
        fcn_telemetry::note("verdict", "cancelled");
        return ProbeOutcome::cancelled();
    }
    if let BoundedResult::DeadlineExpired = outcome {
        fcn_telemetry::note("verdict", "deadline-expired");
        return ProbeOutcome::aborted(ScanAbort::Deadline);
    }
    let verdict = match &outcome {
        BoundedResult::Sat(_) => ProbeVerdict::Sat,
        BoundedResult::Unsat => ProbeVerdict::Unsat,
        _ => ProbeVerdict::BudgetExceeded,
    };
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    fcn_telemetry::histogram("pnr.probe.conflicts", stats.conflicts);
    fcn_telemetry::note("verdict", verdict.to_string());
    let probe = RatioProbe {
        ratio,
        verdict,
        stats,
        retained: 0,
        extraction_conflicts: None,
    };
    let model = match outcome {
        BoundedResult::Sat(m) => m,
        _ => return ProbeOutcome::concluded(None, Some(probe)),
    };
    ProbeOutcome::concluded(
        Some(extract_layout(&model, &enc, graph, ratio)),
        Some(probe),
    )
}

/// Probes a fixed aspect ratio on the worker's long-lived incremental
/// session: per-ratio constraints are guarded behind a fresh activation
/// literal, the solve runs under that assumption, and the probe is
/// retired afterwards so only universally-valid state survives.
///
/// A SAT verdict is then re-established on a fresh solver by
/// [`solve_ratio_scratch`], which both extracts a layout byte-identical
/// to from-scratch mode and measures the cold cost of the instance the
/// warm solver just solved (the honest "conflicts saved" baseline). The
/// fresh solver's verdict is authoritative: if it exhausts the conflict
/// budget the probe reports `BudgetExceeded`, exactly as from-scratch
/// mode would.
#[allow(clippy::too_many_arguments)]
fn solve_ratio_incremental(
    inc: &mut IncrementalCnf<HexKey>,
    graph: &NetGraph,
    ratio: AspectRatio,
    alap: &[u32],
    session: &SessionBounds,
    max_conflicts: u64,
    deadline: Deadline,
    cancel: &CancelFlag,
    blacklist: &HashSet<(i32, i32)>,
) -> ProbeOutcome<HexGateLayout, RatioProbe> {
    // One span covers the whole probe; the winning ratio's fresh
    // re-solve nests inside it as a child `ratio:` span.
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    fcn_telemetry::note("mode", "incremental");
    let retained = inc.begin_probe();
    encode_ratio(inc, graph, ratio, alap, Some(session), blacklist);
    fcn_telemetry::counter("sat.retained", retained);
    let outcome = inc.solve(max_conflicts, deadline, cancel);
    let stats = inc.stats();
    inc.end_probe();
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    fcn_telemetry::histogram("pnr.probe.conflicts", stats.conflicts);
    let verdict = match &outcome {
        BoundedResult::Sat(_) => "sat",
        BoundedResult::Unsat => "unsat",
        BoundedResult::BudgetExceeded => "budget-exceeded",
        BoundedResult::Interrupted => "cancelled",
        BoundedResult::DeadlineExpired => "deadline-expired",
    };
    fcn_telemetry::note("verdict", verdict);

    match outcome {
        BoundedResult::Interrupted => ProbeOutcome::cancelled(),
        BoundedResult::DeadlineExpired => ProbeOutcome::aborted(ScanAbort::Deadline),
        BoundedResult::Unsat => ProbeOutcome::concluded(
            None,
            Some(RatioProbe {
                ratio,
                verdict: ProbeVerdict::Unsat,
                stats,
                retained,
                extraction_conflicts: None,
            }),
        ),
        BoundedResult::BudgetExceeded => ProbeOutcome::concluded(
            None,
            Some(RatioProbe {
                ratio,
                verdict: ProbeVerdict::BudgetExceeded,
                stats,
                retained,
                extraction_conflicts: None,
            }),
        ),
        BoundedResult::Sat(_) => {
            let scratch = solve_ratio_scratch(
                graph,
                ratio,
                alap,
                max_conflicts,
                deadline,
                cancel,
                blacklist,
            );
            if scratch.cancelled || scratch.abort.is_some() {
                return scratch;
            }
            let mut probe = scratch.probe.expect("scratch probes always record");
            probe.retained = retained;
            match probe.verdict {
                ProbeVerdict::Sat => {
                    fcn_telemetry::counter("sat.extraction_conflicts", probe.stats.conflicts);
                    probe.extraction_conflicts = Some(probe.stats.conflicts);
                    // The probe's decision cost is the warm solve; the
                    // fresh re-solve is accounted as extraction.
                    probe.stats = stats;
                    ProbeOutcome::concluded(scratch.layout, Some(probe))
                }
                _ => {
                    // Budget divergence: the warm solver proved SAT
                    // within budget but the fresh one ran out. Charge
                    // both costs and keep the fresh verdict so the mode
                    // behaves observably like from-scratch probing.
                    probe.stats += stats;
                    ProbeOutcome::concluded(None, Some(probe))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn pnr(xag: &Xag) -> PnrOutcome<HexGateLayout> {
        let net = map_xag(xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        exact_pnr(&graph, &ExactOptions::default()).expect("feasible")
    }

    #[test]
    fn incremental_and_scratch_agree_on_hex_layouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.primary_input("s");
        let m = xag.mux(s, a, b);
        xag.primary_output("m", m);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let base = ExactOptions {
            num_threads: 1,
            ..Default::default()
        };
        let warm = exact_pnr(
            &graph,
            &ExactOptions {
                incremental: true,
                ..base.clone()
            },
        )
        .expect("feasible");
        let cold = exact_pnr(
            &graph,
            &ExactOptions {
                incremental: false,
                ..base
            },
        )
        .expect("feasible");
        assert_eq!(warm.ratio, cold.ratio);
        assert_eq!(warm.ratios_tried, cold.ratios_tried);
        assert_eq!(warm.layout.render_ascii(), cold.layout.render_ascii());
        // Identical probe verdicts in identical order.
        let warm_verdicts: Vec<_> = warm.probes.iter().map(|p| (p.ratio, p.verdict)).collect();
        let cold_verdicts: Vec<_> = cold.probes.iter().map(|p| (p.ratio, p.verdict)).collect();
        assert_eq!(warm_verdicts, cold_verdicts);
        // From-scratch mode transfers nothing; incremental mode reports
        // the winner's cold-vs-warm cost pair.
        assert_eq!(cold.reuse, ReuseStats::default());
        assert!(warm.reuse.winner_presolve_conflicts.is_some());
        assert!(warm.reuse.winner_scratch_conflicts.is_some());
        // Multi-probe scan: later probes must see retained state once
        // the session has learned anything.
        if warm.probes.len() > 1 && warm.stats.conflicts > 0 {
            assert!(
                warm.probes.iter().any(|p| p.retained > 0)
                    || warm.stats.conflicts == warm.probes[0].stats.conflicts,
                "no probe saw retained clauses despite conflicts across probes"
            );
        }
    }

    #[test]
    fn routes_a_single_and_gate() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let v = result.layout.verify();
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(result.ratio.height, 3); // PI row, gate row, PO row
        assert_eq!(result.ratio.width, 2);
        assert_eq!(result.layout.num_logic_tiles(), 1);
    }

    #[test]
    fn routes_an_inverter_chain() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        xag.primary_output("f", !a);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        // PI, INV, PO stacked vertically: 1 × 3.
        assert_eq!(result.ratio.tile_count(), 3);
    }

    #[test]
    fn routes_xor2_benchmark() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.xor(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        assert_eq!(result.ratio, AspectRatio::new(2, 3));
    }

    #[test]
    fn routes_shared_fanin_with_fanouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: false,
                legalize_fanout: true,
            },
        )
        .expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let result = exact_pnr(&graph, &ExactOptions::default()).expect("feasible");
        let v = result.layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", result.layout.render_ascii());
    }

    #[test]
    fn half_adder_single_tile_layout_is_small() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        // PI row + HA row + PO row at width 2 = 6 tiles.
        assert_eq!(result.ratio.tile_count(), 6);
    }

    #[test]
    fn probes_and_cumulative_stats_are_surfaced() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.xor(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        assert_eq!(result.probes.len(), result.ratios_tried);
        let last = result.probes.last().expect("at least the SAT probe");
        assert_eq!(last.verdict, ProbeVerdict::Sat);
        assert_eq!(last.ratio, result.ratio);
        for earlier in &result.probes[..result.probes.len() - 1] {
            assert_eq!(earlier.verdict, ProbeVerdict::Unsat);
        }
        assert!(result.is_provably_minimal());
        let summed: u64 = result.probes.iter().map(|p| p.stats.conflicts).sum();
        assert_eq!(result.stats.conflicts, summed);
        let summed: u64 = result.probes.iter().map(|p| p.stats.decisions).sum();
        assert_eq!(result.stats.decisions, summed);
    }

    #[test]
    fn infeasible_area_bound_errors() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let err = exact_pnr(
            &graph,
            &ExactOptions {
                max_area: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, PnrError::NoFeasibleRatio { max_area: 3 });
    }

    #[test]
    fn first_sat_ratio_is_area_minimal() {
        // mux21: s ? b : a — needs crossings/fanouts; check minimality by
        // asserting all strictly smaller ratios fail.
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.primary_input("s");
        let m = xag.mux(s, a, b);
        xag.primary_output("m", m);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let result = exact_pnr(&graph, &ExactOptions::default()).expect("feasible");
        assert!(result.layout.verify().is_empty());
        assert!(result.ratios_tried >= 1);
        let area = result.ratio.tile_count();
        // All ratios tried before the winner had smaller-or-equal area by
        // construction of the search order.
        assert!(area <= ExactOptions::default().max_area);
    }
}
