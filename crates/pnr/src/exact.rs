//! Exact (area-minimal) placement & routing via SAT.
//!
//! The encoding follows the *exact* physical-design idea of
//! [Walter et al., DATE 2018]: enumerate layout aspect ratios in order of
//! increasing area and, for each ratio, decide with a solver whether the
//! mapped netlist fits. The first satisfiable ratio is area-minimal.
//!
//! For a row-clocked hexagonal floor plan, information moves exactly one
//! row south per clock phase, so the problem becomes: assign every netlist
//! node to a tile (PIs in the top row, POs in the bottom row) and every
//! edge to a chain of wire tiles — one per intermediate row — such that
//! consecutive chain elements are diagonal neighbors, no two edges share
//! an output port, and a tile hosts either one gate or at most two wire
//! segments (a crossing or a parallel double wire, both of which exist as
//! Bestagon tiles). Because every PI→PO path then spans exactly `height`
//! rows, all signal paths are balanced and the layout's throughput is the
//! paper's reported 1/1.
//!
//! Variables per ratio: `place(n, t)`, `wire(e, t)` and `step(e, t, d)`
//! (edge `e` leaves tile `t` towards diagonal direction `d`).

use crate::netgraph::NetGraph;
use crate::portfolio::{run_portfolio, CancelFlag, ProbeOutcome};
use fcn_coords::{AspectRatio, HexCoord, HexDirection};
use fcn_layout::clocking::ClockingScheme;
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::tile::TileContents;
use fcn_logic::techmap::MappedId;
use fcn_logic::GateKind;
use msat::{BoundedResult, CnfBuilder, Lit, SolverStats};
use std::collections::HashMap;

/// Options for the exact engine.
#[derive(Debug, Clone, Copy)]
pub struct ExactOptions {
    /// Upper bound on the explored layout area, in tiles.
    pub max_area: u64,
    /// Conflict budget per aspect ratio. A ratio whose SAT instance
    /// exceeds the budget is treated as infeasible and skipped, trading
    /// guaranteed minimality for bounded runtime on large netlists
    /// (`u64::MAX` restores full exactness).
    pub max_conflicts_per_ratio: u64,
    /// Number of worker threads racing aspect-ratio probes (see
    /// [`crate::portfolio`]). `1` probes sequentially on the calling
    /// thread; the result is identical either way. Defaults to
    /// [`default_num_threads`].
    pub num_threads: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_area: 120,
            max_conflicts_per_ratio: 10_000,
            num_threads: default_num_threads(),
        }
    }
}

/// The default worker-thread count for the exact engines: the
/// `PNR_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("PNR_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How one aspect-ratio SAT probe concluded.
///
/// Distinguishing [`ProbeVerdict::BudgetExceeded`] from genuine
/// [`ProbeVerdict::Unsat`] matters for callers: a skipped ratio means
/// the final result is merely *bounded-exact* (a smaller layout might
/// exist below the abandoned ratio), while a chain of UNSAT verdicts
/// preserves the area-minimality guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// The netlist fits at this ratio.
    Sat,
    /// Proven infeasible at this ratio.
    Unsat,
    /// The conflict budget ran out before a proof either way.
    BudgetExceeded,
}

impl core::fmt::Display for ProbeVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ProbeVerdict::Sat => "sat",
            ProbeVerdict::Unsat => "unsat",
            ProbeVerdict::BudgetExceeded => "budget-exceeded",
        })
    }
}

/// Outcome and solver cost of one aspect-ratio probe.
#[derive(Debug, Clone, Copy)]
pub struct RatioProbe {
    /// The probed aspect ratio.
    pub ratio: AspectRatio,
    /// How the probe concluded.
    pub verdict: ProbeVerdict,
    /// Solver work spent on this probe alone.
    pub stats: SolverStats,
}

/// A successful placement & routing.
#[derive(Debug, Clone)]
pub struct PnrResult {
    /// The resulting row-clocked hexagonal layout.
    pub layout: HexGateLayout,
    /// The area-minimal aspect ratio that was found.
    pub ratio: AspectRatio,
    /// Number of aspect ratios attempted (UNSAT + the final SAT one).
    pub ratios_tried: usize,
    /// Cumulative solver statistics over every probe.
    pub stats: SolverStats,
    /// Per-ratio verdicts and solver costs, in probing order.
    pub probes: Vec<RatioProbe>,
}

impl PnrResult {
    /// True when every failed probe was a proven UNSAT, i.e. no ratio
    /// was abandoned on budget and the layout is truly area-minimal.
    pub fn is_provably_minimal(&self) -> bool {
        self.probes
            .iter()
            .all(|p| p.verdict != ProbeVerdict::BudgetExceeded)
    }
}

/// An error of a placement & routing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnrError {
    /// No aspect ratio within the area bound admits a legal layout.
    NoFeasibleRatio {
        /// The exhausted area bound.
        max_area: u64,
    },
    /// The heuristic router's drift search found no legal position —
    /// an internal invariant violation reported as an error so the
    /// flow's fallback path degrades gracefully instead of aborting.
    RouterInvariant {
        /// The layout row being routed when the invariant failed.
        row: i32,
        /// The doubled-coordinate position with no legal drift.
        pos: i32,
    },
}

impl core::fmt::Display for PnrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PnrError::NoFeasibleRatio { max_area } => {
                write!(f, "no feasible layout within {max_area} tiles")
            }
            PnrError::RouterInvariant { row, pos } => {
                write!(
                    f,
                    "heuristic router invariant violated: no legal drift \
                     around doubled position {pos} in row {row}"
                )
            }
        }
    }
}

impl std::error::Error for PnrError {}

/// Runs exact placement & routing, returning an area-minimal layout.
///
/// # Errors
///
/// Returns [`PnrError::NoFeasibleRatio`] when the area bound is exhausted.
///
/// # Examples
///
/// ```
/// use fcn_logic::network::Xag;
/// use fcn_logic::techmap::{map_xag, MapOptions};
/// use fcn_pnr::{exact_pnr, ExactOptions, NetGraph};
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.and(a, b);
/// xag.primary_output("f", f);
/// let net = map_xag(&xag, MapOptions::default())?;
/// let graph = NetGraph::new(net)?;
/// let result = exact_pnr(&graph, &ExactOptions::default())?;
/// assert!(result.layout.verify().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact_pnr(graph: &NetGraph, options: &ExactOptions) -> Result<PnrResult, PnrError> {
    let num_nodes = graph.network.num_nodes() as u64;
    // Materialize the candidate stream up front: the filters are cheap
    // relative to a single SAT probe, and a concrete slice lets the
    // portfolio dispatch candidates to workers in area order.
    let candidates: Vec<(AspectRatio, Vec<u32>)> = AspectRatio::in_area_order(options.max_area)
        .filter(|ratio| {
            ratio.width >= graph.min_width()
                && ratio.height >= graph.min_height()
                && ratio.tile_count() >= num_nodes
        })
        .filter_map(|ratio| Some((ratio, graph.alap(ratio.height)?)))
        .collect();

    let outcome = run_portfolio(
        &candidates,
        options.num_threads,
        |_, (ratio, alap), cancel| {
            solve_ratio(graph, *ratio, alap, options.max_conflicts_per_ratio, cancel)
        },
    );
    if outcome.cancelled > 0 {
        fcn_telemetry::counter("probes.cancelled", outcome.cancelled as u64);
    }

    let mut cumulative = SolverStats::default();
    for probe in &outcome.probes {
        cumulative += probe.stats;
    }
    match outcome.winner {
        Some((idx, layout)) => Ok(PnrResult {
            layout,
            ratio: candidates[idx].0,
            ratios_tried: outcome.attempted,
            stats: cumulative,
            probes: outcome.probes,
        }),
        None => {
            fcn_telemetry::note("verdict", "no-feasible-ratio");
            Err(PnrError::NoFeasibleRatio {
                max_area: options.max_area,
            })
        }
    }
}

/// The inclusive row range a node may occupy.
fn row_range(graph: &NetGraph, alap: &[u32], height: u32, n: MappedId) -> (u32, u32) {
    match graph.network.node(n).kind {
        GateKind::Pi => (0, 0),
        GateKind::Po => (height - 1, height - 1),
        _ => (graph.asap[n.index()], alap[n.index()]),
    }
}

/// Attempts to place & route at a fixed aspect ratio, reporting the
/// probe's verdict and solver cost alongside any layout found. The
/// cancel flag is forwarded to the solver's cooperative interrupt; a
/// cancelled probe yields no probe record.
fn solve_ratio(
    graph: &NetGraph,
    ratio: AspectRatio,
    alap: &[u32],
    max_conflicts: u64,
    cancel: &CancelFlag,
) -> ProbeOutcome<HexGateLayout, RatioProbe> {
    let _span = fcn_telemetry::span(format!("ratio:{}", ratio.label()));
    let (w, h) = (ratio.width as i32, ratio.height as i32);
    let mut cnf = CnfBuilder::new();

    let node_ids: Vec<MappedId> = graph.network.node_ids().collect();

    // place(n, t)
    let mut place: HashMap<(usize, HexCoord), Lit> = HashMap::new();
    for &n in &node_ids {
        let (lo, hi) = row_range(graph, alap, ratio.height, n);
        let mut vars = Vec::new();
        for y in lo..=hi {
            for x in 0..w {
                let t = HexCoord::new(x, y as i32);
                let lit = cnf.new_lit();
                place.insert((n.index(), t), lit);
                vars.push(lit);
            }
        }
        cnf.exactly_one(&vars);
    }

    // wire(e, t) — possible rows strictly between the source's earliest and
    // the target's latest placement rows.
    let mut wire: HashMap<(usize, HexCoord), Lit> = HashMap::new();
    for e in &graph.edges {
        let (src_lo, _) = row_range(graph, alap, ratio.height, e.source);
        let (_, dst_hi) = row_range(graph, alap, ratio.height, e.target);
        for y in (src_lo + 1)..dst_hi {
            for x in 0..w {
                let t = HexCoord::new(x, y as i32);
                wire.insert((e.id, t), cnf.new_lit());
            }
        }
    }

    // step(e, t, d): edge e leaves tile t towards its southern neighbor in
    // direction d. Exists only where both endpoints can carry the edge.
    let mut step: HashMap<(usize, HexCoord, HexDirection), Lit> = HashMap::new();
    let in_bounds = |t: HexCoord| t.x >= 0 && t.x < w && t.y >= 0 && t.y < h;
    for e in &graph.edges {
        let presence_src = |t: HexCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.source.index(), t))
        };
        let presence_dst = |t: HexCoord| {
            wire.contains_key(&(e.id, t)) || place.contains_key(&(e.target.index(), t))
        };
        for y in 0..h {
            for x in 0..w {
                let t = HexCoord::new(x, y);
                if !presence_src(t) {
                    continue;
                }
                for d in [HexDirection::SouthWest, HexDirection::SouthEast] {
                    let s = t.neighbor(d);
                    if in_bounds(s) && presence_dst(s) {
                        step.insert((e.id, t, d), cnf.new_lit());
                    }
                }
            }
        }
    }

    // Tile capacity: at most one gate; gates exclude wires.
    for y in 0..h {
        for x in 0..w {
            let t = HexCoord::new(x, y);
            let gates: Vec<Lit> = node_ids
                .iter()
                .filter_map(|n| place.get(&(n.index(), t)).copied())
                .collect();
            cnf.at_most_one(&gates);
            if !gates.is_empty() {
                let occ = cnf.or_all(gates.iter().copied());
                for e in &graph.edges {
                    if let Some(&wv) = wire.get(&(e.id, t)) {
                        cnf.implies(wv, occ.negated());
                    }
                }
            }
        }
    }

    // Flow constraints per edge.
    for e in &graph.edges {
        for y in 0..h {
            for x in 0..w {
                let t = HexCoord::new(x, y);
                let src_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.source.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !src_lits.is_empty() {
                    let outs: Vec<Lit> = [HexDirection::SouthWest, HexDirection::SouthEast]
                        .into_iter()
                        .filter_map(|d| step.get(&(e.id, t, d)).copied())
                        .collect();
                    // presence → exactly one outgoing step.
                    cnf.at_most_one(&outs);
                    for &p in &src_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(outs.iter().copied());
                        cnf.add_clause(clause);
                    }
                    // step → presence at source.
                    for &s in &outs {
                        let mut clause = vec![s.negated()];
                        clause.extend(src_lits.iter().copied());
                        cnf.add_clause(clause);
                    }
                }

                let dst_lits: Vec<Lit> = [
                    wire.get(&(e.id, t)).copied(),
                    place.get(&(e.target.index(), t)).copied(),
                ]
                .into_iter()
                .flatten()
                .collect();
                if !dst_lits.is_empty() {
                    let ins: Vec<Lit> = t
                        .northern_neighbors()
                        .into_iter()
                        .filter_map(|n| {
                            let d = n.direction_to(t)?;
                            step.get(&(e.id, n, d)).copied()
                        })
                        .collect();
                    cnf.at_most_one(&ins);
                    for &p in &dst_lits {
                        let mut clause = vec![p.negated()];
                        clause.extend(ins.iter().copied());
                        cnf.add_clause(clause);
                    }
                    // step → presence at destination.
                    for &s in &ins {
                        let mut clause = vec![s.negated()];
                        clause.extend(dst_lits.iter().copied());
                        cnf.add_clause(clause);
                    }
                }
            }
        }
    }

    // Port exclusivity: at most one edge leaves a tile through each port.
    for y in 0..h {
        for x in 0..w {
            let t = HexCoord::new(x, y);
            for d in [HexDirection::SouthWest, HexDirection::SouthEast] {
                let users: Vec<Lit> = graph
                    .edges
                    .iter()
                    .filter_map(|e| step.get(&(e.id, t, d)).copied())
                    .collect();
                cnf.at_most_one(&users);
            }
        }
    }

    fcn_telemetry::counter("cnf.vars", cnf.solver().num_vars() as u64);
    fcn_telemetry::counter("cnf.clauses", cnf.solver().num_clauses() as u64);
    cnf.solver_mut().set_interrupt(cancel.clone());
    let outcome = cnf
        .solver_mut()
        .solve_bounded_with_assumptions(max_conflicts, &[]);
    let stats = cnf.solver().stats();
    if let BoundedResult::Interrupted = outcome {
        fcn_telemetry::note("verdict", "cancelled");
        return ProbeOutcome {
            layout: None,
            probe: None,
            cancelled: true,
        };
    }
    let verdict = match &outcome {
        BoundedResult::Sat(_) => ProbeVerdict::Sat,
        BoundedResult::Unsat => ProbeVerdict::Unsat,
        BoundedResult::BudgetExceeded | BoundedResult::Interrupted => ProbeVerdict::BudgetExceeded,
    };
    fcn_telemetry::counter("sat.conflicts", stats.conflicts);
    fcn_telemetry::counter("sat.decisions", stats.decisions);
    fcn_telemetry::counter("sat.propagations", stats.propagations);
    fcn_telemetry::counter("sat.restarts", stats.restarts);
    fcn_telemetry::note("verdict", verdict.to_string());
    let probe = RatioProbe {
        ratio,
        verdict,
        stats,
    };
    let model = match outcome {
        BoundedResult::Sat(m) => m,
        _ => {
            return ProbeOutcome {
                layout: None,
                probe: Some(probe),
                cancelled: false,
            }
        }
    };

    // Extract the layout.
    let mut layout = HexGateLayout::new(ratio, ClockingScheme::Row);
    let mut node_tile: HashMap<usize, HexCoord> = HashMap::new();
    for (&(n, t), &lit) in &place {
        if model.lit_value(lit) {
            node_tile.insert(n, t);
        }
    }
    let step_true = |e: usize, t: HexCoord, d: HexDirection| {
        step.get(&(e, t, d)).is_some_and(|&l| model.lit_value(l))
    };
    // Incoming direction of edge e at tile t (the port facing the tile the
    // edge arrives from).
    let incoming_dir = |e: usize, t: HexCoord| -> Option<HexDirection> {
        t.northern_neighbors().into_iter().find_map(|n| {
            let d = n.direction_to(t)?;
            step_true(e, n, d).then(|| t.direction_to(n).expect("adjacent"))
        })
    };
    let outgoing_dir = |e: usize, t: HexCoord| -> Option<HexDirection> {
        [HexDirection::SouthWest, HexDirection::SouthEast]
            .into_iter()
            .find(|&d| step_true(e, t, d))
    };

    // Gate tiles.
    for &n in &node_ids {
        let t = node_tile[&n.index()];
        let node = graph.network.node(n);
        let inputs: Vec<HexDirection> = graph.in_edges[n.index()]
            .iter()
            .map(|&e| incoming_dir(e, t).expect("routed input"))
            .collect();
        let outputs: Vec<HexDirection> = graph.out_edges[n.index()]
            .iter()
            .map(|&e| outgoing_dir(e, t).expect("routed output"))
            .collect();
        layout.place(
            t,
            TileContents::gate(node.kind, inputs, outputs, node.name.clone()),
        );
    }

    // Wire tiles (grouping up to two segments per tile).
    let mut segments: HashMap<HexCoord, Vec<(HexDirection, HexDirection)>> = HashMap::new();
    for (&(e, t), &lit) in &wire {
        if model.lit_value(lit) {
            let seg = (
                incoming_dir(e, t).expect("wire has a predecessor"),
                outgoing_dir(e, t).expect("wire has a successor"),
            );
            segments.entry(t).or_default().push(seg);
        }
    }
    for (t, segs) in segments {
        layout.place(t, TileContents::Wire { segments: segs });
    }

    ProbeOutcome {
        layout: Some(layout),
        probe: Some(probe),
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_logic::network::Xag;
    use fcn_logic::techmap::{map_xag, MapOptions};

    fn pnr(xag: &Xag) -> PnrResult {
        let net = map_xag(xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        exact_pnr(&graph, &ExactOptions::default()).expect("feasible")
    }

    #[test]
    fn routes_a_single_and_gate() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        let v = result.layout.verify();
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(result.ratio.height, 3); // PI row, gate row, PO row
        assert_eq!(result.ratio.width, 2);
        assert_eq!(result.layout.num_logic_tiles(), 1);
    }

    #[test]
    fn routes_an_inverter_chain() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        xag.primary_output("f", !a);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        // PI, INV, PO stacked vertically: 1 × 3.
        assert_eq!(result.ratio.tile_count(), 3);
    }

    #[test]
    fn routes_xor2_benchmark() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.xor(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        assert_eq!(result.ratio, AspectRatio::new(2, 3));
    }

    #[test]
    fn routes_shared_fanin_with_fanouts() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let net = map_xag(
            &xag,
            MapOptions {
                extract_half_adders: false,
                legalize_fanout: true,
            },
        )
        .expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let result = exact_pnr(&graph, &ExactOptions::default()).expect("feasible");
        let v = result.layout.verify();
        assert!(v.is_empty(), "{}\n{v:?}", result.layout.render_ascii());
    }

    #[test]
    fn half_adder_single_tile_layout_is_small() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.xor(a, b);
        let c = xag.and(a, b);
        xag.primary_output("s", s);
        xag.primary_output("c", c);
        let result = pnr(&xag);
        assert!(result.layout.verify().is_empty());
        // PI row + HA row + PO row at width 2 = 6 tiles.
        assert_eq!(result.ratio.tile_count(), 6);
    }

    #[test]
    fn probes_and_cumulative_stats_are_surfaced() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.xor(a, b);
        xag.primary_output("f", f);
        let result = pnr(&xag);
        assert_eq!(result.probes.len(), result.ratios_tried);
        let last = result.probes.last().expect("at least the SAT probe");
        assert_eq!(last.verdict, ProbeVerdict::Sat);
        assert_eq!(last.ratio, result.ratio);
        for earlier in &result.probes[..result.probes.len() - 1] {
            assert_eq!(earlier.verdict, ProbeVerdict::Unsat);
        }
        assert!(result.is_provably_minimal());
        let summed: u64 = result.probes.iter().map(|p| p.stats.conflicts).sum();
        assert_eq!(result.stats.conflicts, summed);
        let summed: u64 = result.probes.iter().map(|p| p.stats.decisions).sum();
        assert_eq!(result.stats.decisions, summed);
    }

    #[test]
    fn infeasible_area_bound_errors() {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.and(a, b);
        xag.primary_output("f", f);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let err = exact_pnr(
            &graph,
            &ExactOptions {
                max_area: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, PnrError::NoFeasibleRatio { max_area: 3 });
    }

    #[test]
    fn first_sat_ratio_is_area_minimal() {
        // mux21: s ? b : a — needs crossings/fanouts; check minimality by
        // asserting all strictly smaller ratios fail.
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let s = xag.primary_input("s");
        let m = xag.mux(s, a, b);
        xag.primary_output("m", m);
        let net = map_xag(&xag, MapOptions::default()).expect("mappable");
        let graph = NetGraph::new(net).expect("legalized");
        let result = exact_pnr(&graph, &ExactOptions::default()).expect("feasible");
        assert!(result.layout.verify().is_empty());
        assert!(result.ratios_tried >= 1);
        let area = result.ratio.tile_count();
        // All ratios tried before the winner had smaller-or-equal area by
        // construction of the search order.
        assert!(area <= ExactOptions::default().max_area);
    }
}
