//! Incremental SAT sessions for the exact P&R engines.
//!
//! The exact engines probe aspect ratios in increasing-area order; the
//! from-scratch mode encodes every ratio into a fresh CNF, discarding
//! all learned clauses and heuristic state between probes. This module
//! keeps **one [`msat::Solver`] alive across the probes of a netlist**
//! and splits the encoding into two clause classes:
//!
//! * **Shared clauses** hold for *every* aspect ratio of the netlist —
//!   "a node occupies at most one tile", "at most one gate per tile",
//!   "at most one edge per output port", and the Tseitin definitions of
//!   occupancy literals. They are added unguarded and persist, as do
//!   all learned clauses derived purely from them, the VSIDS activities
//!   and the saved phases of the shared problem variables.
//! * **Guarded clauses** encode the per-ratio boundary and area limits
//!   ("the node sits somewhere *inside this ratio's row range*"). Each
//!   probe owns a fresh *activation literal* `act`; its guarded clauses
//!   carry `¬act` and are activated by solving under the assumption
//!   `act`. Retiring the probe asserts `¬act` as a root-level unit,
//!   which satisfies — and lets [`msat::Solver::simplify`] reclaim —
//!   every guarded clause and every learned clause that depended on it.
//!
//! Problem variables (`place`/`wire`/`step`) are cached by semantic key
//! so the same variable is reused wherever two ratios talk about the
//! same placement fact; that reuse is what lets clause learning and
//! branching heuristics transfer between probes. Auxiliary variables
//! (cardinality ladders, Tseitin outputs) are deduplicated at the
//! clause-set level instead.
//!
//! The [`ProbeEmitter`] trait abstracts the clause classes so a single
//! encoder serves both modes: the scratch emitter maps every class to a
//! plain [`CnfBuilder`] call, the incremental emitter applies the
//! guard/share split above.

use crate::portfolio::CancelFlag;
use msat::{BoundedResult, CnfBuilder, Deadline, Lit, SolveParams, SolverStats};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// How much state an incremental P&R session transferred between
/// aspect-ratio probes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Probes that started with a warm solver (learned clauses already
    /// in the database).
    pub warm_probes: u64,
    /// Total learned clauses carried into probes (summed over probes).
    pub learned_retained: u64,
    /// Conflicts the warm solver needed to re-discover the winning
    /// ratio's verdict (`None` when no probe was satisfiable or the
    /// session ran from scratch).
    pub winner_presolve_conflicts: Option<u64>,
    /// Conflicts the fresh extraction solver needed on the same winning
    /// instance — the from-scratch cost of that probe, measured in the
    /// same run.
    pub winner_scratch_conflicts: Option<u64>,
}

impl ReuseStats {
    /// Conflicts saved on the winning probe by solver reuse: the
    /// from-scratch cost minus the warm cost of the *same* instance
    /// (clamped at zero). `None` until both sides were measured.
    pub fn conflicts_saved(&self) -> Option<u64> {
        match (
            self.winner_scratch_conflicts,
            self.winner_presolve_conflicts,
        ) {
            (Some(scratch), Some(warm)) => Some(scratch.saturating_sub(warm)),
            _ => None,
        }
    }
}

/// The two clause classes of an aspect-ratio probe encoding, served by
/// both the from-scratch and the incremental backends.
///
/// *Shared* emissions must be universally valid for the netlist — true
/// in every aspect ratio — because the incremental backend lets them
/// (and lemmas learned from them) survive into later probes. *Guarded*
/// emissions may encode per-ratio limits; they are retired with the
/// probe.
pub trait ProbeEmitter<K> {
    /// The problem variable for a semantic fact (cached per key in the
    /// incremental backend, fresh in the scratch backend).
    fn var(&mut self, key: K) -> Lit;
    /// Adds a clause that only holds for the current aspect ratio.
    fn guarded(&mut self, clause: Vec<Lit>);
    /// Adds a clause that holds for every aspect ratio.
    fn shared(&mut self, clause: Vec<Lit>);
    /// "At most one of `lits`" — must be universally valid.
    fn shared_at_most_one(&mut self, lits: &[Lit]);
    /// "At least one of `lits`" — per-ratio (ranges shrink with the
    /// ratio, making the disjunction stronger, so it cannot be shared).
    /// An empty `lits` makes the current probe unsatisfiable.
    fn guarded_at_least_one(&mut self, lits: &[Lit]);
    /// A literal equivalent to `lits[0] ∨ lits[1] ∨ …` whose Tseitin
    /// definition is universally valid (and cached per literal set in
    /// the incremental backend).
    fn shared_or_all(&mut self, lits: &[Lit]) -> Lit;
}

/// The from-scratch backend: every emission goes straight to a fresh
/// [`CnfBuilder`]; the guard/share distinction is erased.
#[derive(Debug, Default)]
pub struct ScratchEmitter {
    /// The accumulated formula.
    pub cnf: CnfBuilder,
}

impl ScratchEmitter {
    /// An empty scratch probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<K> ProbeEmitter<K> for ScratchEmitter {
    fn var(&mut self, _key: K) -> Lit {
        self.cnf.new_lit()
    }

    fn guarded(&mut self, clause: Vec<Lit>) {
        self.cnf.add_clause(clause);
    }

    fn shared(&mut self, clause: Vec<Lit>) {
        self.cnf.add_clause(clause);
    }

    fn shared_at_most_one(&mut self, lits: &[Lit]) {
        self.cnf.at_most_one(lits);
    }

    fn guarded_at_least_one(&mut self, lits: &[Lit]) {
        self.cnf.at_least_one(lits);
    }

    fn shared_or_all(&mut self, lits: &[Lit]) -> Lit {
        self.cnf.or_all(lits.iter().copied())
    }
}

/// Learned clauses allowed to survive a probe retirement (binaries and
/// glue clauses are exempt — [`msat::Solver::reduce_learned`] never
/// removes them).
const RETAINED_LEARNED_CAP: u64 = 4_000;

/// An incremental CNF session shared by every aspect-ratio probe of one
/// netlist (one per portfolio worker; the sequential engine owns one
/// for the whole scan).
#[derive(Debug)]
pub struct IncrementalCnf<K> {
    cnf: CnfBuilder,
    vars: HashMap<K, Lit>,
    /// Normalized shared clauses already in the database, so re-walking
    /// a constraint group in a later probe does not duplicate them.
    shared_seen: HashSet<Vec<Lit>>,
    /// Literal sets whose at-most-one ladder was already emitted.
    ladder_seen: HashSet<Vec<Lit>>,
    /// Tseitin OR outputs by (sorted) input set.
    or_cache: HashMap<Vec<Lit>, Lit>,
    /// The current probe's activation literal.
    act: Option<Lit>,
    /// Learned clauses present when the current probe began.
    retained: u64,
}

impl<K: Eq + Hash> IncrementalCnf<K> {
    /// A cold session with an empty solver.
    pub fn new() -> Self {
        IncrementalCnf {
            cnf: CnfBuilder::new(),
            vars: HashMap::new(),
            shared_seen: HashSet::new(),
            ladder_seen: HashSet::new(),
            or_cache: HashMap::new(),
            act: None,
            retained: 0,
        }
    }

    /// Opens a probe: resets the per-probe run counters, allocates a
    /// fresh activation literal, and returns the number of learned
    /// clauses carried in from earlier probes (`0` on a cold solver).
    pub fn begin_probe(&mut self) -> u64 {
        debug_assert!(self.act.is_none(), "previous probe was not retired");
        self.cnf.solver_mut().stats_reset();
        self.retained = self.cnf.solver().stats().learned;
        self.act = Some(self.cnf.new_lit());
        self.retained
    }

    /// Learned clauses carried into the current probe.
    pub fn retained(&self) -> u64 {
        self.retained
    }

    /// Whether a probe is currently open (`begin_probe` without a
    /// matching `end_probe`). A session abandoned in this state — e.g.
    /// by a panicking worker — must not be reused: its activation
    /// literal was never retired, so its guarded clauses are still
    /// armed.
    pub fn mid_probe(&self) -> bool {
        self.act.is_some()
    }

    /// Solver work done since [`IncrementalCnf::begin_probe`].
    pub fn stats(&self) -> SolverStats {
        self.cnf.solver().stats()
    }

    /// Solves the active probe: the activation literal is assumed, the
    /// conflict budget applies to this call only, and both the cancel
    /// flag and the wall-clock deadline are polled cooperatively
    /// (pass [`Deadline::unbounded`] for no time limit).
    pub fn solve(
        &mut self,
        max_conflicts: u64,
        deadline: Deadline,
        cancel: &CancelFlag,
    ) -> BoundedResult {
        let act = self.act.expect("begin_probe before solve");
        self.cnf.solver_mut().set_interrupt(cancel.clone());
        self.cnf.solve_with(
            &SolveParams::new()
                .assume([act])
                .budget(max_conflicts)
                .interruptible()
                .deadline(deadline),
        )
    }

    /// Retires the current probe: asserts the negated activation
    /// literal at the root, so every guarded clause — and every learned
    /// clause that depended on this probe — is satisfied and reclaimed
    /// by the solver's garbage collector. Returns the number of clauses
    /// collected.
    pub fn end_probe(&mut self) -> usize {
        let Some(act) = self.act.take() else {
            return 0;
        };
        self.cnf.add_clause([act.negated()]);
        let collected = self.cnf.solver_mut().simplify();
        // Cap the learned database carried into the next probe. Budget-
        // exhausted probes can each leave ~budget lemmas behind; letting
        // that pile up across a long aspect-ratio scan slows propagation
        // more than the stale high-LBD lemmas help. `reduce_learned` is
        // glucose-style — binaries and glue clauses always survive — and
        // stops making progress once only those remain.
        while self.cnf.solver().stats().learned > RETAINED_LEARNED_CAP {
            let before = self.cnf.solver().stats().learned;
            self.cnf.solver_mut().reduce_learned();
            if self.cnf.solver().stats().learned == before {
                break;
            }
        }
        collected
    }
}

impl<K: Eq + Hash> Default for IncrementalCnf<K> {
    fn default() -> Self {
        Self::new()
    }
}

/// Normalizes a clause for structural deduplication.
fn normalized(mut clause: Vec<Lit>) -> Vec<Lit> {
    clause.sort_unstable();
    clause.dedup();
    clause
}

impl<K: Eq + Hash> ProbeEmitter<K> for IncrementalCnf<K> {
    fn var(&mut self, key: K) -> Lit {
        match self.vars.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let lit = Lit::pos(self.cnf.solver_mut().new_var());
                e.insert(lit);
                lit
            }
        }
    }

    fn guarded(&mut self, mut clause: Vec<Lit>) {
        let act = self.act.expect("begin_probe before emission");
        clause.push(act.negated());
        self.cnf.add_clause(clause);
    }

    fn shared(&mut self, clause: Vec<Lit>) {
        let clause = normalized(clause);
        if self.shared_seen.insert(clause.clone()) {
            self.cnf.add_clause(clause);
        }
    }

    fn shared_at_most_one(&mut self, lits: &[Lit]) {
        if lits.len() <= 1 {
            return;
        }
        if lits.len() <= 5 {
            // Pairwise: individual pairs deduplicate across probes even
            // when the constraint group grows between them.
            for i in 0..lits.len() {
                for j in (i + 1)..lits.len() {
                    self.shared(vec![lits[i].negated(), lits[j].negated()]);
                }
            }
        } else {
            // Sequential ladder with fresh auxiliaries; deduplicated at
            // the set level (a repeated identical group is skipped, a
            // grown group gets a fresh ladder — the old one remains
            // valid, merely redundant).
            let key = normalized(lits.to_vec());
            if !self.ladder_seen.insert(key) {
                return;
            }
            let mut prev = lits[0];
            for &l in &lits[1..] {
                let s = self.cnf.new_lit();
                self.cnf.implies(prev, s);
                self.cnf.implies(l, s);
                // The reverse direction (s → prev ∨ l) is not needed for
                // correctness, but it pins every ladder auxiliary once the
                // probe's guarded units assign the problem variables —
                // over the session superset the groups are much larger
                // than any single ratio's, and leaving the auxiliaries
                // free would hand the branching heuristic a long chain of
                // meaningless decisions.
                self.cnf.add_clause([s.negated(), prev, l]);
                self.cnf.add_clause([prev.negated(), l.negated()]);
                prev = s;
            }
        }
    }

    fn guarded_at_least_one(&mut self, lits: &[Lit]) {
        // Empty disjunction: the probe is infeasible, expressed as the
        // guarded empty clause (the unit ¬act).
        self.guarded(lits.to_vec());
    }

    fn shared_or_all(&mut self, lits: &[Lit]) -> Lit {
        let key = normalized(lits.to_vec());
        if let Some(&o) = self.or_cache.get(&key) {
            return o;
        }
        let o = self.cnf.or_all(key.iter().copied());
        self.or_cache.insert(key, o);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Key {
        X(u32),
    }

    fn never() -> CancelFlag {
        Arc::new(AtomicBool::new(false))
    }

    #[test]
    fn vars_are_cached_by_key() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        inc.begin_probe();
        let a = inc.var(Key::X(1));
        let b = inc.var(Key::X(2));
        let a2 = inc.var(Key::X(1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        inc.end_probe();
    }

    #[test]
    fn guarded_constraints_die_with_their_probe() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        // Probe 1: x must be true (guarded); UNSAT with guarded ¬x too.
        inc.begin_probe();
        let x = inc.var(Key::X(0));
        inc.guarded(vec![x]);
        inc.guarded(vec![x.negated()]);
        assert_eq!(
            inc.solve(u64::MAX, Deadline::unbounded(), &never()),
            BoundedResult::Unsat
        );
        inc.end_probe();
        // Probe 2: the same variable is unconstrained again.
        inc.begin_probe();
        let x2 = inc.var(Key::X(0));
        assert_eq!(x, x2);
        inc.guarded(vec![x2]);
        let r = inc.solve(u64::MAX, Deadline::unbounded(), &never());
        assert!(r.is_sat());
        assert!(r.model().unwrap().lit_value(x2));
        inc.end_probe();
    }

    #[test]
    fn shared_clauses_survive_probes_and_deduplicate() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        inc.begin_probe();
        let a = inc.var(Key::X(0));
        let b = inc.var(Key::X(1));
        inc.shared(vec![a, b]);
        let n = inc.cnf.solver().num_clauses();
        inc.shared(vec![b, a]); // same clause, different order
        assert_eq!(inc.cnf.solver().num_clauses(), n, "deduplicated");
        assert!(inc
            .solve(u64::MAX, Deadline::unbounded(), &never())
            .is_sat());
        inc.end_probe();
        // Probe 2: the shared clause still constrains the formula.
        inc.begin_probe();
        inc.guarded(vec![a.negated()]);
        inc.guarded(vec![b.negated()]);
        assert_eq!(
            inc.solve(u64::MAX, Deadline::unbounded(), &never()),
            BoundedResult::Unsat
        );
        inc.end_probe();
    }

    #[test]
    fn empty_at_least_one_makes_probe_unsat_but_not_session() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        inc.begin_probe();
        let lits: [Lit; 0] = [];
        ProbeEmitter::<Key>::guarded_at_least_one(&mut inc, &lits);
        assert_eq!(
            inc.solve(u64::MAX, Deadline::unbounded(), &never()),
            BoundedResult::Unsat
        );
        inc.end_probe();
        inc.begin_probe();
        assert!(inc
            .solve(u64::MAX, Deadline::unbounded(), &never())
            .is_sat());
        inc.end_probe();
    }

    #[test]
    fn retained_counts_learned_clauses_between_probes() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        // A probe with real search work: shared pigeonhole 4→3 over
        // shared vars so lemmas persist.
        inc.begin_probe();
        assert_eq!(inc.retained(), 0, "cold start");
        let p = |i: u32, j: u32| Key::X(i * 3 + j);
        let vars: Vec<Vec<Lit>> = (0..4)
            .map(|i| (0..3).map(|j| inc.var(p(i, j))).collect())
            .collect();
        for row in &vars {
            inc.shared(row.clone());
        }
        for i1 in 0..4 {
            for i2 in (i1 + 1)..4 {
                for (a, b) in vars[i1].iter().zip(&vars[i2]) {
                    inc.shared(vec![a.negated(), b.negated()]);
                }
            }
        }
        assert_eq!(
            inc.solve(u64::MAX, Deadline::unbounded(), &never()),
            BoundedResult::Unsat
        );
        inc.end_probe();
        // The session itself is now unsat at the root (shared clauses
        // are contradictory) — begin_probe still reports retained state.
        inc.begin_probe();
        assert_eq!(
            inc.solve(u64::MAX, Deadline::unbounded(), &never()),
            BoundedResult::Unsat
        );
        inc.end_probe();
    }

    #[test]
    fn or_cache_reuses_tseitin_outputs() {
        let mut inc: IncrementalCnf<Key> = IncrementalCnf::new();
        inc.begin_probe();
        let a = inc.var(Key::X(0));
        let b = inc.var(Key::X(1));
        let o1 = inc.shared_or_all(&[a, b]);
        let o2 = inc.shared_or_all(&[b, a]);
        assert_eq!(o1, o2);
        inc.end_probe();
    }

    #[test]
    fn reuse_stats_report_saved_conflicts() {
        let stats = ReuseStats {
            warm_probes: 2,
            learned_retained: 10,
            winner_presolve_conflicts: Some(3),
            winner_scratch_conflicts: Some(9),
        };
        assert_eq!(stats.conflicts_saved(), Some(6));
        assert_eq!(ReuseStats::default().conflicts_saved(), None);
    }
}
