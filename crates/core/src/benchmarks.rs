//! The evaluation benchmark suite (paper Table 1).
//!
//! The paper evaluates on "established QCA benchmarks from
//! [Trindade et al., SBCCI 2016] and [Fontes et al., ISCAS 2018]". The
//! well-documented functions (xor2, xnor2, par_gen, par_check, mux21,
//! c17, majority, the xor5 variants) are reconstructed exactly; for `t`,
//! `t_5`, `cm82a_5`, and `newtag` the source netlists are not public in
//! the paper, so functionally plausible substitutes with the same PI/PO
//! counts and similar gate counts stand in (see `DESIGN.md` §3.4). Each
//! benchmark is specified as gate-level Verilog and parsed through
//! [`fcn_logic::verilog`] — the same entry point the flow offers users.

use fcn_logic::network::Xag;
use fcn_logic::verilog::parse_verilog;

/// A named benchmark circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as used in Table 1.
    pub name: &'static str,
    /// Source suite (`"[43]"` = Trindade et al., `"[13]"` = Fontes et al.).
    pub suite: &'static str,
    /// The parsed specification.
    pub xag: Xag,
    /// Layout size reported in the paper's Table 1, when listed there
    /// (`(w, h, sidbs, area_nm2)`).
    pub paper_result: Option<(u32, u32, u32, f64)>,
}

/// Verilog sources for every benchmark.
fn source(name: &str) -> Option<&'static str> {
    Some(match name {
        "xor2" => "module xor2 (a, b, f); input a, b; output f; assign f = a ^ b; endmodule",
        "xnor2" => "module xnor2 (a, b, f); input a, b; output f; assign f = ~(a ^ b); endmodule",
        "par_gen" => {
            "module par_gen (a, b, c, p); input a, b, c; output p;
             assign p = a ^ b ^ c; endmodule"
        }
        "mux21" => {
            "module mux21 (a, b, s, f); input a, b, s; output f;
             assign f = s ? b : a; endmodule"
        }
        "par_check" => {
            "module par_check (a, b, c, d, e); input a, b, c, d; output e;
             assign e = (a ^ b) ^ (c ^ d); endmodule"
        }
        "xor5_r1" => {
            "module xor5_r1 (a, b, c, d, e, f); input a, b, c, d, e; output f;
             assign f = (a ^ b) ^ (c ^ d) ^ e; endmodule"
        }
        // XOR5 decomposed majority-style (deeper structure, same function).
        "xor5_majority" => {
            "module xor5_majority (a, b, c, d, e, f); input a, b, c, d, e; output f;
             wire ab, cd, abcd;
             assign ab = (a & ~b) | (~a & b);
             assign cd = (c & ~d) | (~c & d);
             assign abcd = (ab & ~cd) | (~ab & cd);
             assign f = (abcd & ~e) | (~abcd & e); endmodule"
        }
        // Substitute netlist (original unavailable): 5-in/2-out mixed logic.
        "t" => {
            "module t (a, b, c, d, e, s, u); input a, b, c, d, e; output s, u;
             wire w1, w2;
             assign w1 = (a & b) ^ (c | d);
             assign w2 = (c | d) & ~e;
             assign s = w1 | w2;
             assign u = w1 ^ (b & e); endmodule"
        }
        // Substitute netlist: a denser variant of `t` (chosen among
        // equally plausible candidates for routability in the paper's
        // size regime).
        "t_5" => {
            "module t_5 (a, b, c, d, e, s, u); input a, b, c, d, e; output s, u;
             wire w1, w2;
             assign w1 = (a & b) ^ (c & d);
             assign w2 = (b | c) & e;
             assign s = w1 ^ w2;
             assign u = w1 | (d & e); endmodule"
        }
        // ISCAS-85 c17 (exact NAND netlist).
        "c17" => {
            "module c17 (in1, in2, in3, in6, in7, out22, out23);
             input in1, in2, in3, in6, in7; output out22, out23;
             wire n10, n11, n16, n19;
             assign n10 = ~(in1 & in3);
             assign n11 = ~(in3 & in6);
             assign n16 = ~(in2 & n11);
             assign n19 = ~(n11 & in7);
             assign out22 = ~(n10 & n16);
             assign out23 = ~(n16 & n19); endmodule"
        }
        "majority" => {
            "module majority (a, b, c, m); input a, b, c; output m;
             assign m = (a & b) | (a & c) | (b & c); endmodule"
        }
        // 5-input majority via bit counting: a full adder over (a,b,c) and
        // a half adder over (d,e); the count is at least 3 iff both
        // carries are set, or any carry accompanies any sum bit.
        "majority_5_r1" => {
            "module majority_5_r1 (a, b, c, d, e, m); input a, b, c, d, e; output m;
             wire s1, c1, s2, c2;
             assign s1 = a ^ b ^ c;
             assign c1 = (a & b) | (a & c) | (b & c);
             assign s2 = d ^ e;
             assign c2 = d & e;
             assign m = (c1 & c2) | ((c1 | c2) & (s1 | s2)); endmodule"
        }
        // Substitute netlist: a 2-bit ripple adder (5 in, 3 out) matching
        // cm82a's interface and arithmetic flavour.
        "cm82a_5" => {
            "module cm82a_5 (a0, a1, b0, b1, cin, s0, s1, cout);
             input a0, a1, b0, b1, cin; output s0, s1, cout;
             wire t0, c0, t1;
             assign t0 = a0 ^ b0;
             assign s0 = t0 ^ cin;
             assign c0 = (a0 & b0) | (t0 & cin);
             assign t1 = a1 ^ b1;
             assign s1 = t1 ^ c0;
             assign cout = (a1 & b1) | (t1 & c0); endmodule"
        }
        // Substitute netlist: 8-in/1-out AND-OR tree (original unavailable).
        "newtag" => {
            "module newtag (i0, i1, i2, i3, i4, i5, i6, i7, f);
             input i0, i1, i2, i3, i4, i5, i6, i7; output f;
             wire g0, g1, g2, g3;
             assign g0 = i0 & i1 & i2;
             assign g1 = i3 & (i4 | i5);
             assign g2 = (i6 ^ i7) & i0;
             assign g3 = (i4 & i7) | (i1 ^ i5);
             assign f = g0 | (g1 & g2) | (g2 ^ g3); endmodule"
        }
        _ => return None,
    })
}

/// Layout results the paper reports in Table 1: `(w, h, sidbs, nm²)`.
fn paper_row(name: &str) -> Option<(u32, u32, u32, f64)> {
    Some(match name {
        "xor2" => (2, 3, 58, 2403.98),
        "xnor2" => (2, 3, 58, 2403.98),
        "par_gen" => (3, 4, 103, 4830.22),
        "mux21" => (3, 6, 196, 7258.52),
        "par_check" => (4, 7, 284, 11312.68),
        "xor5_r1" => (5, 6, 232, 12124.57),
        "xor5_majority" => (5, 6, 244, 12124.57),
        "t" => (5, 8, 426, 16180.79),
        "t_5" => (5, 8, 448, 16180.79),
        "c17" => (5, 8, 396, 16180.79),
        "majority" => (5, 11, 651, 22265.12),
        "majority_5_r1" => (5, 12, 737, 24293.23),
        "cm82a_5" => (5, 15, 1211, 30377.56),
        "newtag" => (8, 10, 651, 32419.82),
        _ => return None,
    })
}

/// Names of all Table 1 benchmarks, in the paper's order.
pub fn benchmark_names() -> Vec<&'static str> {
    vec![
        "xor2",
        "xnor2",
        "par_gen",
        "mux21",
        "par_check",
        "xor5_r1",
        "xor5_majority",
        "t",
        "t_5",
        "c17",
        "majority",
        "majority_5_r1",
        "cm82a_5",
        "newtag",
    ]
}

/// Loads a benchmark by name.
///
/// # Panics
///
/// Panics on unknown names; the embedded sources are guaranteed to parse.
pub fn benchmark(name: &str) -> Benchmark {
    let src = source(name).unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    let (_, xag) = parse_verilog(src).expect("embedded benchmark sources parse");
    let suite = if ["xor2", "xnor2", "par_gen", "mux21", "par_check"].contains(&name) {
        "[43]"
    } else {
        "[13]"
    };
    Benchmark {
        name: benchmark_names()
            .into_iter()
            .find(|n| *n == name)
            .expect("known name"),
        suite,
        xag,
        paper_result: paper_row(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_parse() {
        for name in benchmark_names() {
            let b = benchmark(name);
            assert!(b.xag.num_pis() > 0, "{name}");
            assert!(b.xag.num_pos() > 0, "{name}");
            assert!(b.xag.num_gates() > 0, "{name}");
        }
    }

    #[test]
    fn xor2_and_xnor2_are_complements() {
        let x = benchmark("xor2").xag;
        let n = benchmark("xnor2").xag;
        for row in 0..4u32 {
            let inputs = [(row & 1) == 1, (row & 2) != 0];
            assert_eq!(x.simulate(&inputs)[0], !n.simulate(&inputs)[0]);
        }
    }

    #[test]
    fn parity_benchmarks_compute_parity() {
        for (name, n) in [
            ("par_gen", 3usize),
            ("par_check", 4),
            ("xor5_r1", 5),
            ("xor5_majority", 5),
        ] {
            let b = benchmark(name);
            assert_eq!(b.xag.num_pis(), n, "{name}");
            for row in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (row >> i) & 1 == 1).collect();
                let expected = inputs.iter().filter(|&&v| v).count() % 2 == 1;
                assert_eq!(b.xag.simulate(&inputs)[0], expected, "{name} row {row}");
            }
        }
    }

    #[test]
    fn c17_matches_reference_nands() {
        let b = benchmark("c17");
        assert_eq!(b.xag.num_pis(), 5);
        assert_eq!(b.xag.num_pos(), 2);
        for row in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| (row >> i) & 1 == 1).collect();
            let (in1, in2, in3, in6, in7) = (v[0], v[1], v[2], v[3], v[4]);
            let n10 = !(in1 && in3);
            let n11 = !(in3 && in6);
            let n16 = !(in2 && n11);
            let n19 = !(n11 && in7);
            let out22 = !(n10 && n16);
            let out23 = !(n16 && n19);
            assert_eq!(b.xag.simulate(&v), vec![out22, out23], "row {row}");
        }
    }

    #[test]
    fn majority_benchmarks_compute_majority() {
        let m3 = benchmark("majority");
        for row in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| (row >> i) & 1 == 1).collect();
            let expected = inputs.iter().filter(|&&v| v).count() >= 2;
            assert_eq!(m3.xag.simulate(&inputs)[0], expected);
        }
        let m5 = benchmark("majority_5_r1");
        for row in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| (row >> i) & 1 == 1).collect();
            let expected = inputs.iter().filter(|&&v| v).count() >= 3;
            assert_eq!(m5.xag.simulate(&inputs)[0], expected, "row {row}");
        }
    }

    #[test]
    fn cm82a_adds_two_bit_numbers() {
        let b = benchmark("cm82a_5");
        for row in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| (row >> i) & 1 == 1).collect();
            let a = v[0] as u32 + 2 * (v[1] as u32);
            let bn = v[2] as u32 + 2 * (v[3] as u32);
            let cin = v[4] as u32;
            let sum = a + bn + cin;
            let out = b.xag.simulate(&v);
            let got = out[0] as u32 + 2 * (out[1] as u32) + 4 * (out[2] as u32);
            assert_eq!(got, sum, "row {row}");
        }
    }

    #[test]
    fn paper_rows_cover_listed_benchmarks() {
        // All except mux21-missing entries have Table 1 rows.
        for name in benchmark_names() {
            assert!(benchmark(name).paper_result.is_some(), "{name}");
        }
    }
}
