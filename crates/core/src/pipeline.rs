//! Clocked signal-propagation simulation (the Figure 2 experiment).
//!
//! Clocking in FCN "stabilizes signals and directs the flow of
//! information in a pipeline-like fashion by alternately expressing
//! *activated* regions … and *deactivated* regions" (paper Section 2).
//! This module simulates a row-clocked layout at the gate level, tick by
//! tick: at tick `t` the rows whose clock zone equals `t mod 4` evaluate
//! from the (held) values of the rows above, while rows in the
//! *deactivated* phase lose their values — charge-population modulation
//! in the SiDB platform.

use fcn_coords::{HexCoord, HexDirection};
use fcn_layout::clocking::NUM_PHASES;
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::tile::TileContents;
use fcn_logic::GateKind;
use std::collections::HashMap;

/// The per-tick state of a clocked pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipelineSim<'a> {
    layout: &'a HexGateLayout,
    /// Signal value at each tile's outgoing port `(tile, direction)`.
    values: HashMap<(HexCoord, HexDirection), bool>,
    /// Per-PI streams of input values (consumed one per clock cycle).
    inputs: HashMap<String, Vec<bool>>,
    tick: u32,
    /// Output samples observed at POs: `(name, tick, value)`.
    outputs: Vec<(String, u32, bool)>,
}

impl<'a> PipelineSim<'a> {
    /// Creates a simulation feeding each named PI the given value stream
    /// (one element per clock cycle; the stream repeats).
    pub fn new(layout: &'a HexGateLayout, inputs: HashMap<String, Vec<bool>>) -> Self {
        PipelineSim {
            layout,
            values: HashMap::new(),
            inputs,
            tick: 0,
            outputs: Vec::new(),
        }
    }

    /// The current tick.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// Output samples recorded so far.
    pub fn outputs(&self) -> &[(String, u32, bool)] {
        &self.outputs
    }

    /// Which zone is *activated* (evaluating) at the given tick.
    pub fn active_zone(tick: u32) -> u8 {
        (tick % NUM_PHASES as u32) as u8
    }

    /// Number of tiles currently holding a defined value.
    pub fn num_live_tiles(&self) -> usize {
        let tiles: std::collections::HashSet<HexCoord> =
            self.values.keys().map(|(c, _)| *c).collect();
        tiles.len()
    }

    /// True if the tile currently holds a defined signal value.
    pub fn tile_is_live(&self, coord: HexCoord) -> bool {
        self.values.keys().any(|(c, _)| *c == coord)
    }

    /// Advances the pipeline by one clock tick: tiles in the activated
    /// zone compute their outputs from the held values of their northern
    /// neighbors; a PI fetches the next value of its stream each time its
    /// row activates on a new cycle.
    pub fn step(&mut self) {
        let zone = Self::active_zone(self.tick);
        let cycle = (self.tick / NUM_PHASES as u32) as usize;
        let mut new_values = self.values.clone();

        for (coord, contents) in self.layout.occupied_tiles() {
            if self.layout.clock_zone(coord) != zone {
                continue;
            }
            let fetch = |dir: HexDirection| -> Option<bool> {
                let n = coord.neighbor(dir);
                self.values.get(&(n, dir.opposite())).copied()
            };
            match contents {
                TileContents::Gate {
                    kind,
                    inputs,
                    outputs,
                    name,
                } => {
                    let in_vals: Option<Vec<bool>> = inputs.iter().map(|&d| fetch(d)).collect();
                    match kind {
                        GateKind::Pi => {
                            let name = name.clone().unwrap_or_default();
                            let stream = self.inputs.get(&name);
                            let value = stream
                                .and_then(|s| {
                                    if s.is_empty() {
                                        None
                                    } else {
                                        Some(s[cycle % s.len()])
                                    }
                                })
                                .unwrap_or(false);
                            for &d in outputs {
                                new_values.insert((coord, d), value);
                            }
                        }
                        GateKind::Po => {
                            if let Some(vals) = in_vals {
                                self.outputs.push((
                                    name.clone().unwrap_or_default(),
                                    self.tick,
                                    vals[0],
                                ));
                            }
                        }
                        kind => {
                            if let Some(vals) = in_vals {
                                let out_vals = kind.evaluate(&vals);
                                for (&d, v) in outputs.iter().zip(out_vals) {
                                    new_values.insert((coord, d), v);
                                }
                            }
                        }
                    }
                }
                TileContents::Wire { segments } => {
                    for &(in_dir, out_dir) in segments {
                        if let Some(v) = fetch(in_dir) {
                            new_values.insert((coord, out_dir), v);
                        }
                    }
                }
            }
        }
        self.values = new_values;
        self.tick += 1;
    }

    /// Runs `n` ticks.
    pub fn run(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowOptions, FlowRequest, PnrMethod};
    use fcn_logic::network::Xag;

    fn or_layout() -> HexGateLayout {
        let mut xag = Xag::new();
        let a = xag.primary_input("a");
        let b = xag.primary_input("b");
        let f = xag.or(a, b);
        xag.primary_output("f", f);
        FlowRequest::netlist("or2", xag)
            .with_options(
                FlowOptions::new()
                    .with_pnr(PnrMethod::Exact { max_area: 60 })
                    .without_library(),
            )
            .execute()
            .expect("flow")
            .layout
    }

    #[test]
    fn signals_propagate_one_zone_per_tick() {
        let layout = or_layout();
        let inputs: HashMap<String, Vec<bool>> =
            [("a".into(), vec![true]), ("b".into(), vec![false])].into();
        let mut sim = PipelineSim::new(&layout, inputs);
        assert_eq!(sim.num_live_tiles(), 0);
        sim.step(); // zone 0: PIs produce values
        let after_one = sim.num_live_tiles();
        assert!(after_one > 0);
        sim.step(); // zone 1
        assert!(sim.num_live_tiles() >= after_one);
    }

    #[test]
    fn or_gate_pipeline_produces_correct_outputs() {
        let layout = or_layout();
        // Four cycles of input patterns exercise the full truth table.
        let inputs: HashMap<String, Vec<bool>> = [
            ("a".into(), vec![false, true, false, true]),
            ("b".into(), vec![false, false, true, true]),
        ]
        .into();
        let mut sim = PipelineSim::new(&layout, inputs);
        // The layout has as many rows as zones in flight; run long enough
        // for all four patterns to drain through.
        sim.run(4 * (layout.ratio().height + 4));
        let outs: Vec<bool> = sim.outputs().iter().map(|(_, _, v)| *v).collect();
        // Expected OR results in order: 0, 1, 1, 1 (repeating).
        assert!(
            outs.len() >= 4,
            "expected at least four samples, got {outs:?}"
        );
        let expected = [false, true, true, true];
        for (i, &v) in outs.iter().take(4).enumerate() {
            assert_eq!(v, expected[i], "sample {i} of {outs:?}");
        }
    }

    #[test]
    fn throughput_is_one_sample_per_cycle() {
        let layout = or_layout();
        let inputs: HashMap<String, Vec<bool>> =
            [("a".into(), vec![true]), ("b".into(), vec![true])].into();
        let mut sim = PipelineSim::new(&layout, inputs);
        sim.run(12 * 4);
        // After the fill latency, one output sample per 4-tick cycle.
        let samples = sim.outputs().len() as u32;
        let cycles = 12;
        let latency_cycles = layout.ratio().height.div_ceil(4) + 1;
        assert!(samples + latency_cycles >= cycles, "samples {samples}");
    }
}
