//! The end-to-end design flow (paper Section 4.2).
//!
//! Every run installs an ambient [`fcn_telemetry::Collector`] and wraps
//! the paper's eight steps in spans (`step1:parse` … `step8:export`), so
//! the instrumented layers below (rewriting, SAT-based P&R, equivalence
//! checking, physical simulation) attach their counters to the right
//! stage. The resulting [`FlowReport`] is returned on [`FlowResult`] and
//! emitted to stderr according to the `TELEMETRY` environment variable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bestagon_lib::apply::{apply_gate_library, ApplyError, CellLevelLayout};
use bestagon_lib::tiles::BestagonLibrary;
use fcn_budget::fault::{self, Fault};
use fcn_equiv::{
    check_equivalence, check_equivalence_bounded, EquivError, Equivalence, MiterLimit,
};
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::supertile::{plan_supertiles, SuperTilePlan};
use fcn_logic::network::Xag;
use fcn_logic::rewrite::{rewrite, RewriteOptions};
use fcn_logic::techmap::{map_xag, MapError, MapOptions};
use fcn_logic::verilog::{parse_verilog, ParseVerilogError};
use fcn_pnr::{exact_pnr, heuristic_pnr, ExactOptions, NetGraph, PnrError};

pub use fcn_budget::{Deadline, FlowBudget};

/// Telemetry snapshot of one flow run (alias of [`fcn_telemetry::Report`]).
pub type FlowReport = fcn_telemetry::Report;

/// Local-potential perturbation (eV) above which a defect compromises a
/// tile. Matches the validation simulation's interaction cutoff
/// ([`bestagon_lib::geometry::validation_params`]): a defect below it is
/// indistinguishable from truncation noise the gates already tolerate.
const DEFECT_THRESHOLD_EV: f64 = 2e-3;

/// Which physical-design engine the flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PnrMethod {
    /// Area-minimal SAT-based search (paper flow step 4).
    Exact {
        /// Area bound in tiles for the search.
        max_area: u64,
    },
    /// The scalable one-pass baseline.
    Heuristic,
    /// Exact first; fall back to the heuristic if the bound is exhausted.
    ExactWithFallback {
        /// Area bound in tiles before falling back.
        max_area: u64,
    },
}

impl Default for PnrMethod {
    fn default() -> Self {
        PnrMethod::ExactWithFallback { max_area: 150 }
    }
}

/// What pushed a stage off its preferred path (see [`Degradation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeTrigger {
    /// The flow's wall-clock deadline ([`FlowBudget::deadline`]) expired.
    Deadline,
    /// A per-stage resource budget (conflicts, iterations, steps) ran
    /// out.
    Budget,
    /// The stage's preferred engine reported an error the flow could
    /// absorb by switching engines.
    EngineError,
    /// The configured surface-defect map made the preferred placement
    /// infeasible; the flow relaxed the search (larger area bound, or a
    /// defect-blind placement as the last resort) instead of failing.
    DefectAvoidance,
}

impl core::fmt::Display for DegradeTrigger {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DegradeTrigger::Deadline => "deadline",
            DegradeTrigger::Budget => "budget",
            DegradeTrigger::EngineError => "engine-error",
            DegradeTrigger::DefectAvoidance => "defect-avoidance",
        })
    }
}

/// One graceful-degradation event: a stage that hit a resource limit and
/// took its documented fallback instead of failing the run.
///
/// Collected on [`FlowResult::degradations`] and surfaced in telemetry
/// (the `flow.degraded` counter and per-stage `degraded` notes), so a
/// deployment can measure how often it runs degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The stage span name (`"step4:pnr"`, `"step5:equiv"`, …).
    pub stage: &'static str,
    /// What tripped the fallback.
    pub trigger: DegradeTrigger,
    /// The fallback the stage took (human-readable, stable prose).
    pub action: String,
    /// Trigger-specific context: the engine error, the budget spent, the
    /// clamped value.
    pub detail: String,
}

/// Options of the full flow.
///
/// Construct with the chainable builder methods; the struct is
/// `#[non_exhaustive]`, so downstream crates cannot use literal syntax
/// and remain source-compatible when options are added:
///
/// ```
/// use bestagon_core::flow::{FlowOptions, PnrMethod};
///
/// let options = FlowOptions::new()
///     .with_pnr(PnrMethod::Exact { max_area: 60 })
///     .with_threads(4)
///     .without_verify();
/// assert!(!options.verify);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FlowOptions {
    /// Logic rewriting (step 2); `None` skips the pass (ablation A3).
    pub rewrite: Option<RewriteOptions>,
    /// Technology mapping options (step 3).
    pub map: MapOptions,
    /// Physical-design engine (step 4).
    pub pnr: PnrMethod,
    /// Worker threads for the exact engine's aspect-ratio portfolio
    /// (step 4). `None` uses [`fcn_pnr::default_num_threads`]; the
    /// layout is identical at any thread count.
    pub pnr_threads: Option<usize>,
    /// Incremental SAT probing for the exact engine (step 4): each
    /// worker keeps one solver alive across aspect-ratio probes. `None`
    /// uses [`fcn_pnr::default_incremental`] (the `PNR_INCREMENTAL`
    /// environment variable, on by default); the layout is identical
    /// either way.
    pub pnr_incremental: Option<bool>,
    /// Run SAT-based equivalence checking (step 5).
    pub verify: bool,
    /// Apply the Bestagon library for a dot-accurate layout (step 7).
    pub apply_library: bool,
    /// Physically re-validate the distinct library designs the layout
    /// instantiates (step 7): each design's truth table is checked with
    /// the cached exact simulation engine, and the `sidb.*` counters
    /// (configurations visited/pruned, cache hits) land in the step-7
    /// span of [`FlowResult::report`]. Off by default — the library
    /// ships pre-validated; turn it on to audit a deployment's tiles.
    pub tile_validation: bool,
    /// Wall-clock deadline and per-stage resource budgets. The default
    /// reads the `FLOW_*` environment variables
    /// ([`FlowBudget::from_env`]); an empty environment imposes no
    /// limits and leaves every stage byte-identical to an un-budgeted
    /// run. A relative deadline (`FLOW_DEADLINE_MS`) starts ticking when
    /// the options are constructed.
    pub budget: FlowBudget,
    /// The surface-defect map to design around (step 4 blacklists
    /// compromised tiles; step 7 re-validates the placement against the
    /// map). `None` consults the `SURFACE_DEFECTS` environment variable
    /// (a `seed:density[:kinds]` spec or a defect-file path); when that
    /// is unset too, the flow is byte-identical to the pristine flow.
    pub surface: Option<sidb_sim::DefectMap>,
    /// A shared simulation cache for step 7's tile validation. `None`
    /// consults the `SIM_CACHE` environment variable
    /// ([`sidb_sim::SimCache::from_env`]); a long-lived host (the design
    /// server) installs one process-wide cache here so identical tile
    /// simulations are shared across requests.
    pub sim_cache: Option<sidb_sim::SimCache>,
    /// A warm incremental-SAT session pool for step 4's exact engine
    /// ([`fcn_pnr::SessionPool`]). `None` keeps sessions scoped to one
    /// P&R call, exactly as before; a long-lived host installs a
    /// per-worker pool so repeat netlists start from warm solvers.
    /// Purely a work-counter optimization — layouts are byte-identical
    /// with or without it.
    pub session_pool: Option<fcn_pnr::SessionPool>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            rewrite: Some(RewriteOptions::default()),
            map: MapOptions::default(),
            pnr: PnrMethod::default(),
            pnr_threads: None,
            pnr_incremental: None,
            verify: true,
            apply_library: true,
            tile_validation: false,
            budget: FlowBudget::from_env(),
            surface: None,
            sim_cache: None,
            session_pool: None,
        }
    }
}

impl FlowOptions {
    /// The default flow: rewrite, map, exact P&R with heuristic
    /// fallback, verify, apply the gate library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the logic-rewriting configuration (step 2).
    #[must_use]
    pub fn with_rewrite(mut self, rewrite: RewriteOptions) -> Self {
        self.rewrite = Some(rewrite);
        self
    }

    /// Skips logic rewriting entirely (ablation A3).
    #[must_use]
    pub fn without_rewrite(mut self) -> Self {
        self.rewrite = None;
        self
    }

    /// Selects the technology-mapping configuration (step 3).
    #[must_use]
    pub fn with_map(mut self, map: MapOptions) -> Self {
        self.map = map;
        self
    }

    /// Selects the physical-design engine (step 4).
    #[must_use]
    pub fn with_pnr(mut self, pnr: PnrMethod) -> Self {
        self.pnr = pnr;
        self
    }

    /// Pins the exact engine's portfolio to `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pnr_threads = Some(threads);
        self
    }

    /// Forces incremental (`true`) or from-scratch (`false`) SAT
    /// probing for the exact engine, overriding `PNR_INCREMENTAL`.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.pnr_incremental = Some(incremental);
        self
    }

    /// Skips SAT-based equivalence checking (step 5).
    #[must_use]
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Skips gate-library application (step 7), leaving the result at
    /// the gate level.
    #[must_use]
    pub fn without_library(mut self) -> Self {
        self.apply_library = false;
        self
    }

    /// Physically re-validates the used library tiles during step 7
    /// (see [`FlowOptions::tile_validation`]).
    #[must_use]
    pub fn with_tile_validation(mut self) -> Self {
        self.tile_validation = true;
        self
    }

    /// Sets the full resource budget, replacing the environment-derived
    /// default.
    #[must_use]
    pub fn with_budget(mut self, budget: FlowBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets a wall-clock deadline `ms` milliseconds from now, keeping
    /// the other budget fields.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline = Deadline::after_ms(ms);
        self
    }

    /// Designs around the given surface-defect map (see
    /// [`FlowOptions::surface`]), overriding `SURFACE_DEFECTS`.
    #[must_use]
    pub fn with_surface(mut self, surface: sidb_sim::DefectMap) -> Self {
        self.surface = Some(surface);
        self
    }

    /// Shares the given simulation cache with step 7 (see
    /// [`FlowOptions::sim_cache`]), overriding `SIM_CACHE`.
    #[must_use]
    pub fn with_sim_cache(mut self, cache: sidb_sim::SimCache) -> Self {
        self.sim_cache = Some(cache);
        self
    }

    /// Checks step 4's incremental SAT sessions out of (and back into)
    /// the given pool (see [`FlowOptions::session_pool`]).
    #[must_use]
    pub fn with_session_pool(mut self, pool: fcn_pnr::SessionPool) -> Self {
        self.session_pool = Some(pool);
        self
    }
}

/// Everything the flow produces for one circuit.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Circuit name.
    pub name: String,
    /// The optimized XAG the layout implements (after rewriting).
    pub optimized: Xag,
    /// Gate count of the XAG before rewriting.
    pub gates_before_rewrite: usize,
    /// Gate count after rewriting.
    pub gates_after_rewrite: usize,
    /// XAG depth after rewriting.
    pub depth: usize,
    /// Gate-level layout (step 4).
    pub layout: HexGateLayout,
    /// Whether the exact engine produced the layout (false = heuristic).
    pub exact: bool,
    /// Equivalence verdict (step 5), when requested.
    pub equivalence: Option<Equivalence>,
    /// Super-tile plan (step 6).
    pub supertiles: SuperTilePlan,
    /// Dot-accurate SiDB layout (step 7), when requested.
    pub cell: Option<CellLevelLayout>,
    /// Every graceful-degradation event of this run, in stage order.
    /// Empty when no stage hit a resource limit; a run under a tight
    /// [`FlowBudget`] still returns `Ok` and records what it gave up
    /// here.
    pub degradations: Vec<Degradation>,
    /// Per-stage telemetry (wall times, SAT statistics, counters).
    pub report: FlowReport,
}

impl FlowResult {
    /// Serializes the SiDB layout as SiQAD `.sqd` XML (step 8).
    ///
    /// Returns `None` when the library was not applied.
    pub fn to_sqd(&self) -> Option<String> {
        self.cell
            .as_ref()
            .map(|c| bestagon_lib::sqd::to_sqd_string(&c.sidb))
    }

    /// Exports the optimized network as gate-level Verilog.
    pub fn to_verilog(&self) -> String {
        fcn_logic::verilog::write_verilog(&self.name, &self.optimized)
    }

    /// Whether any stage degraded (see [`FlowResult::degradations`]).
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

/// A flow failure, tagged by the step that raised it.
#[derive(Debug)]
pub enum FlowError {
    /// Step 1: specification parsing (Verilog).
    Parse(ParseVerilogError),
    /// Step 1: specification parsing (BLIF).
    ParseBlif(fcn_logic::blif::ParseBlifError),
    /// Step 3: technology mapping.
    Map(MapError),
    /// Step 4: netlist not placeable (dangling input etc.).
    NetGraph(fcn_pnr::netgraph::NetGraphError),
    /// Step 4: no feasible layout.
    Pnr(PnrError),
    /// Step 4: the `SURFACE_DEFECTS` spec or defect file is malformed.
    Surface(sidb_sim::SurfaceSpecError),
    /// Step 5: equivalence checking failed to run.
    Equivalence(EquivError),
    /// Step 5: the layout does not implement the specification — a flow
    /// bug, surfaced loudly.
    NotEquivalent {
        /// The distinguishing input assignment.
        counterexample: Vec<bool>,
    },
    /// Step 7: missing library tile.
    Apply(ApplyError),
    /// Any step: a panic was caught at the stage boundary (or inside a
    /// portfolio worker) and converted into this typed error instead of
    /// unwinding through the caller. Sibling workers are cancelled
    /// before it is reported.
    Internal {
        /// The stage span name, e.g. `"step4:pnr"`.
        stage: &'static str,
        /// The panic payload, rendered as a string.
        payload: String,
    },
}

impl core::fmt::Display for FlowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "parse: {e}"),
            FlowError::ParseBlif(e) => write!(f, "parse: {e}"),
            FlowError::Map(e) => write!(f, "technology mapping: {e}"),
            FlowError::NetGraph(e) => write!(f, "netlist: {e}"),
            FlowError::Pnr(e) => write!(f, "physical design: {e}"),
            FlowError::Surface(e) => write!(f, "surface defects: {e}"),
            FlowError::Equivalence(e) => write!(f, "equivalence checking: {e}"),
            FlowError::NotEquivalent { counterexample } => {
                write!(f, "layout differs from specification at {counterexample:?}")
            }
            FlowError::Apply(e) => write!(f, "gate-library application: {e}"),
            FlowError::Internal { stage, payload } => {
                write!(f, "internal failure in {stage}: {payload}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl FlowError {
    /// A stable machine-readable discriminant, one per variant. Server
    /// responses and logs key on these; they are part of the wire
    /// protocol and never change meaning.
    pub fn code(&self) -> &'static str {
        match self {
            FlowError::Parse(_) => "parse",
            FlowError::ParseBlif(_) => "parse-blif",
            FlowError::Map(_) => "map",
            FlowError::NetGraph(_) => "netgraph",
            FlowError::Pnr(_) => "pnr",
            FlowError::Surface(_) => "surface",
            FlowError::Equivalence(_) => "equiv",
            FlowError::NotEquivalent { .. } => "not-equivalent",
            FlowError::Apply(_) => "apply",
            FlowError::Internal { .. } => "internal",
        }
    }

    /// The error as a JSON object with stable field names: always
    /// `code` and `message`; `stage` for [`FlowError::Internal`] and
    /// `counterexample` for [`FlowError::NotEquivalent`].
    pub fn to_value(&self) -> fcn_telemetry::json::Value {
        use fcn_telemetry::json::Value;
        let mut fields = vec![
            ("code".to_owned(), Value::Str(self.code().to_owned())),
            ("message".to_owned(), Value::Str(self.to_string())),
        ];
        match self {
            FlowError::Internal { stage, .. } => {
                fields.push(("stage".to_owned(), Value::Str((*stage).to_owned())));
            }
            FlowError::NotEquivalent { counterexample } => {
                fields.push((
                    "counterexample".to_owned(),
                    Value::Arr(counterexample.iter().map(|&b| Value::Bool(b)).collect()),
                ));
            }
            _ => {}
        }
        Value::Obj(fields)
    }
}

/// The circuit specification a [`FlowRequest`] starts from.
///
/// `#[non_exhaustive]`: front-end formats may be added without breaking
/// downstream matches.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum FlowInput {
    /// Gate-level Verilog source (flow step 1 parses it).
    Verilog(String),
    /// BLIF source (flow step 1 parses it).
    Blif(String),
    /// An already parsed XAG, named for reports and exports.
    Netlist {
        /// Circuit name.
        name: String,
        /// The network itself.
        xag: Xag,
    },
}

impl FlowInput {
    /// A stable label for the input format (`"verilog"`, `"blif"`,
    /// `"netlist"`), used in protocol messages and fingerprints.
    pub fn kind(&self) -> &'static str {
        match self {
            FlowInput::Verilog(_) => "verilog",
            FlowInput::Blif(_) => "blif",
            FlowInput::Netlist { .. } => "netlist",
        }
    }
}

/// One complete design job: a circuit specification plus the options to
/// run the flow under. This is the unit the design server queues, the
/// content-addressed cache keys on ([`FlowRequest::fingerprint`]), and
/// the single entry point the former `run_flow*` free functions folded
/// into.
///
/// `#[non_exhaustive]`: construct with [`FlowRequest::verilog`],
/// [`FlowRequest::blif`], [`FlowRequest::netlist`], or
/// [`FlowRequest::new`], then chain [`FlowRequest::with_options`].
///
/// # Examples
///
/// ```
/// use bestagon_core::flow::{FlowOptions, FlowRequest};
/// use fcn_logic::network::Xag;
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.or(a, b);
/// xag.primary_output("f", f);
/// let result = FlowRequest::netlist("or2", xag)
///     .with_options(FlowOptions::default())
///     .execute()?;
/// assert!(result.layout.verify().is_empty());
/// assert!(result.cell.expect("library applied").num_sidbs() > 0);
/// # Ok::<(), bestagon_core::flow::FlowError>(())
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FlowRequest {
    /// The circuit specification.
    pub input: FlowInput,
    /// The options the flow runs under.
    pub options: FlowOptions,
}

impl FlowRequest {
    /// A request over any [`FlowInput`], with default options.
    pub fn new(input: FlowInput) -> Self {
        FlowRequest {
            input,
            options: FlowOptions::default(),
        }
    }

    /// A request from gate-level Verilog source.
    pub fn verilog(source: impl Into<String>) -> Self {
        FlowRequest::new(FlowInput::Verilog(source.into()))
    }

    /// A request from BLIF source.
    pub fn blif(source: impl Into<String>) -> Self {
        FlowRequest::new(FlowInput::Blif(source.into()))
    }

    /// A request from an already parsed XAG.
    pub fn netlist(name: impl Into<String>, xag: Xag) -> Self {
        FlowRequest::new(FlowInput::Netlist {
            name: name.into(),
            xag,
        })
    }

    /// Replaces the options wholesale (chain after a constructor).
    #[must_use]
    pub fn with_options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full eight-step flow on this request.
    ///
    /// # Errors
    ///
    /// Any step's failure is reported as a [`FlowError`].
    pub fn execute(&self) -> Result<FlowResult, FlowError> {
        match &self.input {
            FlowInput::Verilog(source) => run_instrumented(
                || parse_verilog(source).map_err(FlowError::Parse),
                &self.options,
            ),
            FlowInput::Blif(source) => run_instrumented(
                || fcn_logic::blif::parse_blif(source).map_err(FlowError::ParseBlif),
                &self.options,
            ),
            FlowInput::Netlist { name, xag } => {
                run_instrumented(|| Ok((name.clone(), xag.clone())), &self.options)
            }
        }
    }

    /// Content fingerprint of this request: the canonical input text
    /// plus every option that shapes the *result* — and none that only
    /// shape the *work* (thread count, incremental mode, caches, pools,
    /// and the wall-clock deadline are excluded; resource caps that can
    /// change what a stage produces are included). Two requests with
    /// equal fingerprints produce byte-identical results, which is what
    /// lets the server answer the second one from memory.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.bytes(self.input.kind().as_bytes());
        match &self.input {
            FlowInput::Verilog(source) | FlowInput::Blif(source) => h.bytes(source.as_bytes()),
            FlowInput::Netlist { name, xag } => {
                h.bytes(fcn_logic::verilog::write_verilog(name, xag).as_bytes())
            }
        };
        let o = &self.options;
        h.bytes(format!("{:?}", o.rewrite).as_bytes());
        h.bytes(format!("{:?}", o.map).as_bytes());
        h.bytes(format!("{:?}", o.pnr).as_bytes());
        h.bytes(format!("{:?}", (o.verify, o.apply_library, o.tile_validation)).as_bytes());
        let b = &o.budget;
        h.bytes(
            format!(
                "{:?}",
                (
                    b.rewrite_iterations,
                    b.sat_conflicts_per_probe,
                    b.sat_conflicts_total,
                    b.equiv_conflicts,
                    b.sim_steps,
                )
            )
            .as_bytes(),
        );
        // The surface the flow will actually design around: the explicit
        // option, else the environment fallback step 4 consults.
        match &o.surface {
            Some(map) => h.bytes(format!("{:?}", map).as_bytes()),
            None => match std::env::var("SURFACE_DEFECTS") {
                Ok(spec) if !spec.trim().is_empty() => h.bytes(spec.trim().as_bytes()),
                _ => h.bytes(b"pristine"),
            },
        };
        h.finish()
    }
}

/// FNV-1a over the request content — a fixed algorithm (unlike
/// `DefaultHasher`) so fingerprints are comparable across runs and Rust
/// releases.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Runs the flow from Verilog source.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
#[deprecated(
    since = "0.2.0",
    note = "construct a `FlowRequest` and call `execute()`"
)]
pub fn run_flow_from_verilog(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::verilog(source)
        .with_options(options.clone())
        .execute()
}

/// Runs the flow from BLIF source.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
#[deprecated(
    since = "0.2.0",
    note = "construct a `FlowRequest` and call `execute()`"
)]
pub fn run_flow_from_blif(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::blif(source)
        .with_options(options.clone())
        .execute()
}

/// Runs the flow from an already parsed XAG.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
#[deprecated(
    since = "0.2.0",
    note = "construct a `FlowRequest` and call `execute()`"
)]
pub fn run_flow(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    FlowRequest::netlist(name, xag.clone())
        .with_options(options.clone())
        .execute()
}

/// Renders a caught panic payload for [`FlowError::Internal`].
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one flow stage inside its telemetry span with panic isolation: a
/// panic — organic, or injected at the stage's fault point (the span
/// name doubles as the injection point) — is caught at the boundary and
/// surfaces as [`FlowError::Internal`] instead of unwinding through the
/// caller. The closure receives any *non-panic* fault scheduled at the
/// boundary for stage-specific interpretation; stages without a
/// meaningful corruption or exhaustion story ignore it (the engine-level
/// points `msat.search`, `pnr.probe`, `equiv.miter`, and `sidb.sweep`
/// cover those classes where they matter).
fn stage<T>(
    name: &'static str,
    run: impl FnOnce(Option<Fault>) -> Result<T, FlowError>,
) -> Result<T, FlowError> {
    let _span = fcn_telemetry::span(name);
    match catch_unwind(AssertUnwindSafe(|| {
        let injected = fault::check(name); // panics here on an injected `panic`
        run(injected)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let payload = payload_string(payload);
            fcn_telemetry::note("panic", payload.clone());
            Err(FlowError::Internal {
                stage: name,
                payload,
            })
        }
    }
}

/// Records one degradation event: telemetry note in the current stage
/// span, plus the structured record on the result.
fn record(degradations: &mut Vec<Degradation>, d: Degradation) {
    fcn_telemetry::note(
        "degraded",
        format!("{}: {} ({})", d.trigger, d.action, d.detail),
    );
    degradations.push(d);
}

/// Installs a per-run collector, times step 1 (`parse`), runs steps 2–8,
/// and attaches the finished [`FlowReport`] to the result. The report is
/// also emitted to stderr per the `TELEMETRY` environment variable —
/// including on failure, so aborted runs still leave a trace.
///
/// When no fault plan is installed on this thread, the `FAULT_INJECT`
/// environment variable is consulted once per run
/// ([`fault::FaultPlan::from_env`]) so CI can exercise the degradation
/// edges without code changes; a plan installed by the caller (tests)
/// takes precedence.
fn run_instrumented(
    parse: impl FnOnce() -> Result<(String, Xag), FlowError>,
    options: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let env_plan = match fault::current() {
        Some(_) => None,
        None => fault::FaultPlan::from_env(),
    };
    let _fault_scope = env_plan.map(fault::install);
    let collector = Arc::new(fcn_telemetry::Collector::new("flow"));
    let outcome = fcn_telemetry::with_collector(&collector, || {
        let (name, xag) = stage("step1:parse", |_| {
            let (name, xag) = parse()?;
            fcn_telemetry::counter("xag.inputs", xag.num_pis() as u64);
            fcn_telemetry::counter("xag.outputs", xag.num_pos() as u64);
            fcn_telemetry::counter("xag.gates", xag.num_gates() as u64);
            Ok((name, xag))
        })?;
        fcn_telemetry::note("circuit", name.clone());
        run_flow_steps(&name, &xag, options)
    });
    collector.finish();
    let report = collector.report();
    fcn_telemetry::emit(&report);
    // Fold the run into the process-wide aggregate (counters,
    // histograms, flow wall times) — off the hot path, after the
    // per-run report is frozen.
    fcn_telemetry::Registry::global().absorb_report(&report);
    outcome.map(|mut result| {
        result.report = report;
        result
    })
}

/// Paper steps 2–8, each wrapped in its stage span and panic boundary
/// (see [`stage`]). The spans exist even for skipped steps so every
/// report lists the same eight stages. Budget and deadline exhaustion
/// degrade per the ladder documented on [`FlowBudget`]: exact P&R falls
/// back to the heuristic engine, verification downgrades to a bounded
/// check with an [`Equivalence::Unknown`] verdict, and every event is
/// recorded on [`FlowResult::degradations`].
fn run_flow_steps(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    let budget = options.budget;
    let mut degradations: Vec<Degradation> = Vec::new();

    // Step 2: cut rewriting.
    let gates_before_rewrite = xag.cleaned().num_gates();
    let (optimized, gates_after_rewrite, depth) = stage("step2:rewrite", |_| {
        let rewrite_opts = match &options.rewrite {
            Some(opts) if budget.deadline.expired() => {
                record(
                    &mut degradations,
                    Degradation {
                        stage: "step2:rewrite",
                        trigger: DegradeTrigger::Deadline,
                        action: "skipped logic rewriting".into(),
                        detail: format!(
                            "deadline expired before rewriting; configured {} iterations",
                            opts.iterations
                        ),
                    },
                );
                None
            }
            Some(opts) => {
                let mut opts = *opts;
                if let Some(cap) = budget.rewrite_iterations {
                    if cap < opts.iterations {
                        record(
                            &mut degradations,
                            Degradation {
                                stage: "step2:rewrite",
                                trigger: DegradeTrigger::Budget,
                                action: format!("clamped rewrite iterations to {cap}"),
                                detail: format!("budget allows {cap} of {}", opts.iterations),
                            },
                        );
                        opts.iterations = cap;
                    }
                }
                Some(opts)
            }
            None => None,
        };
        let optimized = match rewrite_opts {
            Some(opts) => rewrite(xag, opts),
            None => xag.cleaned(),
        };
        let gates_after_rewrite = optimized.num_gates();
        let depth = optimized.depth();
        fcn_telemetry::counter("gates.before", gates_before_rewrite as u64);
        fcn_telemetry::counter("gates.after", gates_after_rewrite as u64);
        fcn_telemetry::counter("depth", depth as u64);
        Ok((optimized, gates_after_rewrite, depth))
    })?;

    // Step 3: technology mapping.
    let graph = stage("step3:techmap", |_| {
        let mapped = map_xag(&optimized, options.map).map_err(FlowError::Map)?;
        let graph = NetGraph::new(mapped).map_err(FlowError::NetGraph)?;
        fcn_telemetry::counter("netgraph.edges", graph.edges.len() as u64);
        Ok(graph)
    })?;

    // Step 4: placement & routing.
    let (layout, exact, surface) = stage("step4:pnr", |_| {
        // Resolve the surface to design around: an explicit option wins,
        // then the `SURFACE_DEFECTS` environment variable; neither leaves
        // the step byte-identical to the pristine flow.
        let surface: Option<sidb_sim::DefectMap> = match &options.surface {
            Some(map) => Some(map.clone()),
            None => match std::env::var("SURFACE_DEFECTS") {
                Ok(spec) if !spec.trim().is_empty() => {
                    Some(sidb_sim::DefectMap::from_spec(spec.trim()).map_err(FlowError::Surface)?)
                }
                _ => None,
            },
        };
        // Tiles whose SiDB footprint a defect perturbs beyond the
        // threshold, over the largest region the scan may explore —
        // twice the area bound, so the defect-avoidance retry below
        // never places on an unscanned tile.
        let scan_extent = match options.pnr {
            PnrMethod::Exact { max_area } | PnrMethod::ExactWithFallback { max_area } => {
                (max_area * 2) as i32
            }
            PnrMethod::Heuristic => 0,
        };
        let mut blacklist: Vec<(i32, i32)> = Vec::new();
        if let Some(map) = &surface {
            // The surface fault point, exercised only when a surface is
            // actually configured.
            match fault::check("surface.defect") {
                Some(Fault::Malform) => {
                    // Injected corruption: the documented recovery for a
                    // bad surface description is the typed spec error.
                    return Err(FlowError::Surface(
                        sidb_sim::DefectMap::parse_spec("corrupt:spec")
                            .expect_err("deliberately malformed spec"),
                    ));
                }
                Some(Fault::Exhaust) => {
                    // Injected exhaustion: every candidate tile reads as
                    // compromised — the unplaceable-surface edge.
                    for y in 0..scan_extent {
                        for x in 0..scan_extent {
                            blacklist.push((x, y));
                        }
                    }
                }
                _ => {
                    blacklist = map.compromised_hex_tiles(
                        &bestagon_lib::geometry::validation_params(),
                        DEFECT_THRESHOLD_EV,
                        scan_extent,
                        scan_extent,
                    );
                }
            }
            fcn_telemetry::counter("defects.count", map.len() as u64);
            fcn_telemetry::counter("defects.blacklisted", blacklist.len() as u64);
            fcn_telemetry::histogram("defects.blacklisted", blacklist.len() as u64);
        }
        let exact_options = |max_area: u64, blacklist: &[(i32, i32)]| {
            let mut eo = ExactOptions {
                max_area,
                num_threads: options
                    .pnr_threads
                    .unwrap_or_else(fcn_pnr::default_num_threads),
                incremental: options
                    .pnr_incremental
                    .unwrap_or_else(fcn_pnr::default_incremental),
                deadline: budget.deadline,
                max_conflicts_total: budget.sat_conflicts_total,
                session_pool: options.session_pool.clone(),
                ..Default::default()
            }
            .with_blacklist(blacklist.to_vec());
            if let Some(per_probe) = budget.sat_conflicts_per_probe {
                eo.max_conflicts_per_ratio = per_probe;
            }
            eo
        };
        // A worker panic is an internal failure, not a feasibility
        // verdict: it is reported typed (siblings already cancelled by
        // the portfolio) rather than absorbed by the fallback ladder.
        let internal = |e: PnrError| match e {
            PnrError::WorkerPanic { payload } => FlowError::Internal {
                stage: "step4:pnr",
                payload,
            },
            other => FlowError::Pnr(other),
        };
        // Defect-avoidance relaxation: when the blacklist makes the scan
        // infeasible, grow the area bound once (routing around defects
        // costs area), then place defect-blind as the last resort —
        // recorded as degradations, never an error of the surface alone.
        let defect_aware_exact = |max_area: u64,
                                  degradations: &mut Vec<Degradation>|
         -> Result<fcn_pnr::PnrOutcome<HexGateLayout>, PnrError> {
            let first = exact_pnr(&graph, &exact_options(max_area, &blacklist));
            match first {
                Err(PnrError::NoFeasibleRatio { .. }) if !blacklist.is_empty() => {
                    record(
                        degradations,
                        Degradation {
                            stage: "step4:pnr",
                            trigger: DegradeTrigger::DefectAvoidance,
                            action: format!(
                                "grew the area bound to {} tiles to route around defects",
                                max_area * 2
                            ),
                            detail: format!(
                                "{} tiles blacklisted; no feasible layout within {max_area} tiles",
                                blacklist.len()
                            ),
                        },
                    );
                    match exact_pnr(&graph, &exact_options(max_area * 2, &blacklist)) {
                        Err(PnrError::NoFeasibleRatio { .. }) => {
                            record(
                                degradations,
                                Degradation {
                                    stage: "step4:pnr",
                                    trigger: DegradeTrigger::DefectAvoidance,
                                    action: "placed defect-blind: the surface admits no \
                                                 avoiding layout"
                                        .into(),
                                    detail: format!(
                                        "{} tiles blacklisted up to area {}",
                                        blacklist.len(),
                                        max_area * 2
                                    ),
                                },
                            );
                            fcn_telemetry::note("defects.placement", "defect-blind");
                            exact_pnr(&graph, &exact_options(max_area, &[]))
                        }
                        other => other,
                    }
                }
                other => other,
            }
        };
        let (layout, exact) = match options.pnr {
            PnrMethod::Exact { max_area } => {
                let r = defect_aware_exact(max_area, &mut degradations).map_err(internal)?;
                (r.layout, true)
            }
            PnrMethod::Heuristic => {
                if surface.is_some() {
                    // The one-pass baseline has no notion of forbidden
                    // tiles; step 7 still reports what it hit.
                    fcn_telemetry::note("defects.placement", "defect-blind");
                }
                (heuristic_pnr(&graph).map_err(FlowError::Pnr)?, false)
            }
            PnrMethod::ExactWithFallback { max_area } => {
                let attempt = if budget.deadline.expired() {
                    Err(PnrError::DeadlineExpired)
                } else {
                    defect_aware_exact(max_area, &mut degradations)
                };
                match attempt {
                    Ok(r) => (r.layout, true),
                    Err(PnrError::WorkerPanic { payload }) => {
                        return Err(FlowError::Internal {
                            stage: "step4:pnr",
                            payload,
                        });
                    }
                    Err(e) => {
                        record(
                            &mut degradations,
                            Degradation {
                                stage: "step4:pnr",
                                trigger: match &e {
                                    PnrError::DeadlineExpired => DegradeTrigger::Deadline,
                                    PnrError::ConflictBudgetExhausted => DegradeTrigger::Budget,
                                    _ => DegradeTrigger::EngineError,
                                },
                                action: "fell back to heuristic placement".into(),
                                detail: e.to_string(),
                            },
                        );
                        if surface.is_some() {
                            fcn_telemetry::note("defects.placement", "defect-blind");
                        }
                        (heuristic_pnr(&graph).map_err(FlowError::Pnr)?, false)
                    }
                }
            }
        };
        fcn_telemetry::note("engine", if exact { "exact" } else { "heuristic" });
        fcn_telemetry::note("ratio", layout.ratio().label());
        Ok((layout, exact, surface))
    })?;

    // Step 5: formal verification.
    let equivalence = stage("step5:equiv", |injected| {
        if !options.verify {
            return Ok(None);
        }
        let bounded = budget.equiv_conflicts.is_some() || budget.deadline.is_bounded();
        let verdict = if matches!(injected, Some(Fault::Malform)) {
            // Injected corruption: hand the checker a deliberately
            // malformed extraction. The documented recovery is the
            // typed `MalformedNetwork` error — never a panic.
            let mut corrupted =
                fcn_equiv::extract_network(&layout).map_err(FlowError::Equivalence)?;
            corrupted.add_node(
                fcn_logic::GateKind::Po,
                vec![fcn_logic::techmap::MappedSignal {
                    node: fcn_logic::techmap::MappedId(0),
                    output: u8::MAX,
                }],
                Some("injected-malform".into()),
            );
            fcn_equiv::check_equivalence_extracted_bounded(
                &optimized,
                &corrupted,
                budget.equiv_conflicts,
                budget.deadline,
            )
            .map_err(FlowError::Equivalence)?
        } else if bounded {
            check_equivalence_bounded(&optimized, &layout, budget.equiv_conflicts, budget.deadline)
                .map_err(FlowError::Equivalence)?
        } else {
            // The unbounded path is the pre-budget code path, verbatim.
            check_equivalence(&optimized, &layout).map_err(FlowError::Equivalence)?
        };
        match &verdict {
            Equivalence::NotEquivalent { counterexample } => {
                return Err(FlowError::NotEquivalent {
                    counterexample: counterexample.clone(),
                });
            }
            Equivalence::Unknown { limit } => {
                record(
                    &mut degradations,
                    Degradation {
                        stage: "step5:equiv",
                        trigger: match limit {
                            MiterLimit::Deadline => DegradeTrigger::Deadline,
                            MiterLimit::Conflicts => DegradeTrigger::Budget,
                        },
                        action: "verification downgraded to a bounded check".into(),
                        detail: format!("verdict unknown: {limit}"),
                    },
                );
            }
            Equivalence::Equivalent => {}
        }
        Ok(Some(verdict))
    })?;

    // Step 6: super-tile clock-zone expansion.
    let supertiles = stage("step6:supertiles", |_| {
        let plan = plan_supertiles(&layout);
        fcn_telemetry::counter("electrodes", plan.num_electrodes as u64);
        fcn_telemetry::counter("rows_per_supertile", plan.rows_per_supertile as u64);
        Ok(plan)
    })?;

    // Step 7: gate-library application (and optional physical
    // re-validation of the distinct tile designs the layout uses).
    let cell = stage("step7:apply", |_| {
        if !options.apply_library {
            return Ok(None);
        }
        let library = BestagonLibrary::new();
        let cell = apply_gate_library(&layout, &library).map_err(FlowError::Apply)?;
        fcn_telemetry::counter("sidbs", cell.num_sidbs() as u64);
        if let Some(map) = &surface {
            // Re-validate the placement against the surface: count the
            // occupied tiles a defect still perturbs beyond threshold.
            // Zero for a successful defect-avoiding placement; nonzero
            // measures the exposure of a defect-blind fallback.
            let ratio = layout.ratio();
            let compromised: std::collections::HashSet<(i32, i32)> = map
                .compromised_hex_tiles(
                    &bestagon_lib::geometry::validation_params(),
                    DEFECT_THRESHOLD_EV,
                    ratio.width as i32,
                    ratio.height as i32,
                )
                .into_iter()
                .collect();
            let hit = layout
                .occupied_tiles()
                .filter(|(c, _)| compromised.contains(&(c.x, c.y)))
                .count();
            fcn_telemetry::counter("defects.compromised", hit as u64);
        }
        if options.tile_validation {
            if budget.deadline.expired() {
                record(
                    &mut degradations,
                    Degradation {
                        stage: "step7:apply",
                        trigger: DegradeTrigger::Deadline,
                        action: "skipped physical tile validation".into(),
                        detail: "deadline expired before validation".into(),
                    },
                );
            } else {
                let designs = bestagon_lib::apply::used_designs(&layout, &library)
                    .map_err(FlowError::Apply)?;
                let mut sim = sidb_sim::SimParams::new(bestagon_lib::geometry::validation_params())
                    .with_engine(sidb_sim::SimEngine::QuickExact);
                let cache = options
                    .sim_cache
                    .clone()
                    .or_else(sidb_sim::SimCache::from_env);
                if let Some(cache) = cache {
                    sim = sim.with_cache(cache);
                }
                let mut validated = 0u64;
                let mut failing: Vec<String> = Vec::new();
                for design in &designs {
                    if budget.deadline.expired() {
                        record(
                            &mut degradations,
                            Degradation {
                                stage: "step7:apply",
                                trigger: DegradeTrigger::Deadline,
                                action: "stopped tile validation early".into(),
                                detail: format!(
                                    "validated {validated} of {} designs",
                                    designs.len()
                                ),
                            },
                        );
                        break;
                    }
                    if !design.check_operational_with(&sim).is_operational() {
                        failing.push(design.name.clone());
                    }
                    validated += 1;
                }
                fcn_telemetry::counter("tiles.validated", validated);
                if !failing.is_empty() {
                    fcn_telemetry::counter("tiles.failing", failing.len() as u64);
                    fcn_telemetry::note("tiles.failing", failing.join(", "));
                }
            }
        }
        Ok(Some(cell))
    })?;

    // Step 8: export. `FlowResult::to_sqd` re-renders on demand; this
    // serialization is only for timing and sizing the artifact.
    stage("step8:export", |_| {
        if let Some(cell) = &cell {
            let sqd = bestagon_lib::sqd::to_sqd_string(&cell.sidb);
            fcn_telemetry::counter("sqd.bytes", sqd.len() as u64);
        }
        Ok(())
    })?;

    // Root-level resilience counters, emitted only when the run was
    // actually bounded or degraded so an unconstrained run's report is
    // unchanged.
    if !degradations.is_empty() {
        fcn_telemetry::counter("flow.degraded", degradations.len() as u64);
    }
    budget
        .deadline
        .record_remaining("flow.deadline_remaining_ms");

    Ok(FlowResult {
        name: name.to_owned(),
        optimized,
        gates_before_rewrite,
        gates_after_rewrite,
        depth,
        layout,
        exact,
        equivalence,
        supertiles,
        cell,
        degradations,
        report: FlowReport::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::benchmark;

    /// The former `run_flow` shape, on the request API.
    fn run(name: &str, xag: &Xag, options: FlowOptions) -> Result<FlowResult, FlowError> {
        FlowRequest::netlist(name, xag.clone())
            .with_options(options)
            .execute()
    }

    #[test]
    fn flow_handles_xor2_end_to_end() {
        let b = benchmark("xor2");
        let r = run("xor2", &b.xag, FlowOptions::default()).expect("flow succeeds");
        assert!(r.layout.verify().is_empty());
        assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
        assert!(r.supertiles.is_fabricable());
        let cell = r.cell.as_ref().expect("library applied");
        assert!(cell.num_sidbs() > 20);
        assert!(r.to_sqd().expect("sqd").contains("<dbdot>"));
        assert_eq!(
            r.report.stages(),
            [
                "step1:parse",
                "step2:rewrite",
                "step3:techmap",
                "step4:pnr",
                "step5:equiv",
                "step6:supertiles",
                "step7:apply",
                "step8:export"
            ]
        );
        let pnr = r.report.root.child("step4:pnr").expect("pnr stage");
        assert!(pnr.counters.contains_key("sat.conflicts") || !pnr.children.is_empty());
    }

    #[test]
    fn exact_flow_matches_paper_ratio_for_xor2() {
        let b = benchmark("xor2");
        let r = run(
            "xor2",
            &b.xag,
            FlowOptions::new().with_pnr(PnrMethod::Exact { max_area: 60 }),
        )
        .expect("flow succeeds");
        assert!(r.exact);
        // Paper Table 1: 2 × 3.
        assert_eq!((r.layout.ratio().width, r.layout.ratio().height), (2, 3));
    }

    #[test]
    fn heuristic_flow_is_larger_but_correct() {
        let b = benchmark("par_gen");
        let exact = run(
            "par_gen",
            &b.xag,
            FlowOptions::new().with_pnr(PnrMethod::Exact { max_area: 80 }),
        )
        .expect("exact flow");
        let heur = run(
            "par_gen",
            &b.xag,
            FlowOptions::new().with_pnr(PnrMethod::Heuristic),
        )
        .expect("heuristic flow");
        assert!(heur.layout.ratio().tile_count() >= exact.layout.ratio().tile_count());
        assert_eq!(heur.equivalence, Some(Equivalence::Equivalent));
    }

    #[test]
    fn rewrite_ablation_reports_gate_counts() {
        let b = benchmark("xor5_majority");
        let with = run(
            "x",
            &b.xag,
            FlowOptions::new()
                .with_pnr(PnrMethod::Heuristic)
                .without_library(),
        )
        .expect("flow");
        let without = run(
            "x",
            &b.xag,
            FlowOptions::new()
                .without_rewrite()
                .with_pnr(PnrMethod::Heuristic)
                .without_library(),
        )
        .expect("flow");
        assert!(with.gates_after_rewrite <= without.gates_after_rewrite);
        assert_eq!(with.gates_before_rewrite, without.gates_before_rewrite);
    }

    #[test]
    fn tile_validation_reports_simulation_counters() {
        let b = benchmark("xor2");
        let r = run(
            "xor2",
            &b.xag,
            FlowOptions::new()
                .with_pnr(PnrMethod::Heuristic)
                .with_tile_validation(),
        )
        .expect("flow succeeds");
        assert!(r.degradations.is_empty());
        let apply = r.report.root.child("step7:apply").expect("apply stage");
        assert!(*apply.counters.get("tiles.validated").unwrap_or(&0) > 0);
        // The XOR tile is a known-non-operational design (EXPERIMENTS.md,
        // Figure 5); validation reports it honestly rather than hiding it.
        assert!(*apply.counters.get("tiles.failing").unwrap_or(&0) >= 1);
        assert!(r.report.counter_total("sidb.visited") > 0);
    }

    #[test]
    fn surface_aware_flow_reports_defect_counters() {
        let b = benchmark("xor2");
        let surface = sidb_sim::DefectMap::random(7, 5e-5, &sidb_sim::DefectKind::ALL);
        let defects = surface.len() as u64;
        assert!(defects > 0, "seed 7 at 5e-5 populates the region");
        let r =
            run("xor2", &b.xag, FlowOptions::new().with_surface(surface)).expect("flow succeeds");
        let pnr = r.report.root.child("step4:pnr").expect("pnr stage");
        assert_eq!(pnr.counters.get("defects.count"), Some(&defects));
        assert!(pnr.counters.contains_key("defects.blacklisted"));
        let apply = r.report.root.child("step7:apply").expect("apply stage");
        // An avoiding placement leaves no occupied tile compromised.
        if r.exact && r.degradations.is_empty() {
            assert_eq!(apply.counters.get("defects.compromised"), Some(&0));
        } else {
            assert!(apply.counters.contains_key("defects.compromised"));
        }
    }

    #[test]
    fn pristine_surface_leaves_report_untouched() {
        let b = benchmark("xor2");
        let base = run("xor2", &b.xag, FlowOptions::default()).expect("flow");
        let with = run(
            "xor2",
            &b.xag,
            FlowOptions::default().with_surface(sidb_sim::DefectMap::pristine()),
        )
        .expect("flow");
        assert_eq!(base.layout.ratio(), with.layout.ratio());
        let pnr = with.report.root.child("step4:pnr").expect("pnr stage");
        assert_eq!(pnr.counters.get("defects.count"), Some(&0));
        assert_eq!(pnr.counters.get("defects.blacklisted"), Some(&0));
    }

    #[test]
    fn verilog_entry_point_works() {
        let r = FlowRequest::verilog(
            "module and2 (a, b, f); input a, b; output f; assign f = a & b; endmodule",
        )
        .with_options(FlowOptions::new().without_library())
        .execute()
        .expect("flow");
        assert_eq!(r.name, "and2");
    }

    #[test]
    fn deprecated_wrappers_still_run() {
        #[allow(deprecated)]
        let r = run_flow_from_verilog(
            "module buf1 (a, f); input a; output f; assign f = a; endmodule",
            &FlowOptions::new().without_library().without_verify(),
        )
        .expect("flow");
        assert_eq!(r.name, "buf1");
    }

    #[test]
    fn fingerprint_tracks_content_not_performance_knobs() {
        let b = benchmark("xor2");
        let base = FlowRequest::netlist("xor2", b.xag.clone());
        // Performance knobs (threads, incremental, caches, pools,
        // deadline) leave the fingerprint unchanged …
        let tuned = FlowRequest::netlist("xor2", b.xag.clone()).with_options(
            FlowOptions::new()
                .with_threads(4)
                .with_incremental(false)
                .with_sim_cache(sidb_sim::SimCache::new())
                .with_session_pool(fcn_pnr::SessionPool::new())
                .with_deadline_ms(1_000),
        );
        assert_eq!(base.fingerprint(), tuned.fingerprint());
        // … while anything that shapes the result moves it.
        let other_input = FlowRequest::netlist("xor3", b.xag.clone());
        assert_ne!(base.fingerprint(), other_input.fingerprint());
        let other_options = FlowRequest::netlist("xor2", b.xag.clone())
            .with_options(FlowOptions::new().without_verify());
        assert_ne!(base.fingerprint(), other_options.fingerprint());
        // Stable across calls.
        assert_eq!(base.fingerprint(), base.fingerprint());
    }

    #[test]
    fn flow_error_codes_are_stable_and_json_parseable() {
        let err = FlowRequest::verilog("module broken (")
            .execute()
            .expect_err("parse fails");
        assert_eq!(err.code(), "parse");
        let text = err.to_value().serialize();
        let parsed = fcn_telemetry::json::parse(&text).expect("well-formed JSON");
        assert_eq!(parsed.get("code").and_then(|v| v.as_str()), Some("parse"));
        assert!(parsed
            .get("message")
            .and_then(|v| v.as_str())
            .is_some_and(|m| !m.is_empty()));
        let not_equiv = FlowError::NotEquivalent {
            counterexample: vec![true, false],
        };
        assert_eq!(not_equiv.code(), "not-equivalent");
        let v = fcn_telemetry::json::parse(&not_equiv.to_value().serialize()).expect("json");
        assert_eq!(
            v.get("counterexample")
                .and_then(|c| c.as_array())
                .map(<[_]>::len),
            Some(2)
        );
    }
}
