//! The end-to-end design flow (paper Section 4.2).
//!
//! Every run installs an ambient [`fcn_telemetry::Collector`] and wraps
//! the paper's eight steps in spans (`step1:parse` … `step8:export`), so
//! the instrumented layers below (rewriting, SAT-based P&R, equivalence
//! checking, physical simulation) attach their counters to the right
//! stage. The resulting [`FlowReport`] is returned on [`FlowResult`] and
//! emitted to stderr according to the `TELEMETRY` environment variable.

use std::sync::Arc;

use bestagon_lib::apply::{apply_gate_library, ApplyError, CellLevelLayout};
use bestagon_lib::tiles::BestagonLibrary;
use fcn_equiv::{check_equivalence, EquivError, Equivalence};
use fcn_layout::hexagonal::HexGateLayout;
use fcn_layout::supertile::{plan_supertiles, SuperTilePlan};
use fcn_logic::network::Xag;
use fcn_logic::rewrite::{rewrite, RewriteOptions};
use fcn_logic::techmap::{map_xag, MapError, MapOptions};
use fcn_logic::verilog::{parse_verilog, ParseVerilogError};
use fcn_pnr::{exact_pnr, heuristic_pnr, ExactOptions, NetGraph, PnrError};

/// Telemetry snapshot of one flow run (alias of [`fcn_telemetry::Report`]).
pub type FlowReport = fcn_telemetry::Report;

/// Which physical-design engine the flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PnrMethod {
    /// Area-minimal SAT-based search (paper flow step 4).
    Exact {
        /// Area bound in tiles for the search.
        max_area: u64,
    },
    /// The scalable one-pass baseline.
    Heuristic,
    /// Exact first; fall back to the heuristic if the bound is exhausted.
    ExactWithFallback {
        /// Area bound in tiles before falling back.
        max_area: u64,
    },
}

impl Default for PnrMethod {
    fn default() -> Self {
        PnrMethod::ExactWithFallback { max_area: 150 }
    }
}

/// Options of the full flow.
///
/// Construct with the chainable builder methods; the struct is
/// `#[non_exhaustive]`, so downstream crates cannot use literal syntax
/// and remain source-compatible when options are added:
///
/// ```
/// use bestagon_core::flow::{FlowOptions, PnrMethod};
///
/// let options = FlowOptions::new()
///     .with_pnr(PnrMethod::Exact { max_area: 60 })
///     .with_threads(4)
///     .without_verify();
/// assert!(!options.verify);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FlowOptions {
    /// Logic rewriting (step 2); `None` skips the pass (ablation A3).
    pub rewrite: Option<RewriteOptions>,
    /// Technology mapping options (step 3).
    pub map: MapOptions,
    /// Physical-design engine (step 4).
    pub pnr: PnrMethod,
    /// Worker threads for the exact engine's aspect-ratio portfolio
    /// (step 4). `None` uses [`fcn_pnr::default_num_threads`]; the
    /// layout is identical at any thread count.
    pub pnr_threads: Option<usize>,
    /// Incremental SAT probing for the exact engine (step 4): each
    /// worker keeps one solver alive across aspect-ratio probes. `None`
    /// uses [`fcn_pnr::default_incremental`] (the `PNR_INCREMENTAL`
    /// environment variable, on by default); the layout is identical
    /// either way.
    pub pnr_incremental: Option<bool>,
    /// Run SAT-based equivalence checking (step 5).
    pub verify: bool,
    /// Apply the Bestagon library for a dot-accurate layout (step 7).
    pub apply_library: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            rewrite: Some(RewriteOptions::default()),
            map: MapOptions::default(),
            pnr: PnrMethod::default(),
            pnr_threads: None,
            pnr_incremental: None,
            verify: true,
            apply_library: true,
        }
    }
}

impl FlowOptions {
    /// The default flow: rewrite, map, exact P&R with heuristic
    /// fallback, verify, apply the gate library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the logic-rewriting configuration (step 2).
    #[must_use]
    pub fn with_rewrite(mut self, rewrite: RewriteOptions) -> Self {
        self.rewrite = Some(rewrite);
        self
    }

    /// Skips logic rewriting entirely (ablation A3).
    #[must_use]
    pub fn without_rewrite(mut self) -> Self {
        self.rewrite = None;
        self
    }

    /// Selects the technology-mapping configuration (step 3).
    #[must_use]
    pub fn with_map(mut self, map: MapOptions) -> Self {
        self.map = map;
        self
    }

    /// Selects the physical-design engine (step 4).
    #[must_use]
    pub fn with_pnr(mut self, pnr: PnrMethod) -> Self {
        self.pnr = pnr;
        self
    }

    /// Pins the exact engine's portfolio to `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pnr_threads = Some(threads);
        self
    }

    /// Forces incremental (`true`) or from-scratch (`false`) SAT
    /// probing for the exact engine, overriding `PNR_INCREMENTAL`.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.pnr_incremental = Some(incremental);
        self
    }

    /// Skips SAT-based equivalence checking (step 5).
    #[must_use]
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Skips gate-library application (step 7), leaving the result at
    /// the gate level.
    #[must_use]
    pub fn without_library(mut self) -> Self {
        self.apply_library = false;
        self
    }
}

/// Everything the flow produces for one circuit.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Circuit name.
    pub name: String,
    /// The optimized XAG the layout implements (after rewriting).
    pub optimized: Xag,
    /// Gate count of the XAG before rewriting.
    pub gates_before_rewrite: usize,
    /// Gate count after rewriting.
    pub gates_after_rewrite: usize,
    /// XAG depth after rewriting.
    pub depth: usize,
    /// Gate-level layout (step 4).
    pub layout: HexGateLayout,
    /// Whether the exact engine produced the layout (false = heuristic).
    pub exact: bool,
    /// Equivalence verdict (step 5), when requested.
    pub equivalence: Option<Equivalence>,
    /// Super-tile plan (step 6).
    pub supertiles: SuperTilePlan,
    /// Dot-accurate SiDB layout (step 7), when requested.
    pub cell: Option<CellLevelLayout>,
    /// Per-stage telemetry (wall times, SAT statistics, counters).
    pub report: FlowReport,
}

impl FlowResult {
    /// Serializes the SiDB layout as SiQAD `.sqd` XML (step 8).
    ///
    /// Returns `None` when the library was not applied.
    pub fn to_sqd(&self) -> Option<String> {
        self.cell
            .as_ref()
            .map(|c| bestagon_lib::sqd::to_sqd_string(&c.sidb))
    }

    /// Exports the optimized network as gate-level Verilog.
    pub fn to_verilog(&self) -> String {
        fcn_logic::verilog::write_verilog(&self.name, &self.optimized)
    }
}

/// A flow failure, tagged by the step that raised it.
#[derive(Debug)]
pub enum FlowError {
    /// Step 1: specification parsing (Verilog).
    Parse(ParseVerilogError),
    /// Step 1: specification parsing (BLIF).
    ParseBlif(fcn_logic::blif::ParseBlifError),
    /// Step 3: technology mapping.
    Map(MapError),
    /// Step 4: netlist not placeable (dangling input etc.).
    NetGraph(fcn_pnr::netgraph::NetGraphError),
    /// Step 4: no feasible layout.
    Pnr(PnrError),
    /// Step 5: equivalence checking failed to run.
    Equivalence(EquivError),
    /// Step 5: the layout does not implement the specification — a flow
    /// bug, surfaced loudly.
    NotEquivalent {
        /// The distinguishing input assignment.
        counterexample: Vec<bool>,
    },
    /// Step 7: missing library tile.
    Apply(ApplyError),
}

impl core::fmt::Display for FlowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "parse: {e}"),
            FlowError::ParseBlif(e) => write!(f, "parse: {e}"),
            FlowError::Map(e) => write!(f, "technology mapping: {e}"),
            FlowError::NetGraph(e) => write!(f, "netlist: {e}"),
            FlowError::Pnr(e) => write!(f, "physical design: {e}"),
            FlowError::Equivalence(e) => write!(f, "equivalence checking: {e}"),
            FlowError::NotEquivalent { counterexample } => {
                write!(f, "layout differs from specification at {counterexample:?}")
            }
            FlowError::Apply(e) => write!(f, "gate-library application: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Runs the flow from Verilog source.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
pub fn run_flow_from_verilog(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    run_instrumented(|| parse_verilog(source).map_err(FlowError::Parse), options)
}

/// Runs the flow from BLIF source.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
pub fn run_flow_from_blif(source: &str, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    run_instrumented(
        || fcn_logic::blif::parse_blif(source).map_err(FlowError::ParseBlif),
        options,
    )
}

/// Runs the flow from an already parsed XAG.
///
/// # Errors
///
/// Any step's failure is reported as a [`FlowError`].
///
/// # Examples
///
/// ```
/// use bestagon_core::flow::{run_flow, FlowOptions};
/// use fcn_logic::network::Xag;
///
/// let mut xag = Xag::new();
/// let a = xag.primary_input("a");
/// let b = xag.primary_input("b");
/// let f = xag.or(a, b);
/// xag.primary_output("f", f);
/// let result = run_flow("or2", &xag, &FlowOptions::default())?;
/// assert!(result.layout.verify().is_empty());
/// assert!(result.cell.expect("library applied").num_sidbs() > 0);
/// # Ok::<(), bestagon_core::flow::FlowError>(())
/// ```
pub fn run_flow(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    run_instrumented(|| Ok((name.to_owned(), xag.clone())), options)
}

/// Installs a per-run collector, times step 1 (`parse`), runs steps 2–8,
/// and attaches the finished [`FlowReport`] to the result. The report is
/// also emitted to stderr per the `TELEMETRY` environment variable —
/// including on failure, so aborted runs still leave a trace.
fn run_instrumented(
    parse: impl FnOnce() -> Result<(String, Xag), FlowError>,
    options: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let collector = Arc::new(fcn_telemetry::Collector::new("flow"));
    let outcome = fcn_telemetry::with_collector(&collector, || {
        let (name, xag) = {
            let _step = fcn_telemetry::span("step1:parse");
            let (name, xag) = parse()?;
            fcn_telemetry::counter("xag.inputs", xag.num_pis() as u64);
            fcn_telemetry::counter("xag.outputs", xag.num_pos() as u64);
            fcn_telemetry::counter("xag.gates", xag.num_gates() as u64);
            (name, xag)
        };
        fcn_telemetry::note("circuit", name.clone());
        run_flow_steps(&name, &xag, options)
    });
    collector.finish();
    let report = collector.report();
    fcn_telemetry::emit(&report);
    outcome.map(|mut result| {
        result.report = report;
        result
    })
}

/// Paper steps 2–8, each wrapped in its stage span. The spans exist even
/// for skipped steps so every report lists the same eight stages.
fn run_flow_steps(name: &str, xag: &Xag, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    // Step 2: cut rewriting.
    let gates_before_rewrite = xag.cleaned().num_gates();
    let (optimized, gates_after_rewrite, depth) = {
        let _step = fcn_telemetry::span("step2:rewrite");
        let optimized = match &options.rewrite {
            Some(opts) => rewrite(xag, *opts),
            None => xag.cleaned(),
        };
        let gates_after_rewrite = optimized.num_gates();
        let depth = optimized.depth();
        fcn_telemetry::counter("gates.before", gates_before_rewrite as u64);
        fcn_telemetry::counter("gates.after", gates_after_rewrite as u64);
        fcn_telemetry::counter("depth", depth as u64);
        (optimized, gates_after_rewrite, depth)
    };

    // Step 3: technology mapping.
    let graph = {
        let _step = fcn_telemetry::span("step3:techmap");
        let mapped = map_xag(&optimized, options.map).map_err(FlowError::Map)?;
        let graph = NetGraph::new(mapped).map_err(FlowError::NetGraph)?;
        fcn_telemetry::counter("netgraph.edges", graph.edges.len() as u64);
        graph
    };

    // Step 4: placement & routing.
    let (layout, exact) = {
        let _step = fcn_telemetry::span("step4:pnr");
        let exact_options = |max_area: u64| ExactOptions {
            max_area,
            num_threads: options
                .pnr_threads
                .unwrap_or_else(fcn_pnr::default_num_threads),
            incremental: options
                .pnr_incremental
                .unwrap_or_else(fcn_pnr::default_incremental),
            ..Default::default()
        };
        let (layout, exact) = match options.pnr {
            PnrMethod::Exact { max_area } => {
                let r = exact_pnr(&graph, &exact_options(max_area)).map_err(FlowError::Pnr)?;
                (r.layout, true)
            }
            PnrMethod::Heuristic => (heuristic_pnr(&graph).map_err(FlowError::Pnr)?, false),
            PnrMethod::ExactWithFallback { max_area } => {
                match exact_pnr(&graph, &exact_options(max_area)) {
                    Ok(r) => (r.layout, true),
                    Err(_) => (heuristic_pnr(&graph).map_err(FlowError::Pnr)?, false),
                }
            }
        };
        fcn_telemetry::note("engine", if exact { "exact" } else { "heuristic" });
        fcn_telemetry::note("ratio", layout.ratio().label());
        (layout, exact)
    };

    // Step 5: formal verification.
    let equivalence = {
        let _step = fcn_telemetry::span("step5:equiv");
        if options.verify {
            let verdict = check_equivalence(&optimized, &layout).map_err(FlowError::Equivalence)?;
            if let Equivalence::NotEquivalent { counterexample } = &verdict {
                return Err(FlowError::NotEquivalent {
                    counterexample: counterexample.clone(),
                });
            }
            Some(verdict)
        } else {
            None
        }
    };

    // Step 6: super-tile clock-zone expansion.
    let supertiles = {
        let _step = fcn_telemetry::span("step6:supertiles");
        let plan = plan_supertiles(&layout);
        fcn_telemetry::counter("electrodes", plan.num_electrodes as u64);
        fcn_telemetry::counter("rows_per_supertile", plan.rows_per_supertile as u64);
        plan
    };

    // Step 7: gate-library application.
    let cell = {
        let _step = fcn_telemetry::span("step7:apply");
        if options.apply_library {
            let library = BestagonLibrary::new();
            let cell = apply_gate_library(&layout, &library).map_err(FlowError::Apply)?;
            fcn_telemetry::counter("sidbs", cell.num_sidbs() as u64);
            Some(cell)
        } else {
            None
        }
    };

    // Step 8: export. `FlowResult::to_sqd` re-renders on demand; this
    // serialization is only for timing and sizing the artifact.
    {
        let _step = fcn_telemetry::span("step8:export");
        if let Some(cell) = &cell {
            let sqd = bestagon_lib::sqd::to_sqd_string(&cell.sidb);
            fcn_telemetry::counter("sqd.bytes", sqd.len() as u64);
        }
    }

    Ok(FlowResult {
        name: name.to_owned(),
        optimized,
        gates_before_rewrite,
        gates_after_rewrite,
        depth,
        layout,
        exact,
        equivalence,
        supertiles,
        cell,
        report: FlowReport::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::benchmark;

    #[test]
    fn flow_handles_xor2_end_to_end() {
        let b = benchmark("xor2");
        let r = run_flow("xor2", &b.xag, &FlowOptions::default()).expect("flow succeeds");
        assert!(r.layout.verify().is_empty());
        assert_eq!(r.equivalence, Some(Equivalence::Equivalent));
        assert!(r.supertiles.is_fabricable());
        let cell = r.cell.as_ref().expect("library applied");
        assert!(cell.num_sidbs() > 20);
        assert!(r.to_sqd().expect("sqd").contains("<dbdot>"));
        assert_eq!(
            r.report.stages(),
            [
                "step1:parse",
                "step2:rewrite",
                "step3:techmap",
                "step4:pnr",
                "step5:equiv",
                "step6:supertiles",
                "step7:apply",
                "step8:export"
            ]
        );
        let pnr = r.report.root.child("step4:pnr").expect("pnr stage");
        assert!(pnr.counters.contains_key("sat.conflicts") || !pnr.children.is_empty());
    }

    #[test]
    fn exact_flow_matches_paper_ratio_for_xor2() {
        let b = benchmark("xor2");
        let r = run_flow(
            "xor2",
            &b.xag,
            &FlowOptions::new().with_pnr(PnrMethod::Exact { max_area: 60 }),
        )
        .expect("flow succeeds");
        assert!(r.exact);
        // Paper Table 1: 2 × 3.
        assert_eq!((r.layout.ratio().width, r.layout.ratio().height), (2, 3));
    }

    #[test]
    fn heuristic_flow_is_larger_but_correct() {
        let b = benchmark("par_gen");
        let exact = run_flow(
            "par_gen",
            &b.xag,
            &FlowOptions::new().with_pnr(PnrMethod::Exact { max_area: 80 }),
        )
        .expect("exact flow");
        let heur = run_flow(
            "par_gen",
            &b.xag,
            &FlowOptions::new().with_pnr(PnrMethod::Heuristic),
        )
        .expect("heuristic flow");
        assert!(heur.layout.ratio().tile_count() >= exact.layout.ratio().tile_count());
        assert_eq!(heur.equivalence, Some(Equivalence::Equivalent));
    }

    #[test]
    fn rewrite_ablation_reports_gate_counts() {
        let b = benchmark("xor5_majority");
        let with = run_flow(
            "x",
            &b.xag,
            &FlowOptions::new()
                .with_pnr(PnrMethod::Heuristic)
                .without_library(),
        )
        .expect("flow");
        let without = run_flow(
            "x",
            &b.xag,
            &FlowOptions::new()
                .without_rewrite()
                .with_pnr(PnrMethod::Heuristic)
                .without_library(),
        )
        .expect("flow");
        assert!(with.gates_after_rewrite <= without.gates_after_rewrite);
        assert_eq!(with.gates_before_rewrite, without.gates_before_rewrite);
    }

    #[test]
    fn verilog_entry_point_works() {
        let r = run_flow_from_verilog(
            "module and2 (a, b, f); input a, b; output f; assign f = a & b; endmodule",
            &FlowOptions::new().without_library(),
        )
        .expect("flow");
        assert_eq!(r.name, "and2");
    }
}
