//! `bestagon-core` — the end-to-end SiDB design-automation flow.
//!
//! Implements the eight-step flow of the paper's Section 4.2:
//!
//! 1. parse a specification (gate-level Verilog) as an XAG,
//! 2. cut-based logic rewriting with the exact structure database,
//! 3. technology mapping onto the Bestagon gate set,
//! 4. exact (or heuristic) placement & routing on a row-clocked
//!    hexagonal floor plan,
//! 5. SAT-based equivalence checking of network vs. layout,
//! 6. super-tile clock-zone expansion for fabricable electrodes,
//! 7. gate-library application to a dot-accurate SiDB layout,
//! 8. SiQAD design-file export.
//!
//! [`flow::run_flow`] drives all steps; [`benchmarks`] provides the
//! evaluation circuits of the paper's Table 1; [`pipeline`] contains the
//! clocked signal-propagation simulation behind the Figure 2 experiment.

pub mod benchmarks;
pub mod flow;
pub mod pipeline;

pub use benchmarks::{benchmark, benchmark_names, Benchmark};
pub use flow::{
    run_flow, Deadline, Degradation, DegradeTrigger, FlowBudget, FlowError, FlowOptions,
    FlowResult, PnrMethod,
};
