//! `bestagon-core` — the end-to-end SiDB design-automation flow.
//!
//! Implements the eight-step flow of the paper's Section 4.2:
//!
//! 1. parse a specification (gate-level Verilog) as an XAG,
//! 2. cut-based logic rewriting with the exact structure database,
//! 3. technology mapping onto the Bestagon gate set,
//! 4. exact (or heuristic) placement & routing on a row-clocked
//!    hexagonal floor plan,
//! 5. SAT-based equivalence checking of network vs. layout,
//! 6. super-tile clock-zone expansion for fabricable electrodes,
//! 7. gate-library application to a dot-accurate SiDB layout,
//! 8. SiQAD design-file export.
//!
//! A [`flow::FlowRequest`] (a [`flow::FlowInput`] specification plus
//! [`flow::FlowOptions`]) drives all steps via
//! [`flow::FlowRequest::execute`]; [`benchmarks`] provides the
//! evaluation circuits of the paper's Table 1; [`pipeline`] contains the
//! clocked signal-propagation simulation behind the Figure 2 experiment.

pub mod benchmarks;
pub mod flow;
pub mod pipeline;

pub use benchmarks::{benchmark, benchmark_names, Benchmark};
#[allow(deprecated)]
pub use flow::run_flow;
pub use flow::{
    Deadline, Degradation, DegradeTrigger, FlowBudget, FlowError, FlowInput, FlowOptions,
    FlowRequest, FlowResult, PnrMethod,
};
