//! Process-wide aggregate metrics surviving across flow runs.
//!
//! A per-run [`crate::Collector`] dies with its flow; a long-lived host
//! (the benchmark harness today, ROADMAP item 1's design server
//! tomorrow) also needs *process* totals — how many flows ran, how many
//! SAT conflicts and simulation states they cost in aggregate, and how
//! the distributions look across jobs. The [`Registry`] is that
//! accumulator: the flow driver calls
//! [`Registry::absorb_report`] once per finished run (off the hot path,
//! after the report is snapshotted), folding every counter and
//! histogram of the span tree into per-name totals.
//!
//! [`Registry::snapshot`] returns an immutable [`RegistrySnapshot`];
//! [`RegistrySnapshot::diff`] subtracts an earlier snapshot, which is
//! how a server attributes "what did *this* job cost?" against
//! whole-process totals without locking the registry for the job's
//! duration.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::collector::{Report, SpanReport};
use crate::hist::Histogram;
use crate::json::Value;

/// Process-wide accumulator of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistrySnapshot>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// A fresh, empty registry (for tests and embedded hosts).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Folds one finished run's report into the aggregate: counters sum
    /// by name over the whole span tree, histograms merge by name, the
    /// root duration lands in the `flow.us` histogram, and `flow.runs`
    /// increments.
    pub fn absorb_report(&self, report: &Report) {
        fn walk(agg: &mut RegistrySnapshot, span: &SpanReport) {
            for (name, &delta) in &span.counters {
                *agg.counters.entry(name.clone()).or_insert(0) += delta;
            }
            for (name, hist) in &span.histograms {
                agg.histograms.entry(name.clone()).or_default().merge(hist);
            }
            for child in &span.children {
                walk(agg, child);
            }
        }
        let mut inner = self.inner.lock().unwrap();
        inner.flows += 1;
        inner
            .histograms
            .entry("flow.us".to_owned())
            .or_default()
            .record(report.root.duration.as_micros() as u64);
        walk(&mut inner, &report.root);
    }

    /// Adds `delta` to the named counter total directly, without going
    /// through a report. Long-lived hosts (the design server) account
    /// events that happen *outside* any flow run — admission rejects,
    /// cache hits — against the same aggregate namespace this way.
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Records one sample into the named histogram directly (same
    /// rationale as [`Registry::add_counter`] — e.g. the server's
    /// queue-depth distribution, sampled at every admission).
    pub fn record_histogram(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// An immutable copy of the current totals.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.inner.lock().unwrap().clone()
    }
}

/// Immutable totals captured from a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Number of reports absorbed.
    pub flows: u64,
    /// Per-name counter totals over all absorbed reports.
    pub counters: BTreeMap<String, u64>,
    /// Per-name merged histograms over all absorbed reports.
    pub histograms: BTreeMap<String, Histogram>,
}

impl RegistrySnapshot {
    /// What this snapshot accumulated beyond `earlier` (a previous
    /// snapshot of the same registry): counters subtract (zero-delta
    /// entries are dropped), histograms subtract bucket-wise.
    pub fn diff(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let mut counters = BTreeMap::new();
        for (name, &total) in &self.counters {
            let before = earlier.counters.get(name).copied().unwrap_or(0);
            if total > before {
                counters.insert(name.clone(), total - before);
            }
        }
        let mut histograms = BTreeMap::new();
        for (name, hist) in &self.histograms {
            let window = match earlier.histograms.get(name) {
                Some(before) => hist.diff(before),
                None => hist.clone(),
            };
            if !window.is_empty() {
                histograms.insert(name.clone(), window);
            }
        }
        RegistrySnapshot {
            flows: self.flows.saturating_sub(earlier.flows),
            counters,
            histograms,
        }
    }

    /// The totals as a JSON object, for embedding in BENCH artifacts.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("flows".to_owned(), Value::Num(self.flows as f64)),
            (
                "counters".to_owned(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use std::sync::Arc;

    fn run_once(conflicts: u64) -> Report {
        let collector = Arc::new(Collector::new("flow"));
        {
            let _pnr = collector.span("step4:pnr");
            collector.counter("sat.conflicts", conflicts);
            collector.histogram("pnr.probe.conflicts", conflicts);
        }
        collector.finish();
        collector.report()
    }

    #[test]
    fn registry_accumulates_across_reports() {
        let registry = Registry::new();
        registry.absorb_report(&run_once(10));
        registry.absorb_report(&run_once(30));
        let snap = registry.snapshot();
        assert_eq!(snap.flows, 2);
        assert_eq!(snap.counters.get("sat.conflicts"), Some(&40));
        let hist = snap.histograms.get("pnr.probe.conflicts").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 40);
        assert_eq!(snap.histograms.get("flow.us").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_diff_isolates_one_window() {
        let registry = Registry::new();
        registry.absorb_report(&run_once(10));
        let before = registry.snapshot();
        registry.absorb_report(&run_once(5));
        let delta = registry.snapshot().diff(&before);
        assert_eq!(delta.flows, 1);
        assert_eq!(delta.counters.get("sat.conflicts"), Some(&5));
        assert_eq!(
            delta.histograms.get("pnr.probe.conflicts").unwrap().count(),
            1
        );
        // Diffing a snapshot against itself is empty.
        let same = registry.snapshot();
        let empty = same.diff(&same);
        assert_eq!(empty.flows, 0);
        assert!(empty.counters.is_empty());
        assert!(empty.histograms.is_empty());
    }

    #[test]
    fn json_value_lists_counters_and_histograms() {
        let registry = Registry::new();
        registry.absorb_report(&run_once(7));
        let v = registry.snapshot().to_value();
        assert_eq!(v.get("flows").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("sat.conflicts"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
        assert!(v
            .get("histograms")
            .and_then(|h| h.get("pnr.probe.conflicts"))
            .is_some());
    }

    #[test]
    fn direct_recording_lands_in_the_same_namespace() {
        let registry = Registry::new();
        registry.add_counter("server.jobs", 2);
        registry.add_counter("server.jobs", 1);
        registry.record_histogram("server.queue_depth", 4);
        registry.record_histogram("server.queue_depth", 1);
        let before = registry.snapshot();
        assert_eq!(before.counters.get("server.jobs"), Some(&3));
        assert_eq!(
            before.histograms.get("server.queue_depth").unwrap().count(),
            2
        );
        // Direct records do not count as flows, and they diff like
        // report-absorbed totals.
        assert_eq!(before.flows, 0);
        registry.add_counter("server.jobs", 5);
        let delta = registry.snapshot().diff(&before);
        assert_eq!(delta.counters.get("server.jobs"), Some(&5));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global() as *const Registry;
        let b = Registry::global() as *const Registry;
        assert_eq!(a, b);
    }
}
