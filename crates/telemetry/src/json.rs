//! A hand-rolled JSON value type, serializer, and parser.
//!
//! DESIGN.md §6 keeps the default build free of external dependencies,
//! so telemetry reports are encoded and decoded here rather than with
//! serde. Object member order is preserved (insertion order), which
//! keeps report output stable and diffable.

use std::fmt::Write;

/// A JSON value. Numbers are `f64`, like JavaScript's.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed encoding with two-space indentation.
    pub fn serialize_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, depth| {
                        items[i].write(out, indent, depth);
                    },
                );
            }
            Value::Obj(members) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    members.len(),
                    |out, i, depth| {
                        let (key, value) = &members[i];
                        write_string(out, key);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        value.write(out, indent, depth);
                    },
                );
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        // Surrogate pair handling for characters beyond the BMP.
        if (0xd800..0xdc00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xdc00..0xe000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return char::from_u32(combined).ok_or_else(|| self.error("invalid codepoint"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid codepoint"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let value = Value::Obj(vec![
            ("name".into(), Value::Str("flow \"c17\"\n".into())),
            ("count".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(0.125)),
            (
                "flags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        for encoded in [value.serialize(), value.serialize_pretty()] {
            assert_eq!(parse(&encoded).unwrap(), value);
        }
    }

    #[test]
    fn integers_are_not_written_with_exponents() {
        assert_eq!(Value::Num(1_234_567_890.0).serialize(), "1234567890");
        assert_eq!(Value::Num(-3.0).serialize(), "-3");
        assert_eq!(Value::Num(f64::INFINITY).serialize(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = parse(r#"{"s": "a\tb\u00e9\ud83d\ude00"}"#).unwrap();
        assert_eq!(parsed.get("s").and_then(Value::as_str), Some("a\tbé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_discriminate_types() {
        let value = parse(r#"{"n": 1, "s": "x", "b": false, "a": [], "o": {}}"#).unwrap();
        assert_eq!(value.get("n").and_then(Value::as_f64), Some(1.0));
        assert_eq!(value.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(value.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(value.get("a").and_then(Value::as_array), Some(&[][..]));
        assert!(value.get("o").and_then(Value::as_object).is_some());
        assert!(value.get("missing").is_none());
        assert!(value.get("n").and_then(Value::as_str).is_none());
    }
}
