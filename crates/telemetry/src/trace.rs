//! Span begin/end event capture and Chrome trace-event export.
//!
//! When tracing is enabled (the `TELEMETRY_TRACE` environment variable
//! names an output file, or a collector was created with
//! [`crate::Collector::new_traced`]), every span records a
//! [`TraceEvent`] as it closes: name, the recording thread's id and
//! label, the monotonic start instant, and the duration. Worker-thread
//! events ride the existing child-collector snapshots and are appended
//! to the parent's buffer by [`crate::Collector::adopt_report`], so one
//! flow run yields one event stream no matter how many threads probed
//! or simulated.
//!
//! [`chrome_trace`] renders the buffer in the Chrome trace-event JSON
//! format (complete `"X"` events with microsecond timestamps, plus one
//! `"M"` `thread_name` metadata record per thread), which Perfetto and
//! `chrome://tracing` load directly. Timestamps are normalized against
//! the earliest event so traces start at zero; `Instant`s from
//! different threads share the one monotonic clock, so cross-thread
//! ordering is faithful.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::json::Value;

/// Cap on buffered events per collector. A full buffer counts drops
/// instead of growing without bound — a trace is a diagnostic artifact,
/// not an accounting ledger.
pub const MAX_TRACE_EVENTS: usize = 65_536;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small stable id for the calling thread (assigned on first use;
/// `std::thread::ThreadId` has no stable integer form).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The calling thread's display label: its name when set, else
/// `thread-<tid>`.
pub fn current_thread_label() -> String {
    match std::thread::current().name() {
        Some(name) => name.to_owned(),
        None => format!("thread-{}", current_tid()),
    }
}

/// Whether `TELEMETRY_TRACE` requests event capture. Read per collector
/// creation (not cached) so tests and long-lived processes can toggle
/// it.
pub(crate) fn trace_enabled_by_env() -> bool {
    std::env::var("TELEMETRY_TRACE").is_ok_and(|path| !path.is_empty())
}

/// One closed span, as buffered for trace export.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name, e.g. `step4:pnr` or `ratio:3x4`.
    pub name: String,
    /// Id of the thread the span closed on.
    pub tid: u64,
    /// Display label of that thread.
    pub thread_label: String,
    /// Monotonic begin instant.
    pub start: Instant,
    /// Wall time between span open and close.
    pub duration: Duration,
}

/// Renders events as a Chrome trace-event document
/// (`{"traceEvents": [...]}`).
pub(crate) fn chrome_trace(events: &[TraceEvent], dropped: u64) -> Value {
    let base = events.iter().map(|e| e.start).min();
    let mut records = Vec::with_capacity(events.len() + 8);
    // One thread_name metadata record per thread, in tid order.
    let mut labels: BTreeMap<u64, &str> = BTreeMap::new();
    for event in events {
        labels.entry(event.tid).or_insert(&event.thread_label);
    }
    for (tid, label) in labels {
        records.push(Value::Obj(vec![
            ("name".to_owned(), Value::Str("thread_name".to_owned())),
            ("ph".to_owned(), Value::Str("M".to_owned())),
            ("pid".to_owned(), Value::Num(1.0)),
            ("tid".to_owned(), Value::Num(tid as f64)),
            (
                "args".to_owned(),
                Value::Obj(vec![("name".to_owned(), Value::Str(label.to_owned()))]),
            ),
        ]));
    }
    for event in events {
        let ts = base
            .map(|b| event.start.saturating_duration_since(b))
            .unwrap_or(Duration::ZERO);
        records.push(Value::Obj(vec![
            ("name".to_owned(), Value::Str(event.name.clone())),
            ("cat".to_owned(), Value::Str("span".to_owned())),
            ("ph".to_owned(), Value::Str("X".to_owned())),
            ("pid".to_owned(), Value::Num(1.0)),
            ("tid".to_owned(), Value::Num(event.tid as f64)),
            ("ts".to_owned(), Value::Num(ts.as_secs_f64() * 1e6)),
            (
                "dur".to_owned(),
                Value::Num(event.duration.as_secs_f64() * 1e6),
            ),
        ]));
    }
    let mut doc = vec![("traceEvents".to_owned(), Value::Arr(records))];
    if dropped > 0 {
        doc.push((
            "otherData".to_owned(),
            Value::Obj(vec![(
                "dropped_events".to_owned(),
                Value::Num(dropped as f64),
            )]),
        ));
    }
    Value::Obj(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_distinct_across_threads() {
        let here = current_tid();
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, current_tid(), "tid is stable per thread");
    }

    #[test]
    fn chrome_trace_normalizes_timestamps_and_names_threads() {
        let t0 = Instant::now();
        let events = vec![
            TraceEvent {
                name: "late".to_owned(),
                tid: 2,
                thread_label: "worker".to_owned(),
                start: t0 + Duration::from_micros(250),
                duration: Duration::from_micros(50),
            },
            TraceEvent {
                name: "early".to_owned(),
                tid: 1,
                thread_label: "main".to_owned(),
                start: t0,
                duration: Duration::from_micros(100),
            },
        ];
        let doc = chrome_trace(&events, 3);
        let records = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        // Two metadata records then two X events.
        assert_eq!(records.len(), 4);
        assert_eq!(
            records[0].get("ph").and_then(Value::as_str),
            Some("M"),
            "{doc:?}"
        );
        let late = &records[2];
        assert_eq!(late.get("name").and_then(Value::as_str), Some("late"));
        let ts = late.get("ts").and_then(Value::as_f64).unwrap();
        assert!(
            (ts - 250.0).abs() < 1.0,
            "normalized against earliest: {ts}"
        );
        let early = &records[3];
        assert_eq!(early.get("ts").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
    }
}
