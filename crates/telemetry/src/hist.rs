//! Log-bucketed histograms: fixed-size, mergeable, deterministic.
//!
//! A [`Histogram`] summarizes a stream of `u64` samples (conflict
//! counts, visited configurations, span durations in microseconds) in
//! 65 power-of-two buckets: bucket 0 holds the value 0 and bucket `i`
//! holds the half-open range `[2^(i-1), 2^i)`. The bucket layout is
//! value-dependent only, so merging two histograms is a bucket-wise
//! addition — the merged result is independent of sample interleaving,
//! which is what lets worker-thread histograms flow through
//! [`crate::Collector::adopt_report`] without breaking the determinism
//! contract.
//!
//! Quantiles are estimated from the bucket boundaries: `p50`/`p90`
//! report the inclusive upper bound of the bucket containing the
//! requested rank, clamped into the observed `[min, max]` range. The
//! estimate is coarse (a factor of two) but deterministic and cheap,
//! which is the right trade for regression gating.

use crate::json::Value;

/// Bucket count: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value falls into: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A mergeable log₂-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty, so `min` never needs a branch on merge.
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise accumulation. Deterministic: `a.merge(b)` equals any
    /// interleaving of the two sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q·count)`, clamped to
    /// the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 90th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// The samples this histogram has seen beyond `earlier` (which must
    /// be a prior snapshot of the same accumulator): buckets, count,
    /// and sum subtract; `min`/`max` are re-estimated from the
    /// surviving buckets' boundaries since exact extremes of a window
    /// are not recoverable from cumulative state.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, out) in buckets.iter_mut().enumerate() {
            *out = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return Histogram::default();
        }
        let lowest = buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let highest = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        Histogram {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: bucket_lower_bound(lowest).max(self.min),
            max: bucket_upper_bound(highest).min(self.max),
        }
    }

    /// Compact single-line rendering for the tree/summary renderers:
    /// `n=5 p50=8 p90=32 max=37`.
    pub fn render_brief(&self) -> String {
        format!(
            "n={} p50={} p90={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.max()
        )
    }

    /// Summary statistics as a JSON object (no raw buckets: reports and
    /// BENCH artifacts need the stable summary, not the representation).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("count".to_owned(), Value::Num(self.count as f64)),
            ("sum".to_owned(), Value::Num(self.sum as f64)),
            ("min".to_owned(), Value::Num(self.min() as f64)),
            ("max".to_owned(), Value::Num(self.max() as f64)),
            ("p50".to_owned(), Value::Num(self.p50() as f64)),
            ("p90".to_owned(), Value::Num(self.p90() as f64)),
            ("mean".to_owned(), Value::Num(self.mean())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i));
        }
        // Every value lands between its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(
                bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i),
                "{v}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!((h.p50(), h.p90()), (0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
        // The bucket bound (63) clamps into [min, max].
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p90(), 37);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        let p90 = h.p90();
        assert!(p50 <= p90 && p90 <= h.max());
        // Rank 500 lives in bucket [256, 511]; rank 900 in [512, 1023],
        // clamped to the observed max.
        assert_eq!(p50, 511);
        assert_eq!(p90, 1000);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [0u64, 1, 1, 5, 9, 100, 1 << 40];
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (left, right) = samples.split_at(3);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab, whole);
        assert_eq!(merged_ba, whole);
    }

    #[test]
    fn diff_recovers_the_window() {
        let mut h = Histogram::new();
        h.record(4);
        h.record(16);
        let snapshot = h.clone();
        h.record(64);
        h.record(64);
        let window = h.diff(&snapshot);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 128);
        assert!(window.min() >= 33 && window.max() <= 127, "{window:?}");
        assert_eq!(h.diff(&h), Histogram::default());
    }

    #[test]
    fn json_value_carries_summary_statistics() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("sum").and_then(Value::as_f64), Some(30.0));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(15.0));
        assert!(v.get("p50").is_some() && v.get("p90").is_some());
    }
}
