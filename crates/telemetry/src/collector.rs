//! The span collector: a thread-safe arena of timed, nested spans with
//! attached counters, gauges, notes, and histograms, plus the snapshot
//! [`Report`], its renderers, and the optional trace-event buffer.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::json::Value;
use crate::trace::{self, TraceEvent, MAX_TRACE_EVENTS};

/// Histogram every span keeps of its direct children's wall times, in
/// microseconds. Recorded on span close into the *parent*, so a stage
/// span summarizes the distribution of the probes/units under it; the
/// child-collector adoption path merges worker-side roots into the
/// parent stage span, keeping the sequential and parallel shapes alike.
pub const SPAN_DURATION_HISTOGRAM: &str = "span.us";

#[derive(Debug)]
struct SpanData {
    name: String,
    start: Instant,
    duration: Option<Duration>,
    children: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    notes: BTreeMap<String, String>,
    histograms: BTreeMap<String, Histogram>,
}

impl SpanData {
    fn new(name: String) -> SpanData {
        SpanData {
            name,
            start: Instant::now(),
            duration: None,
            children: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            notes: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

#[derive(Debug)]
struct Inner {
    spans: Vec<SpanData>,
    /// Indices of currently open spans, innermost last. Never empty:
    /// element 0 is the root span, which stays open until
    /// [`Collector::finish`] (or forever — snapshots time open spans
    /// against "now").
    stack: Vec<usize>,
    /// Closed-span events, oldest first, capped at
    /// [`MAX_TRACE_EVENTS`]. Empty unless the collector is traced.
    events: Vec<TraceEvent>,
    /// Events discarded after the buffer filled.
    events_dropped: u64,
}

/// Thread-safe collector holding one tree of spans.
///
/// Typically created per flow run, installed with
/// [`crate::with_collector`], and snapshotted with [`Collector::report`]
/// once the run completes.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    /// Whether closed spans are buffered as [`TraceEvent`]s. Decided at
    /// creation from `TELEMETRY_TRACE` (so worker-thread child
    /// collectors agree with their parent without plumbing) or forced
    /// by [`Collector::new_traced`].
    traced: bool,
}

impl Collector {
    /// Creates a collector whose root span is named `root_name` and
    /// starts now. Trace-event capture follows the `TELEMETRY_TRACE`
    /// environment variable.
    pub fn new(root_name: impl Into<String>) -> Collector {
        Collector::with_tracing(root_name, trace::trace_enabled_by_env())
    }

    /// Creates a collector with trace-event capture forced on,
    /// independent of the environment (tests, embedded hosts).
    pub fn new_traced(root_name: impl Into<String>) -> Collector {
        Collector::with_tracing(root_name, true)
    }

    fn with_tracing(root_name: impl Into<String>, traced: bool) -> Collector {
        Collector {
            inner: Mutex::new(Inner {
                spans: vec![SpanData::new(root_name.into())],
                stack: vec![0],
                events: Vec::new(),
                events_dropped: 0,
            }),
            traced,
        }
    }

    /// Whether this collector buffers trace events.
    pub fn is_traced(&self) -> bool {
        self.traced
    }

    /// Opens a child span under the innermost open span. Prefer the
    /// ambient [`crate::span`] in library code.
    pub fn span(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        let id = {
            let mut inner = self.inner.lock().unwrap();
            let id = inner.spans.len();
            inner.spans.push(SpanData::new(name.into()));
            let parent = *inner.stack.last().expect("root span always open");
            inner.spans[parent].children.push(id);
            inner.stack.push(id);
            id
        };
        SpanGuard {
            collector: Some(Arc::clone(self)),
            id,
        }
    }

    /// Adds `delta` to a counter on the innermost open span.
    pub fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let top = *inner.stack.last().expect("root span always open");
        *inner.spans[top]
            .counters
            .entry(name.to_owned())
            .or_insert(0) += delta;
    }

    /// Sets a gauge on the innermost open span (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let top = *inner.stack.last().expect("root span always open");
        inner.spans[top].gauges.insert(name.to_owned(), value);
    }

    /// Attaches a string annotation to the innermost open span.
    pub fn note(&self, name: &str, value: impl Into<String>) {
        let mut inner = self.inner.lock().unwrap();
        let top = *inner.stack.last().expect("root span always open");
        inner.spans[top].notes.insert(name.to_owned(), value.into());
    }

    /// Records one sample into a named histogram on the innermost open
    /// span.
    pub fn histogram(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let top = *inner.stack.last().expect("root span always open");
        inner.spans[top]
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Closes the root span, freezing the total wall time.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans[0].duration.is_none() {
            inner.spans[0].duration = Some(inner.spans[0].start.elapsed());
            if self.traced {
                let name = inner.spans[0].name.clone();
                let start = inner.spans[0].start;
                let duration = inner.spans[0].duration.expect("just set");
                push_event(&mut inner, name, start, duration);
            }
        }
    }

    /// Snapshots the span tree. Spans still open are timed up to now.
    pub fn report(&self) -> Report {
        let inner = self.inner.lock().unwrap();
        Report {
            root: build_report(&inner.spans, 0),
            events: inner.events.clone(),
            events_dropped: inner.events_dropped,
        }
    }

    /// Grafts a finished span subtree (typically snapshotted from a
    /// worker thread's child collector) under the innermost open span.
    ///
    /// The adopted spans keep their recorded durations, counters,
    /// gauges, notes, and child structure; only their absolute start
    /// times are lost (an `Instant` cannot cross a snapshot boundary),
    /// which matters to no renderer — reports expose durations only.
    pub fn adopt(&self, span: &SpanReport) {
        let mut inner = self.inner.lock().unwrap();
        let parent = *inner.stack.last().expect("root span always open");
        let id = adopt_span(&mut inner.spans, span);
        inner.spans[parent].children.push(id);
    }

    /// Adopts every top-level span of `report` in order, then merges the
    /// report root's own counters, gauges, notes, and histograms into
    /// the innermost open span (counters add, histograms merge; gauges
    /// and notes overwrite). The report's trace events — if either side
    /// captured any — are appended to this collector's buffer, still
    /// labeled with the worker thread they were recorded on.
    ///
    /// This is the parent-side half of the scoped child-collector
    /// pattern: a worker runs under its own `Collector`, finishes it,
    /// snapshots a [`Report`], and the coordinating thread adopts the
    /// reports in a deterministic order — the merged tree is then
    /// independent of worker scheduling.
    pub fn adopt_report(&self, report: &Report) {
        let mut inner = self.inner.lock().unwrap();
        let parent = *inner.stack.last().expect("root span always open");
        for child in &report.root.children {
            let id = adopt_span(&mut inner.spans, child);
            inner.spans[parent].children.push(id);
        }
        let root = &report.root;
        let target = &mut inner.spans[parent];
        for (name, &delta) in &root.counters {
            *target.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, &value) in &root.gauges {
            target.gauges.insert(name.clone(), value);
        }
        for (name, value) in &root.notes {
            target.notes.insert(name.clone(), value.clone());
        }
        for (name, hist) in &root.histograms {
            target
                .histograms
                .entry(name.clone())
                .or_default()
                .merge(hist);
        }
        for event in &report.events {
            if inner.events.len() < MAX_TRACE_EVENTS {
                inner.events.push(event.clone());
            } else {
                inner.events_dropped += 1;
            }
        }
        inner.events_dropped += report.events_dropped;
    }

    fn close(&self, id: usize) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans[id].duration.is_none() {
            inner.spans[id].duration = Some(inner.spans[id].start.elapsed());
        }
        let duration = inner.spans[id].duration.expect("just set");
        if self.traced {
            let name = inner.spans[id].name.clone();
            let start = inner.spans[id].start;
            push_event(&mut inner, name, start, duration);
        }
        // Unwinding can close spans out of order; drop every span the
        // closed one still (transitively) encloses.
        if let Some(pos) = inner.stack.iter().rposition(|&open| open == id) {
            inner.stack.truncate(pos);
        }
        if inner.stack.is_empty() {
            inner.stack.push(0);
        }
        // Fold this span's wall time into the enclosing span's duration
        // histogram (the root after an out-of-order unwind).
        let parent = *inner.stack.last().expect("root span always open");
        if parent != id {
            inner.spans[parent]
                .histograms
                .entry(SPAN_DURATION_HISTOGRAM.to_owned())
                .or_default()
                .record(duration.as_micros() as u64);
        }
    }
}

/// Appends a closed span to the bounded event buffer, labeled with the
/// calling thread.
fn push_event(inner: &mut Inner, name: String, start: Instant, duration: Duration) {
    if inner.events.len() < MAX_TRACE_EVENTS {
        inner.events.push(TraceEvent {
            name,
            tid: trace::current_tid(),
            thread_label: trace::current_thread_label(),
            start,
            duration,
        });
    } else {
        inner.events_dropped += 1;
    }
}

/// Copies a [`SpanReport`] subtree into the arena, returning the new
/// root's index. The span is stored already closed (`duration` set), so
/// snapshots never re-time it.
fn adopt_span(spans: &mut Vec<SpanData>, report: &SpanReport) -> usize {
    let id = spans.len();
    spans.push(SpanData {
        name: report.name.clone(),
        start: Instant::now(), // placeholder; duration below is authoritative
        duration: Some(report.duration),
        children: Vec::new(),
        counters: report.counters.clone(),
        gauges: report.gauges.clone(),
        notes: report.notes.clone(),
        histograms: report.histograms.clone(),
    });
    let children: Vec<usize> = report
        .children
        .iter()
        .map(|child| adopt_span(spans, child))
        .collect();
    spans[id].children = children;
    id
}

fn build_report(spans: &[SpanData], id: usize) -> SpanReport {
    let span = &spans[id];
    SpanReport {
        name: span.name.clone(),
        duration: span.duration.unwrap_or_else(|| span.start.elapsed()),
        counters: span.counters.clone(),
        gauges: span.gauges.clone(),
        notes: span.notes.clone(),
        histograms: span.histograms.clone(),
        children: span
            .children
            .iter()
            .map(|&child| build_report(spans, child))
            .collect(),
    }
}

/// RAII guard returned by [`crate::span`]; closes its span on drop.
/// Guards returned when no collector is installed do nothing.
#[derive(Debug)]
#[must_use = "a span lasts until its guard is dropped"]
pub struct SpanGuard {
    collector: Option<Arc<Collector>>,
    id: usize,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard {
            collector: None,
            id: 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            collector.close(self.id);
        }
    }
}

/// Immutable snapshot of one collector's span tree.
///
/// The `Default` report is empty (an unnamed root with zero duration) —
/// a placeholder for results whose report is attached after the fact.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The root span (the whole timed region).
    pub root: SpanReport,
    /// Closed-span trace events in recording/adoption order. Empty
    /// unless the collector was traced (`TELEMETRY_TRACE` or
    /// [`Collector::new_traced`]).
    pub events: Vec<TraceEvent>,
    /// Events lost to the bounded buffer.
    pub events_dropped: u64,
}

/// One span in a [`Report`].
#[derive(Clone, Debug, Default)]
pub struct SpanReport {
    /// Span name, e.g. `step4:pnr` or `ratio:3x4`.
    pub name: String,
    /// Wall time between the span opening and closing.
    pub duration: Duration,
    /// Monotonic counters recorded while this span was innermost.
    pub counters: BTreeMap<String, u64>,
    /// Gauges recorded while this span was innermost.
    pub gauges: BTreeMap<String, f64>,
    /// String annotations recorded while this span was innermost.
    pub notes: BTreeMap<String, String>,
    /// Histograms recorded while this span was innermost, plus the
    /// implicit [`SPAN_DURATION_HISTOGRAM`] of its children's wall
    /// times.
    pub histograms: BTreeMap<String, Histogram>,
    /// Nested child spans in opening order.
    pub children: Vec<SpanReport>,
}

impl SpanReport {
    /// The first direct child with the given name.
    pub fn child(&self, name: &str) -> Option<&SpanReport> {
        self.children.iter().find(|c| c.name == name)
    }
}

impl Report {
    /// Names of the top-level stages (direct children of the root), in
    /// execution order.
    pub fn stages(&self) -> Vec<&str> {
        self.root.children.iter().map(|c| c.name.as_str()).collect()
    }

    /// Wall time of the named top-level stage.
    pub fn stage_duration(&self, name: &str) -> Option<Duration> {
        self.root.child(name).map(|c| c.duration)
    }

    /// Sum of the named counter over the whole span tree. Counters are
    /// recorded against whichever span was innermost at the time, so
    /// fleet-style assertions ("how many configurations did this run
    /// visit in total?") need the tree-wide total rather than a single
    /// span's cell.
    pub fn counter_total(&self, name: &str) -> u64 {
        fn walk(span: &SpanReport, name: &str) -> u64 {
            span.counters.get(name).copied().unwrap_or(0)
                + span.children.iter().map(|c| walk(c, name)).sum::<u64>()
        }
        walk(&self.root, name)
    }

    /// The named histogram merged over the whole span tree (empty if
    /// never recorded). The merge is bucket-wise and deterministic —
    /// see [`Histogram::merge`].
    pub fn histogram_total(&self, name: &str) -> Histogram {
        fn walk(span: &SpanReport, name: &str, total: &mut Histogram) {
            if let Some(hist) = span.histograms.get(name) {
                total.merge(hist);
            }
            for child in &span.children {
                walk(child, name, total);
            }
        }
        let mut total = Histogram::new();
        walk(&self.root, name, &mut total);
        total
    }

    /// The buffered trace events as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in Perfetto and
    /// `chrome://tracing`. Timestamps are normalized so the earliest
    /// event starts at zero; every recording thread appears as its own
    /// named track.
    pub fn to_chrome_trace(&self) -> String {
        trace::chrome_trace(&self.events, self.events_dropped).serialize()
    }

    /// One line per top-level stage with duration and share of total.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        render_line(&mut out, &self.root, 0, self.root.duration);
        for child in &self.root.children {
            render_line(&mut out, child, 1, self.root.duration);
        }
        out
    }

    /// The full indented span tree with durations, percentages of
    /// total, counters, gauges, and notes.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        render_subtree(&mut out, &self.root, 0, self.root.duration);
        out
    }

    /// The span tree as a [`Value`], for embedding in larger documents.
    pub fn to_value(&self) -> Value {
        span_to_value(&self.root)
    }

    /// Compact JSON encoding of the span tree.
    pub fn to_json(&self) -> String {
        self.to_value().serialize()
    }

    /// Pretty-printed JSON encoding of the span tree.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().serialize_pretty()
    }
}

fn percent(part: Duration, whole: Duration) -> f64 {
    if whole.is_zero() {
        100.0
    } else {
        part.as_secs_f64() / whole.as_secs_f64() * 100.0
    }
}

fn render_line(out: &mut String, span: &SpanReport, depth: usize, total: Duration) {
    use std::fmt::Write;

    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{:<width$} {:>10.3?} {:>5.1}%",
        span.name,
        span.duration,
        percent(span.duration, total),
        width = 28usize.saturating_sub(indent.len()),
    );
    for (name, value) in &span.counters {
        let _ = write!(out, "  {name}={value}");
    }
    for (name, value) in &span.gauges {
        let _ = write!(out, "  {name}={value:.4}");
    }
    for (name, hist) in &span.histograms {
        let _ = write!(out, "  {name}~{{{}}}", hist.render_brief());
    }
    for (name, value) in &span.notes {
        let _ = write!(out, "  {name}={value}");
    }
    out.push('\n');
}

fn render_subtree(out: &mut String, span: &SpanReport, depth: usize, total: Duration) {
    render_line(out, span, depth, total);
    for child in &span.children {
        render_subtree(out, child, depth + 1, total);
    }
}

fn span_to_value(span: &SpanReport) -> Value {
    let mut fields = vec![
        ("name".to_owned(), Value::Str(span.name.clone())),
        (
            "duration_ns".to_owned(),
            Value::Num(span.duration.as_nanos() as f64),
        ),
        (
            "duration_ms".to_owned(),
            Value::Num(span.duration.as_secs_f64() * 1e3),
        ),
    ];
    if !span.counters.is_empty() {
        fields.push((
            "counters".to_owned(),
            Value::Obj(
                span.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                    .collect(),
            ),
        ));
    }
    if !span.gauges.is_empty() {
        fields.push((
            "gauges".to_owned(),
            Value::Obj(
                span.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v)))
                    .collect(),
            ),
        ));
    }
    if !span.histograms.is_empty() {
        fields.push((
            "histograms".to_owned(),
            Value::Obj(
                span.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_value()))
                    .collect(),
            ),
        ));
    }
    if !span.notes.is_empty() {
        fields.push((
            "notes".to_owned(),
            Value::Obj(
                span.notes
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    if !span.children.is_empty() {
        fields.push((
            "children".to_owned(),
            Value::Arr(span.children.iter().map(span_to_value).collect()),
        ));
    }
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let collector = Arc::new(Collector::new("flow:test"));
        {
            let _a = collector.span("step1:parse");
            collector.counter("tokens", 12);
        }
        {
            let _b = collector.span("step4:pnr");
            let _probe = collector.span("ratio:2x3");
            collector.counter("sat.conflicts", 3);
            collector.note("verdict", "sat");
            collector.gauge("fill", 0.5);
        }
        collector.finish();
        collector.report()
    }

    #[test]
    fn tree_render_contains_durations_counters_and_percentages() {
        let tree = sample_report().render_tree();
        assert!(tree.contains("flow:test"), "{tree}");
        assert!(tree.contains("    ratio:2x3"), "{tree}");
        assert!(tree.contains("sat.conflicts=3"), "{tree}");
        assert!(tree.contains("verdict=sat"), "{tree}");
        assert!(tree.contains('%'), "{tree}");
    }

    #[test]
    fn summary_render_stops_at_stage_level() {
        let summary = sample_report().render_summary();
        assert!(summary.contains("step4:pnr"), "{summary}");
        assert!(!summary.contains("ratio:2x3"), "{summary}");
    }

    #[test]
    fn json_roundtrips_through_own_parser() {
        let report = sample_report();
        for encoded in [report.to_json(), report.to_json_pretty()] {
            let value = crate::json::parse(&encoded).expect("report JSON must parse");
            assert_eq!(value.get("name").and_then(Value::as_str), Some("flow:test"));
            let children = value.get("children").and_then(Value::as_array).unwrap();
            assert_eq!(children.len(), 2);
            let pnr = &children[1];
            let probe = &pnr.get("children").and_then(Value::as_array).unwrap()[0];
            assert_eq!(probe.get("name").and_then(Value::as_str), Some("ratio:2x3"));
            let conflicts = probe
                .get("counters")
                .and_then(|c| c.get("sat.conflicts"))
                .and_then(Value::as_f64);
            assert_eq!(conflicts, Some(3.0));
            assert_eq!(
                probe
                    .get("notes")
                    .and_then(|n| n.get("verdict"))
                    .and_then(Value::as_str),
                Some("sat")
            );
        }
    }

    #[test]
    fn stage_helpers_expose_direct_children() {
        let report = sample_report();
        assert_eq!(report.stages(), ["step1:parse", "step4:pnr"]);
        assert!(report.stage_duration("step4:pnr").is_some());
        assert!(report.stage_duration("step9:none").is_none());
    }

    #[test]
    fn adopt_grafts_child_collector_spans_under_open_span() {
        // A worker records probes under its own collector...
        let worker = Arc::new(Collector::new("probe"));
        {
            let _probe = worker.span("ratio:2x3");
            worker.counter("sat.conflicts", 7);
            worker.note("verdict", "sat");
        }
        worker.finish();
        let worker_report = worker.report();

        // ...and the parent adopts the snapshot inside step4:pnr.
        let parent = Arc::new(Collector::new("flow"));
        {
            let _pnr = parent.span("step4:pnr");
            parent.adopt_report(&worker_report);
        }
        parent.finish();
        let report = parent.report();
        let pnr = report.root.child("step4:pnr").expect("stage span");
        let probe = pnr.child("ratio:2x3").expect("adopted span");
        assert_eq!(probe.counters.get("sat.conflicts"), Some(&7));
        assert_eq!(probe.notes.get("verdict").map(String::as_str), Some("sat"));
    }

    #[test]
    fn adopt_report_merges_root_counters_into_open_span() {
        let worker = Arc::new(Collector::new("probe"));
        worker.counter("probes.cancelled", 2);
        worker.gauge("fill", 0.25);
        worker.note("mode", "parallel");
        worker.finish();
        let snapshot = worker.report();

        let parent = Arc::new(Collector::new("flow"));
        parent.counter("probes.cancelled", 1);
        parent.adopt_report(&snapshot);
        let report = parent.report();
        assert_eq!(report.root.counters.get("probes.cancelled"), Some(&3));
        assert_eq!(report.root.gauges.get("fill"), Some(&0.25));
        assert_eq!(
            report.root.notes.get("mode").map(String::as_str),
            Some("parallel")
        );
    }

    #[test]
    fn adopted_spans_keep_recorded_durations_and_structure() {
        let worker = Arc::new(Collector::new("probe"));
        {
            let _outer = worker.span("outer");
            let _inner = worker.span("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        worker.finish();
        let snapshot = worker.report();
        let recorded = snapshot.root.children[0].duration;

        let parent = Arc::new(Collector::new("flow"));
        parent.adopt(&snapshot.root.children[0]);
        let adopted = &parent.report().root.children[0];
        assert_eq!(adopted.duration, recorded, "duration must be preserved");
        assert_eq!(adopted.children[0].name, "inner");
    }

    #[test]
    fn histograms_record_and_render() {
        let collector = Arc::new(Collector::new("root"));
        for v in [3u64, 5, 200] {
            collector.histogram("probe.conflicts", v);
        }
        collector.finish();
        let report = collector.report();
        let hist = &report.root.histograms["probe.conflicts"];
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.max(), 200);
        let tree = report.render_tree();
        assert!(tree.contains("probe.conflicts~{n=3"), "{tree}");
        let encoded = report.to_json();
        let value = crate::json::parse(&encoded).unwrap();
        let count = value
            .get("histograms")
            .and_then(|h| h.get("probe.conflicts"))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_f64);
        assert_eq!(count, Some(3.0));
    }

    #[test]
    fn span_close_feeds_parent_duration_histogram() {
        let collector = Arc::new(Collector::new("root"));
        {
            let _stage = collector.span("stage");
            for _ in 0..3 {
                let _unit = collector.span("unit");
            }
        }
        collector.finish();
        let report = collector.report();
        let stage = report.root.child("stage").unwrap();
        assert_eq!(stage.histograms[SPAN_DURATION_HISTOGRAM].count(), 3);
        // The root saw exactly one direct child close.
        assert_eq!(report.root.histograms[SPAN_DURATION_HISTOGRAM].count(), 1);
        // And the tree-wide merge sees all four.
        assert_eq!(report.histogram_total(SPAN_DURATION_HISTOGRAM).count(), 4);
    }

    #[test]
    fn adopt_report_merges_histograms_and_events() {
        let make_worker = |values: &[u64]| {
            let worker = Arc::new(Collector::new_traced("probe"));
            {
                let _span = worker.span("ratio:2x3");
                for &v in values {
                    worker.histogram("probe.conflicts", v);
                }
            }
            worker.finish();
            worker.report()
        };
        let a = make_worker(&[1, 2]);
        let b = make_worker(&[4]);

        let parent = Arc::new(Collector::new_traced("flow"));
        {
            let _pnr = parent.span("step4:pnr");
            parent.adopt_report(&a);
            parent.adopt_report(&b);
        }
        parent.finish();
        let report = parent.report();
        let pnr = report.root.child("step4:pnr").unwrap();
        // Each worker's probe span kept its own histogram...
        assert_eq!(pnr.children[0].histograms["probe.conflicts"].count(), 2);
        assert_eq!(pnr.children[1].histograms["probe.conflicts"].count(), 1);
        // ...and the tree-wide merge is the union, independent of order.
        let total = report.histogram_total("probe.conflicts");
        assert_eq!(total.count(), 3);
        assert_eq!(total.sum(), 7);
        // Worker events (ratio span + worker root each) rode along, then
        // the parent's own closes appended.
        let names: Vec<&str> = report.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "ratio:2x3",
                "probe",
                "ratio:2x3",
                "probe",
                "step4:pnr",
                "flow"
            ]
        );
        assert_eq!(report.events_dropped, 0);
    }

    #[test]
    fn untraced_collectors_buffer_no_events() {
        let collector = Arc::new(Collector::new("root"));
        if collector.is_traced() {
            // Environment forced tracing on (TELEMETRY_TRACE set);
            // nothing to assert in that configuration.
            return;
        }
        {
            let _span = collector.span("work");
        }
        collector.finish();
        assert!(collector.report().events.is_empty());
    }

    #[test]
    fn guard_drop_order_tolerates_out_of_order_close() {
        let collector = Arc::new(Collector::new("root"));
        let outer = collector.span("outer");
        let inner = collector.span("inner");
        drop(outer); // pops inner off the open-span stack too
        drop(inner); // late close: must not panic or corrupt the stack
        let _next = collector.span("next");
        let report = collector.report();
        assert_eq!(report.stages(), ["outer", "next"]);
    }
}
