//! Hierarchical span/counter telemetry for the Bestagon design flow.
//!
//! The flow driver installs a [`Collector`] for the duration of one
//! flow run; every layer below it (synthesis, P&R, equivalence,
//! physical simulation) records into the *ambient* collector through
//! the free functions in this crate — [`span`], [`counter`],
//! [`gauge`], and [`note`] — without any plumbing through call
//! signatures. When no collector is installed every call is a cheap
//! no-op, so instrumented library code pays nothing in isolation.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(fcn_telemetry::Collector::new("flow:demo"));
//! fcn_telemetry::with_collector(&collector, || {
//!     let _step = fcn_telemetry::span("step4:pnr");
//!     fcn_telemetry::counter("sat.conflicts", 17);
//! });
//! let report = collector.report();
//! assert_eq!(report.root.children[0].name, "step4:pnr");
//! assert_eq!(report.root.children[0].counters["sat.conflicts"], 17);
//! ```
//!
//! Reports render three ways: an indented human-readable tree with
//! durations and percentages ([`Report::render_tree`]), a one-level
//! summary ([`Report::render_summary`]), and machine-readable JSON
//! ([`Report::to_json`]) produced by the hand-rolled serializer in
//! [`json`] — no serde, per DESIGN.md §6. The [`emit`] helper writes
//! whichever form the `TELEMETRY` environment variable selects
//! (`off`/`summary`/`tree`/`json`) to stderr, so stdout stays clean.

mod collector;
pub mod json;

pub use collector::{Collector, Report, SpanGuard, SpanReport};

use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Collector>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `collector` as the thread's ambient collector for the
/// duration of `f`. Nested installs shadow outer ones; the previous
/// collector is restored even if `f` panics.
pub fn with_collector<R>(collector: &Arc<Collector>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }

    CURRENT.with(|stack| stack.borrow_mut().push(Arc::clone(collector)));
    let _pop = Pop;
    f()
}

/// The currently installed ambient collector, if any.
pub fn current() -> Option<Arc<Collector>> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Opens a child span under the innermost open span of the ambient
/// collector. The span closes (recording its wall time) when the
/// returned guard drops. A no-op guard is returned when no collector
/// is installed.
pub fn span(name: impl Into<String>) -> SpanGuard {
    match current() {
        Some(collector) => collector.span(name),
        None => SpanGuard::noop(),
    }
}

/// Adds `delta` to a named counter on the innermost open span.
pub fn counter(name: &str, delta: u64) {
    if let Some(collector) = current() {
        collector.counter(name, delta);
    }
}

/// Sets a named gauge (last write wins) on the innermost open span.
pub fn gauge(name: &str, value: f64) {
    if let Some(collector) = current() {
        collector.gauge(name, value);
    }
}

/// Attaches a named string annotation to the innermost open span.
pub fn note(name: &str, value: impl Into<String>) {
    if let Some(collector) = current() {
        collector.note(name, value.into());
    }
}

/// Adopts a finished child-collector snapshot into the ambient
/// collector (see [`Collector::adopt_report`]): its top-level spans are
/// grafted under the innermost open span and its root counters, gauges,
/// and notes merged into it. A no-op when no collector is installed.
///
/// Worker threads cannot see the parent's thread-local collector, so
/// parallel stages run each unit of work under a fresh
/// [`Collector`], snapshot it with [`Collector::report`], and let the
/// coordinating thread adopt the snapshots in a deterministic order.
pub fn adopt_report(report: &Report) {
    if let Some(collector) = current() {
        collector.adopt_report(report);
    }
}

/// Emission level selected by the `TELEMETRY` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No output (the default, and the fallback for unknown values).
    Off,
    /// One line per top-level stage.
    Summary,
    /// The full indented span tree.
    Tree,
    /// Pretty-printed JSON.
    Json,
}

impl Mode {
    /// Reads the `TELEMETRY` environment variable.
    pub fn from_env() -> Mode {
        match std::env::var("TELEMETRY").as_deref() {
            Ok("summary") => Mode::Summary,
            Ok("tree") => Mode::Tree,
            Ok("json") => Mode::Json,
            _ => Mode::Off,
        }
    }
}

/// Writes `report` to stderr in the form selected by `TELEMETRY`
/// (nothing when off). stdout is never touched, so pipelines that
/// consume a tool's primary output stay stable.
pub fn emit(report: &Report) {
    emit_with_mode(report, Mode::from_env());
}

/// Like [`emit`] but with an explicit mode, for callers that manage
/// their own configuration.
pub fn emit_with_mode(report: &Report, mode: Mode) {
    match mode {
        Mode::Off => {}
        Mode::Summary => eprint!("{}", report.render_summary()),
        Mode::Tree => eprint!("{}", report.render_tree()),
        Mode::Json => eprintln!("{}", report.to_json_pretty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_is_a_noop() {
        assert!(current().is_none());
        let _span = span("orphan");
        counter("unseen", 5);
        gauge("unseen", 1.0);
        note("unseen", "value");
    }

    #[test]
    fn ambient_collector_records_nested_spans() {
        let collector = Arc::new(Collector::new("root"));
        with_collector(&collector, || {
            {
                let _outer = span("outer");
                counter("ticks", 2);
                {
                    let _inner = span("inner");
                    counter("ticks", 1);
                    gauge("depth", 2.0);
                    note("kind", "leaf");
                }
            }
            let _second = span("second");
        });
        assert!(current().is_none());

        let report = collector.report();
        assert_eq!(report.root.name, "root");
        let names: Vec<&str> = report
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["outer", "second"]);
        let outer = &report.root.children[0];
        assert_eq!(outer.counters["ticks"], 2);
        let inner = &outer.children[0];
        assert_eq!(inner.counters["ticks"], 1);
        assert_eq!(inner.gauges["depth"], 2.0);
        assert_eq!(inner.notes["kind"], "leaf");
    }

    #[test]
    fn install_is_restored_on_panic() {
        let collector = Arc::new(Collector::new("root"));
        let result = std::panic::catch_unwind(|| {
            with_collector(&collector, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn children_durations_sum_within_parent() {
        let collector = Arc::new(Collector::new("root"));
        with_collector(&collector, || {
            for _ in 0..3 {
                let _s = span("work");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let report = collector.report();
        let sum: std::time::Duration = report.root.children.iter().map(|c| c.duration).sum();
        assert!(
            sum <= report.root.duration,
            "{sum:?} > {:?}",
            report.root.duration
        );
    }

    #[test]
    fn mode_matches_environment() {
        // Tolerates an inherited TELEMETRY value: tests must pass both
        // in a clean environment and under e.g. `TELEMETRY=json`.
        let expected = match std::env::var("TELEMETRY").as_deref() {
            Ok("summary") => Mode::Summary,
            Ok("tree") => Mode::Tree,
            Ok("json") => Mode::Json,
            _ => Mode::Off,
        };
        assert_eq!(Mode::from_env(), expected);
    }
}
