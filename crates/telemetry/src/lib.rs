//! Hierarchical span/counter telemetry for the Bestagon design flow.
//!
//! The flow driver installs a [`Collector`] for the duration of one
//! flow run; every layer below it (synthesis, P&R, equivalence,
//! physical simulation) records into the *ambient* collector through
//! the free functions in this crate — [`span`], [`counter`],
//! [`gauge`], and [`note`] — without any plumbing through call
//! signatures. When no collector is installed every call is a cheap
//! no-op, so instrumented library code pays nothing in isolation.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(fcn_telemetry::Collector::new("flow:demo"));
//! fcn_telemetry::with_collector(&collector, || {
//!     let _step = fcn_telemetry::span("step4:pnr");
//!     fcn_telemetry::counter("sat.conflicts", 17);
//! });
//! let report = collector.report();
//! assert_eq!(report.root.children[0].name, "step4:pnr");
//! assert_eq!(report.root.children[0].counters["sat.conflicts"], 17);
//! ```
//!
//! Beyond spans and counters, the layer records **histograms**
//! ([`histogram`], log₂-bucketed and deterministically mergeable across
//! worker threads — see [`Histogram`]), buffers **trace events** for
//! Chrome/Perfetto visualization ([`Report::to_chrome_trace`], enabled
//! by the `TELEMETRY_TRACE` environment variable), and feeds a
//! process-wide [`Registry`] of aggregate metrics that survives across
//! flow runs ([`Registry::global`], snapshot + diff API).
//!
//! Reports render three ways: an indented human-readable tree with
//! durations and percentages ([`Report::render_tree`]), a one-level
//! summary ([`Report::render_summary`]), and machine-readable JSON
//! ([`Report::to_json`]) produced by the hand-rolled serializer in
//! [`json`] — no serde, per DESIGN.md §6. The [`emit`] helper writes
//! whichever form the `TELEMETRY` environment variable selects
//! (`off`/`summary`/`tree`/`json`) to stderr — or, for JSON, appends
//! one compact document per run to the file named by `TELEMETRY_FILE`
//! — so stdout stays clean. When `TELEMETRY_TRACE=<path>` is set,
//! [`emit`] additionally writes the run's trace events to `<path>` in
//! Chrome trace-event format (one file per run; the last run wins).

mod collector;
mod hist;
pub mod json;
mod registry;
mod trace;

pub use collector::{Collector, Report, SpanGuard, SpanReport, SPAN_DURATION_HISTOGRAM};
pub use hist::Histogram;
pub use registry::{Registry, RegistrySnapshot};
pub use trace::{TraceEvent, MAX_TRACE_EVENTS};

use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Vec<Arc<Collector>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `collector` as the thread's ambient collector for the
/// duration of `f`. Nested installs shadow outer ones; the previous
/// collector is restored even if `f` panics.
pub fn with_collector<R>(collector: &Arc<Collector>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }

    CURRENT.with(|stack| stack.borrow_mut().push(Arc::clone(collector)));
    let _pop = Pop;
    f()
}

/// The currently installed ambient collector, if any.
pub fn current() -> Option<Arc<Collector>> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Opens a child span under the innermost open span of the ambient
/// collector. The span closes (recording its wall time) when the
/// returned guard drops. A no-op guard is returned when no collector
/// is installed.
pub fn span(name: impl Into<String>) -> SpanGuard {
    match current() {
        Some(collector) => collector.span(name),
        None => SpanGuard::noop(),
    }
}

/// Adds `delta` to a named counter on the innermost open span.
pub fn counter(name: &str, delta: u64) {
    if let Some(collector) = current() {
        collector.counter(name, delta);
    }
}

/// Sets a named gauge (last write wins) on the innermost open span.
pub fn gauge(name: &str, value: f64) {
    if let Some(collector) = current() {
        collector.gauge(name, value);
    }
}

/// Attaches a named string annotation to the innermost open span.
pub fn note(name: &str, value: impl Into<String>) {
    if let Some(collector) = current() {
        collector.note(name, value.into());
    }
}

/// Records one sample into a named histogram on the innermost open
/// span. Histograms are log₂-bucketed and merge deterministically
/// through [`adopt_report`]; see [`Histogram`].
pub fn histogram(name: &str, value: u64) {
    if let Some(collector) = current() {
        collector.histogram(name, value);
    }
}

/// Adopts a finished child-collector snapshot into the ambient
/// collector (see [`Collector::adopt_report`]): its top-level spans are
/// grafted under the innermost open span and its root counters, gauges,
/// and notes merged into it. A no-op when no collector is installed.
///
/// Worker threads cannot see the parent's thread-local collector, so
/// parallel stages run each unit of work under a fresh
/// [`Collector`], snapshot it with [`Collector::report`], and let the
/// coordinating thread adopt the snapshots in a deterministic order.
pub fn adopt_report(report: &Report) {
    if let Some(collector) = current() {
        collector.adopt_report(report);
    }
}

/// Emission level selected by the `TELEMETRY` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No output (the default, and the fallback for unknown values).
    Off,
    /// One line per top-level stage.
    Summary,
    /// The full indented span tree.
    Tree,
    /// Pretty-printed JSON.
    Json,
}

impl Mode {
    /// Reads the `TELEMETRY` environment variable. When `TELEMETRY` is
    /// unset (or off) but `TELEMETRY_FILE` names a destination, the
    /// mode is `Json` — asking for a report file implies wanting the
    /// machine-readable report.
    pub fn from_env() -> Mode {
        match std::env::var("TELEMETRY").as_deref() {
            Ok("summary") => Mode::Summary,
            Ok("tree") => Mode::Tree,
            Ok("json") => Mode::Json,
            _ if telemetry_file_from_env().is_some() => Mode::Json,
            _ => Mode::Off,
        }
    }
}

/// The `TELEMETRY_FILE` destination, if configured and non-empty.
fn telemetry_file_from_env() -> Option<String> {
    std::env::var("TELEMETRY_FILE")
        .ok()
        .filter(|path| !path.is_empty())
}

/// Writes `report` to stderr in the form selected by `TELEMETRY`
/// (nothing when off). stdout is never touched, so pipelines that
/// consume a tool's primary output stay stable.
///
/// Two file sinks augment the stderr stream, both env-driven:
///
/// * `TELEMETRY_FILE=<path>` — in `Json` mode the report is *appended*
///   to `<path>` as one compact JSON document per line (JSON Lines, so
///   multi-flow runs like the Table 1 harness accumulate cleanly)
///   instead of printed to stderr.
/// * `TELEMETRY_TRACE=<path>` — the report's trace events (captured
///   because the same variable enabled tracing at collector creation)
///   are written to `<path>` in Chrome trace-event format. One file per
///   run: the last run wins.
///
/// File-sink I/O errors are reported to stderr and otherwise ignored —
/// telemetry must never fail the flow.
pub fn emit(report: &Report) {
    let mode = Mode::from_env();
    match (mode, telemetry_file_from_env()) {
        (Mode::Json, Some(path)) => {
            use std::io::Write;
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| writeln!(file, "{}", report.to_json()));
            if let Err(e) = result {
                eprintln!("telemetry: could not append report to {path}: {e}");
            }
        }
        _ => emit_with_mode(report, mode),
    }
    if let Ok(path) = std::env::var("TELEMETRY_TRACE") {
        if !path.is_empty() && !report.events.is_empty() {
            if let Err(e) = std::fs::write(&path, report.to_chrome_trace() + "\n") {
                eprintln!("telemetry: could not write trace to {path}: {e}");
            }
        }
    }
}

/// Like [`emit`] but with an explicit mode, for callers that manage
/// their own configuration. Always writes to stderr; the file sinks
/// are [`emit`]'s.
pub fn emit_with_mode(report: &Report, mode: Mode) {
    match mode {
        Mode::Off => {}
        Mode::Summary => eprint!("{}", report.render_summary()),
        Mode::Tree => eprint!("{}", report.render_tree()),
        Mode::Json => eprintln!("{}", report.to_json_pretty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_is_a_noop() {
        assert!(current().is_none());
        let _span = span("orphan");
        counter("unseen", 5);
        gauge("unseen", 1.0);
        note("unseen", "value");
    }

    #[test]
    fn ambient_collector_records_nested_spans() {
        let collector = Arc::new(Collector::new("root"));
        with_collector(&collector, || {
            {
                let _outer = span("outer");
                counter("ticks", 2);
                {
                    let _inner = span("inner");
                    counter("ticks", 1);
                    gauge("depth", 2.0);
                    note("kind", "leaf");
                }
            }
            let _second = span("second");
        });
        assert!(current().is_none());

        let report = collector.report();
        assert_eq!(report.root.name, "root");
        let names: Vec<&str> = report
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["outer", "second"]);
        let outer = &report.root.children[0];
        assert_eq!(outer.counters["ticks"], 2);
        let inner = &outer.children[0];
        assert_eq!(inner.counters["ticks"], 1);
        assert_eq!(inner.gauges["depth"], 2.0);
        assert_eq!(inner.notes["kind"], "leaf");
    }

    #[test]
    fn install_is_restored_on_panic() {
        let collector = Arc::new(Collector::new("root"));
        let result = std::panic::catch_unwind(|| {
            with_collector(&collector, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn children_durations_sum_within_parent() {
        let collector = Arc::new(Collector::new("root"));
        with_collector(&collector, || {
            for _ in 0..3 {
                let _s = span("work");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let report = collector.report();
        let sum: std::time::Duration = report.root.children.iter().map(|c| c.duration).sum();
        assert!(
            sum <= report.root.duration,
            "{sum:?} > {:?}",
            report.root.duration
        );
    }

    #[test]
    fn mode_matches_environment() {
        // Tolerates an inherited TELEMETRY/TELEMETRY_FILE value: tests
        // must pass both in a clean environment and under e.g.
        // `TELEMETRY=json`.
        let file_set = std::env::var("TELEMETRY_FILE").is_ok_and(|p| !p.is_empty());
        let expected = match std::env::var("TELEMETRY").as_deref() {
            Ok("summary") => Mode::Summary,
            Ok("tree") => Mode::Tree,
            Ok("json") => Mode::Json,
            _ if file_set => Mode::Json,
            _ => Mode::Off,
        };
        assert_eq!(Mode::from_env(), expected);
    }
}
